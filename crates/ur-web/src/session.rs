//! High-level sessions: the main public API for running Ur/Web programs.
//!
//! A [`Session`] owns an elaborator pre-loaded with the standard-library
//! signature, the builtin registry, the interpreter world (database +
//! debug log), and the runtime environment of top-level values.

use crate::builtins;
use crate::prelude::PRELUDE;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use ur_core::con::RCon;
use ur_core::sym::Sym;
use ur_eval::{Builtin, EvalError, Interp, VEnv, Value, World};
use ur_infer::{ElabDecl, ElabError, Elaborator};

/// Errors from running a program in a session.
#[derive(Clone, Debug)]
pub enum SessionError {
    /// A parse/type error.
    Elab(ElabError),
    /// A runtime error.
    Eval(EvalError),
    /// A prelude primitive without an implementation (an internal error).
    MissingBuiltin(String),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Elab(e) => write!(f, "{e}"),
            SessionError::Eval(e) => write!(f, "{e}"),
            SessionError::MissingBuiltin(n) => {
                write!(f, "internal error: no implementation for builtin {n}")
            }
        }
    }
}

impl std::error::Error for SessionError {}

impl From<ElabError> for SessionError {
    fn from(e: ElabError) -> Self {
        SessionError::Elab(e)
    }
}

impl From<EvalError> for SessionError {
    fn from(e: EvalError) -> Self {
        SessionError::Eval(e)
    }
}

/// An Ur/Web session: elaborate-and-run programs against a persistent
/// world.
///
/// ```
/// use ur_web::Session;
///
/// let mut sess = Session::new()?;
/// sess.run("val x = 20 + 22")?;
/// assert_eq!(sess.get_int("x")?, 42);
/// # Ok::<(), ur_web::SessionError>(())
/// ```
pub struct Session {
    /// The elaborator (inference statistics live in `elab.cx.stats`).
    pub elab: Elaborator,
    /// Runtime world: database and debug output.
    pub world: World,
    /// Worker threads for batch elaboration ([`Session::run_all`]).
    /// Defaults to [`ur_infer::default_threads`] (the `UR_TEST_THREADS`
    /// environment variable when set, else the machine's available
    /// parallelism); `<= 1` elaborates sequentially. Evaluation always
    /// runs on the calling thread in source order.
    pub threads: usize,
    builtins: HashMap<Sym, Rc<Builtin>>,
    top: VEnv,
    by_name: HashMap<String, Sym>,
}

impl Session {
    /// Creates a session with the standard library installed.
    ///
    /// # Errors
    ///
    /// Fails if the prelude does not elaborate or a primitive lacks an
    /// implementation (both internal errors, exercised by tests).
    pub fn new() -> Result<Session, SessionError> {
        let mut elab = Elaborator::new();
        let decls = elab.elab_source(PRELUDE)?;
        let impls = builtins::registry();
        let mut map = HashMap::new();
        let mut by_name = HashMap::new();
        for d in &decls {
            if let ElabDecl::Val {
                name,
                sym,
                body: None,
                ..
            } = d
            {
                let spec = impls
                    .get(name)
                    .ok_or_else(|| SessionError::MissingBuiltin(name.clone()))?;
                map.insert(sym.clone(), Rc::clone(spec));
                by_name.insert(name.clone(), sym.clone());
            }
        }
        Ok(Session {
            elab,
            world: World::new(),
            threads: ur_infer::default_threads(),
            builtins: map,
            top: VEnv::new(),
            by_name,
        })
    }

    /// Elaborates and evaluates a program; returns the (name, value) pairs
    /// of the newly defined top-level values.
    ///
    /// # Errors
    ///
    /// Returns the first parse, type, or runtime error.
    pub fn run(&mut self, src: &str) -> Result<Vec<(String, Value)>, SessionError> {
        let decls = self.elab.elab_source(src)?;
        let mut out = Vec::new();
        for d in &decls {
            if let ElabDecl::Val {
                name,
                sym,
                body: Some(body),
                ..
            } = d
            {
                let mut interp =
                    Interp::new(&mut self.world, &self.elab.genv, &self.builtins);
                let v = interp.eval(&self.top, body)?;
                self.top.vals.insert(sym.clone(), v.clone());
                self.by_name.insert(name.clone(), sym.clone());
                out.push((name.clone(), v));
            }
        }
        Ok(out)
    }

    /// Elaborates and evaluates a program in multi-error mode: every
    /// declaration that elaborates is evaluated, and every error —
    /// parse, type, resource, or runtime — is collected as a
    /// [`Diagnostic`](ur_syntax::Diagnostic) instead of aborting the
    /// batch. The session stays usable afterwards regardless of how
    /// hostile the input was.
    pub fn run_all(
        &mut self,
        src: &str,
    ) -> (Vec<(String, Value)>, ur_syntax::Diagnostics) {
        let (decls, mut diags) = self.elab.elab_source_all_threads(src, self.threads);
        let mut out = Vec::new();
        for d in &decls {
            if let ElabDecl::Val {
                name,
                sym,
                body: Some(body),
                ..
            } = d
            {
                let mut interp =
                    Interp::new(&mut self.world, &self.elab.genv, &self.builtins);
                match interp.eval(&self.top, body) {
                    Ok(v) => {
                        self.top.vals.insert(sym.clone(), v.clone());
                        self.by_name.insert(name.clone(), sym.clone());
                        out.push((name.clone(), v));
                    }
                    Err(e) => diags.push(ur_syntax::Diagnostic::new(
                        ur_syntax::Span::default(),
                        ur_syntax::Code::Eval,
                        format!("runtime error evaluating {name}: {e}"),
                    )),
                }
            }
        }
        (out, diags)
    }

    /// Elaborates and evaluates a single expression.
    ///
    /// # Errors
    ///
    /// Returns the first parse, type, or runtime error.
    pub fn eval(&mut self, src: &str) -> Result<Value, SessionError> {
        let (ee, _ty) = self.elab.elab_expr_source(src)?;
        let mut interp = Interp::new(&mut self.world, &self.elab.genv, &self.builtins);
        Ok(interp.eval(&self.top, &ee)?)
    }

    /// Elaborates a single expression and returns its type without
    /// evaluating.
    ///
    /// # Errors
    ///
    /// Returns the first parse or type error.
    pub fn type_of(&mut self, src: &str) -> Result<RCon, SessionError> {
        let (_ee, ty) = self.elab.elab_expr_source(src)?;
        Ok(ty)
    }

    /// Looks up a previously defined top-level value.
    pub fn get(&self, name: &str) -> Option<&Value> {
        let sym = self.by_name.get(name)?;
        self.top.vals.get(sym)
    }

    /// Convenience: a top-level int value.
    ///
    /// # Errors
    ///
    /// Fails if the value is absent or not an int.
    pub fn get_int(&self, name: &str) -> Result<i64, SessionError> {
        self.get(name)
            .ok_or_else(|| SessionError::Eval(EvalError::new(format!("no value {name}"))))?
            .as_int()
            .map_err(SessionError::Eval)
    }

    /// Convenience: a top-level string value.
    ///
    /// # Errors
    ///
    /// Fails if the value is absent or not a string.
    pub fn get_str(&self, name: &str) -> Result<String, SessionError> {
        Ok(self
            .get(name)
            .ok_or_else(|| SessionError::Eval(EvalError::new(format!("no value {name}"))))?
            .as_str()
            .map_err(SessionError::Eval)?
            .to_string())
    }

    /// Applies a function value to arguments.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn apply(&mut self, f: &Value, args: &[Value]) -> Result<Value, SessionError> {
        let mut interp = Interp::new(&mut self.world, &self.elab.genv, &self.builtins);
        let mut v = f.clone();
        for a in args {
            v = interp.apply(v, a.clone())?;
        }
        Ok(v)
    }

    /// The database.
    pub fn db(&mut self) -> &mut ur_db::Db {
        &mut self.world.db
    }

    /// Inference statistics accumulated so far (the Figure-5 counters).
    pub fn stats(&self) -> &ur_core::stats::Stats {
        &self.elab.cx.stats
    }

    /// [`Session::stats`] plus a snapshot of the thread-local intern
    /// table (node count, name count, hit/miss rates). The per-`Cx`
    /// counters are copied; the intern columns are read from the live
    /// table at call time.
    pub fn stats_snapshot(&self) -> ur_core::stats::Stats {
        let mut s = self.elab.cx.stats.clone();
        s.capture_intern();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_bootstraps() {
        let sess = Session::new().expect("prelude installs");
        assert!(sess.get("missing").is_none());
    }

    #[test]
    fn arithmetic_and_strings() {
        let mut sess = Session::new().unwrap();
        sess.run("val x = 1 + 2 * 3\nval s = \"a\" ^ showInt x").unwrap();
        assert_eq!(sess.get_int("x").unwrap(), 7);
        assert_eq!(sess.get_str("s").unwrap(), "a7");
    }

    #[test]
    fn eval_expression() {
        let mut sess = Session::new().unwrap();
        let v = sess.eval("if 1 < 2 then 10 else 20").unwrap();
        assert_eq!(v.as_int().unwrap(), 10);
    }

    #[test]
    fn lists_and_folds() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val l = cons 1 (cons 2 (cons 3 nil))\n\
             val total = foldList (fn (x : int) (acc : int) => x + acc) 0 l\n\
             val n = lengthList l",
        )
        .unwrap();
        assert_eq!(sess.get_int("total").unwrap(), 6);
        assert_eq!(sess.get_int("n").unwrap(), 3);
    }

    #[test]
    fn options() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val a = getOpt (some 5) 0\n\
             val b = getOpt none 7",
        )
        .unwrap();
        assert_eq!(sess.get_int("a").unwrap(), 5);
        assert_eq!(sess.get_int("b").unwrap(), 7);
    }

    #[test]
    fn xml_rendering_escapes() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val x = renderXml (tagP (cdata \"<script>alert(1)</script>\"))",
        )
        .unwrap();
        let s = sess.get_str("x").unwrap();
        assert_eq!(s, "<p>&lt;script&gt;alert(1)&lt;/script&gt;</p>");
    }

    #[test]
    fn sql_end_to_end() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val t = createTable \"people\" {Name = sqlString, Age = sqlInt}\n\
             val u1 = insert t {Name = const \"alice\", Age = const 30}\n\
             val u2 = insert t {Name = const \"bob\", Age = const 25}\n\
             val n = rowCount t",
        )
        .unwrap();
        assert_eq!(sess.get_int("n").unwrap(), 2);
        let rows = sess.eval("selectAll t (sqlLt (column [#Age]) (const 28))").unwrap();
        let rows = rows.as_list().unwrap().to_vec();
        assert_eq!(rows.len(), 1);
        let rec = rows[0].as_record().unwrap();
        assert_eq!(rec.get("Name").unwrap().as_str().unwrap().as_ref(), "bob");
    }

    #[test]
    fn sql_injection_is_neutralized() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val t = createTable \"notes\" {Body = sqlString}\n\
             val u = insert t {Body = const \"'; DROP TABLE notes; --\"}\n\
             val n = rowCount t",
        )
        .unwrap();
        assert_eq!(sess.get_int("n").unwrap(), 1);
        // The table still exists and the malicious text round-trips as data.
        let rows = sess.eval("selectAll t (sqlTrue)").unwrap();
        let rows = rows.as_list().unwrap().to_vec();
        let body = rows[0].as_record().unwrap()["Body"].as_str().unwrap();
        assert_eq!(body.as_ref(), "'; DROP TABLE notes; --");
        // And the logged SQL has the quote escaped.
        let log = sess.db().log().join("\n");
        assert!(log.contains("''; DROP TABLE notes; --"));
    }

    #[test]
    fn type_errors_are_reported_not_executed() {
        let mut sess = Session::new().unwrap();
        let err = sess.run("val bad = 1 + \"two\"").unwrap_err();
        assert!(matches!(err, SessionError::Elab(_)));
    }

    #[test]
    fn sequences_and_debug() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val u = createSequence \"s\"\n\
             val a = nextval \"s\"\n\
             val b = nextval \"s\"\n\
             val d = debug \"hello\"",
        )
        .unwrap();
        assert_eq!(sess.get_int("a").unwrap(), 1);
        assert_eq!(sess.get_int("b").unwrap(), 2);
        assert_eq!(sess.world.out, vec!["hello".to_string()]);
    }

    #[test]
    fn stats_are_exposed() {
        let mut sess = Session::new().unwrap();
        sess.run("fun proj3 [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] (x : $([nm = t] ++ r)) = x.nm\nval v = proj3 [#A] {A = 1, B = 2}").unwrap();
        assert!(sess.stats().disjoint_prover_calls > 0);
        assert_eq!(sess.get_int("v").unwrap(), 1);
    }
}

#[cfg(test)]
mod xml_typing_tests {
    use super::*;

    #[test]
    fn misplaced_tags_are_type_errors() {
        // <tr> directly inside <p> (inline context) is rejected.
        let mut sess = Session::new().unwrap();
        assert!(sess.eval("tagP (tagTr (tagTd (cdata \"x\")))").is_err());
        // <td> inside <table> without <tr> is rejected.
        assert!(sess.eval("tagTable (tagTd (cdata \"x\"))").is_err());
        // The correct nesting is accepted.
        assert!(sess
            .eval("tagTable (tagTr (tagTd (cdata \"x\")))")
            .is_ok());
    }

    #[test]
    fn cdata_is_context_polymorphic() {
        let mut sess = Session::new().unwrap();
        for src in [
            "renderXml (tagP (cdata \"a\"))",
            "renderXml (tagTr (tagTd (cdata \"a\")))",
            "renderXml (tagUl (tagLi (cdata \"a\")))",
        ] {
            assert!(sess.eval(src).is_ok(), "{src}");
        }
    }

    #[test]
    fn xcat_requires_matching_contexts() {
        let mut sess = Session::new().unwrap();
        // body ++ tr cells: contexts differ.
        assert!(sess
            .eval("xcat (tagP (cdata \"a\")) (tagTd (cdata \"b\"))")
            .is_err());
        assert!(sess
            .eval("xcat (tagP (cdata \"a\")) (tagH1 (cdata \"b\"))")
            .is_ok());
    }

    #[test]
    fn page_produces_full_document() {
        let mut sess = Session::new().unwrap();
        let v = sess
            .eval("page \"T&C\" (tagP (cdata \"hi\"))")
            .unwrap();
        let s = v.as_str().unwrap();
        assert!(s.starts_with("<html><head><title>T&amp;C</title>"));
        assert!(s.contains("<body><p>hi</p></body>"));
    }

    #[test]
    fn ordered_select_builtin() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "val t = createTable \"ord\" {K = sqlInt, V = sqlString}\n\
             val a = insert t {K = const 3, V = const \"c\"}\n\
             val b = insert t {K = const 1, V = const \"a\"}\n\
             val c = insert t {K = const 2, V = const \"b\"}",
        )
        .unwrap();
        let rows = sess
            .eval("selectOrdered [#K] t (sqlTrue) 0 2")
            .unwrap();
        assert_eq!(
            rows.to_string(),
            "[{K = 1, V = \"a\"}, {K = 2, V = \"b\"}]"
        );
        // Ordering by a column the table lacks is a type error.
        assert!(sess.eval("selectOrdered [#Nope] t (sqlTrue) 0 2").is_err());
    }
}

#[cfg(test)]
mod recovery_tests {
    use super::*;

    /// A failed declaration must not poison the session: stale folder
    /// holes and constraints are discarded (regression test).
    #[test]
    fn session_recovers_from_failed_declarations() {
        let mut sess = Session::new().unwrap();
        sess.run(
            "type meta (t :: Type) = {Show : t -> string}\n\
             fun render [r :: {Type}] (fl : folder r) (mr : $(map meta r)) (x : $r) : string =\n\
               fl [fn r => $(map meta r) -> $r -> string]\n\
                  (fn [nm] [t] [r] [[nm] ~ r] acc mr x =>\n\
                     mr.nm.Show x.nm ^ acc (mr -- nm) (x -- nm))\n\
                  (fn _ _ => \"\") mr x",
        )
        .unwrap();
        // Creates a folder hole with an undetermined row, then fails.
        assert!(sess.run("val bad = render oops").is_err());
        // Unrelated follow-up work must succeed.
        sess.run("val ok = 1 + 1").unwrap();
        assert_eq!(sess.get_int("ok").unwrap(), 2);
        // And the metaprogram still works.
        sess.run("val out = render {A = {Show = showInt}} {A = 5}")
            .unwrap();
        assert_eq!(sess.get_str("out").unwrap(), "5");
    }

    /// Failed `eval` calls also leave the session clean.
    #[test]
    fn eval_errors_do_not_leak_constraints() {
        let mut sess = Session::new().unwrap();
        assert!(sess.eval("{A = 1} ++ {A = 2}").is_err());
        assert_eq!(sess.eval("1 + 1").unwrap().as_int().unwrap(), 2);
    }

    /// `run_all` reports every bad declaration and still evaluates the
    /// good ones.
    #[test]
    fn run_all_reports_all_errors_and_runs_the_rest() {
        let mut sess = Session::new().unwrap();
        let (defs, diags) = sess.run_all(
            "val a : int = \"nope\"\n\
             val b = missing\n\
             val ok = 40 + 2",
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert_eq!(defs.len(), 1);
        assert_eq!(sess.get_int("ok").unwrap(), 42);
    }
}
