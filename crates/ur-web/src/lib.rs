// Library code must be panic-free: unwrap/expect/panic are denied
// outside cfg(test) (see docs/ROBUSTNESS.md).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! # ur-web — the Ur/Web standard library and session runtime
//!
//! Reproduces the Ur/Web layer of the paper (§5): a standard library whose
//! *signature* (written in Ur, [`prelude::PRELUDE`]) encodes typed
//! HTML/XML documents and typed SQL tables/expressions, so that every
//! metaprogram output is schema-correct and injection-free by
//! construction — "no method is provided to pattern-match on the syntax of
//! an exp" (§2.2); strings enter documents only via escaping `cdata`, and
//! SQL strings only via escaped literals.
//!
//! [`Session`] is the top-level entry point: it installs the library into
//! an elaborator, wires the primitive implementations
//! ([`builtins::registry`]) into the interpreter, and runs programs
//! against an in-memory database ([`ur_db::Db`]).
//!
//! ```
//! use ur_web::Session;
//!
//! let mut sess = Session::new()?;
//! sess.run(
//!     "val t = createTable \"items\" {Label = sqlString}\n\
//!      val u = insert t {Label = const \"<b>safe</b>\"}",
//! )?;
//! assert_eq!(sess.db().row_count("items").unwrap(), 1);
//! # Ok::<(), ur_web::SessionError>(())
//! ```

pub mod builtins;
pub mod prelude;
pub mod session;

pub use prelude::PRELUDE;
pub use session::{Breaker, BreakerConfig, Session, SessionError, SessionSnapshot};
