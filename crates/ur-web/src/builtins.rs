//! Implementations of the standard-library primitives declared in
//! [`crate::prelude`].

use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use ur_core::con::RCon;
use ur_db::{ColTy, DbVal, Schema, SqlExpr};
use ur_eval::value::XmlVal;
use ur_eval::{Builtin, EvalError, Interp, Value};

type BFn = dyn Fn(&mut Interp<'_>, &[RCon], &[Value]) -> Result<Value, EvalError>;

fn bi(
    map: &mut HashMap<String, Rc<Builtin>>,
    name: &str,
    con_arity: usize,
    arity: usize,
    f: impl Fn(&mut Interp<'_>, &[RCon], &[Value]) -> Result<Value, EvalError> + 'static,
) {
    map.insert(
        name.to_string(),
        Rc::new(Builtin {
            name: name.to_string(),
            con_arity,
            arity,
            run: Rc::new(f) as Rc<BFn>,
        }),
    );
}

/// Converts an Ur runtime value into a database value.
///
/// # Errors
///
/// Fails for values with no database representation (functions, XML, ...).
pub fn value_to_db(v: &Value) -> Result<DbVal, EvalError> {
    match v {
        Value::Int(n) => Ok(DbVal::Int(*n)),
        Value::Float(x) => Ok(DbVal::Float(*x)),
        Value::Str(s) => Ok(DbVal::Str(s.to_string())),
        Value::Bool(b) => Ok(DbVal::Bool(*b)),
        Value::Opt(None) => Ok(DbVal::Null),
        Value::Opt(Some(inner)) => value_to_db(inner),
        other => Err(EvalError::new(format!(
            "value {other} has no SQL representation"
        ))),
    }
}

/// Converts a database value back into an Ur value at a column type.
pub fn db_to_value(v: &DbVal, ty: &ColTy) -> Value {
    match ty {
        ColTy::Nullable(inner) => match v {
            DbVal::Null => Value::Opt(None),
            other => Value::Opt(Some(Rc::new(db_to_value(other, inner)))),
        },
        _ => match v {
            DbVal::Int(n) => Value::Int(*n),
            DbVal::Float(x) => Value::Float(*x),
            DbVal::Str(s) => Value::str(s.as_str()),
            DbVal::Bool(b) => Value::Bool(*b),
            DbVal::Null => Value::Opt(None),
        },
    }
}

fn xml1(v: &Value) -> Result<XmlVal, EvalError> {
    Ok(v.as_xml()?.clone())
}

fn tag(map: &mut HashMap<String, Rc<Builtin>>, builtin: &str, element: &'static str) {
    bi(map, builtin, 0, 1, move |_, _, args| {
        Ok(Value::Xml(Rc::new(XmlVal::Tag {
            name: element.to_string(),
            attrs: vec![],
            children: vec![xml1(&args[0])?],
        })))
    });
}

/// Builds the full builtin registry, keyed by prelude declaration name.
pub fn registry() -> HashMap<String, Rc<Builtin>> {
    let mut m = HashMap::new();

    // ---------- integers, booleans, floats ----------
    bi(&mut m, "add", 0, 2, |_, _, a| {
        Ok(Value::Int(a[0].as_int()?.wrapping_add(a[1].as_int()?)))
    });
    bi(&mut m, "sub", 0, 2, |_, _, a| {
        Ok(Value::Int(a[0].as_int()?.wrapping_sub(a[1].as_int()?)))
    });
    bi(&mut m, "mul", 0, 2, |_, _, a| {
        Ok(Value::Int(a[0].as_int()?.wrapping_mul(a[1].as_int()?)))
    });
    bi(&mut m, "div", 0, 2, |_, _, a| {
        let d = a[1].as_int()?;
        if d == 0 {
            return Err(EvalError::new("division by zero"));
        }
        Ok(Value::Int(a[0].as_int()? / d))
    });
    bi(&mut m, "mod", 0, 2, |_, _, a| {
        let d = a[1].as_int()?;
        if d == 0 {
            return Err(EvalError::new("modulo by zero"));
        }
        Ok(Value::Int(a[0].as_int()? % d))
    });
    bi(&mut m, "neg", 0, 1, |_, _, a| {
        Ok(Value::Int(-a[0].as_int()?))
    });
    bi(&mut m, "lt", 0, 2, |_, _, a| {
        Ok(Value::Bool(a[0].as_int()? < a[1].as_int()?))
    });
    bi(&mut m, "le", 0, 2, |_, _, a| {
        Ok(Value::Bool(a[0].as_int()? <= a[1].as_int()?))
    });
    bi(&mut m, "gt", 0, 2, |_, _, a| {
        Ok(Value::Bool(a[0].as_int()? > a[1].as_int()?))
    });
    bi(&mut m, "ge", 0, 2, |_, _, a| {
        Ok(Value::Bool(a[0].as_int()? >= a[1].as_int()?))
    });
    bi(&mut m, "eq", 0, 2, |_, _, a| {
        Ok(Value::Bool(a[0].as_int()? == a[1].as_int()?))
    });
    bi(&mut m, "ne", 0, 2, |_, _, a| {
        Ok(Value::Bool(a[0].as_int()? != a[1].as_int()?))
    });
    bi(&mut m, "andb", 0, 2, |_, _, a| {
        Ok(Value::Bool(a[0].as_bool()? && a[1].as_bool()?))
    });
    bi(&mut m, "orb", 0, 2, |_, _, a| {
        Ok(Value::Bool(a[0].as_bool()? || a[1].as_bool()?))
    });
    bi(&mut m, "notb", 0, 1, |_, _, a| {
        Ok(Value::Bool(!a[0].as_bool()?))
    });
    bi(&mut m, "addFloat", 0, 2, |_, _, a| {
        Ok(Value::Float(a[0].as_float()? + a[1].as_float()?))
    });
    bi(&mut m, "mulFloat", 0, 2, |_, _, a| {
        Ok(Value::Float(a[0].as_float()? * a[1].as_float()?))
    });
    bi(&mut m, "intToFloat", 0, 1, |_, _, a| {
        Ok(Value::Float(a[0].as_int()? as f64))
    });
    bi(&mut m, "floatToInt", 0, 1, |_, _, a| {
        Ok(Value::Int(a[0].as_float()? as i64))
    });

    // ---------- strings ----------
    bi(&mut m, "strcat", 0, 2, |_, _, a| {
        let mut s = a[0].as_str()?.to_string();
        s.push_str(&a[1].as_str()?);
        Ok(Value::str(s))
    });
    bi(&mut m, "eqString", 0, 2, |_, _, a| {
        Ok(Value::Bool(a[0].as_str()? == a[1].as_str()?))
    });
    bi(&mut m, "showInt", 0, 1, |_, _, a| {
        Ok(Value::str(a[0].as_int()?.to_string()))
    });
    bi(&mut m, "showFloat", 0, 1, |_, _, a| {
        Ok(Value::str(format!("{:?}", a[0].as_float()?)))
    });
    bi(&mut m, "showBool", 0, 1, |_, _, a| {
        Ok(Value::str(if a[0].as_bool()? { "True" } else { "False" }))
    });
    bi(&mut m, "parseInt", 0, 1, |_, _, a| {
        Ok(Value::Int(a[0].as_str()?.trim().parse().unwrap_or(0)))
    });
    bi(&mut m, "parseFloat", 0, 1, |_, _, a| {
        Ok(Value::Float(a[0].as_str()?.trim().parse().unwrap_or(0.0)))
    });
    bi(&mut m, "parseBool", 0, 1, |_, _, a| {
        let s = a[0].as_str()?;
        Ok(Value::Bool(s.trim() == "True" || s.trim() == "true"))
    });

    // ---------- control ----------
    bi(&mut m, "error", 1, 1, |_, _, a| {
        Err(EvalError::new(format!("error: {}", a[0].as_str()?)))
    });
    bi(&mut m, "debug", 0, 1, |interp, _, a| {
        let msg = a[0].as_str()?.to_string();
        interp.world.out.push(msg);
        Ok(Value::Unit)
    });
    bi(&mut m, "seq", 1, 2, |_, _, a| Ok(a[1].clone()));
    bi(&mut m, "ignore", 1, 1, |_, _, _| Ok(Value::Unit));

    // ---------- lists ----------
    bi(&mut m, "nil", 1, 0, |_, _, _| {
        Ok(Value::List(Rc::new(vec![])))
    });
    bi(&mut m, "cons", 1, 2, |_, _, a| {
        let mut items = vec![a[0].clone()];
        items.extend(a[1].as_list()?.iter().cloned());
        Ok(Value::List(Rc::new(items)))
    });
    bi(&mut m, "foldList", 2, 3, |interp, _, a| {
        let f = a[0].clone();
        let mut acc = a[1].clone();
        for item in a[2].as_list()?.to_vec() {
            acc = interp.apply2(f.clone(), item, acc)?;
        }
        Ok(acc)
    });
    bi(&mut m, "mapL", 2, 2, |interp, _, a| {
        let f = a[0].clone();
        let mut out = Vec::new();
        for item in a[1].as_list()?.to_vec() {
            out.push(interp.apply(f.clone(), item)?);
        }
        Ok(Value::List(Rc::new(out)))
    });
    bi(&mut m, "filterL", 1, 2, |interp, _, a| {
        let f = a[0].clone();
        let mut out = Vec::new();
        for item in a[1].as_list()?.to_vec() {
            if interp.apply(f.clone(), item.clone())?.as_bool()? {
                out.push(item);
            }
        }
        Ok(Value::List(Rc::new(out)))
    });
    bi(&mut m, "appendList", 1, 2, |_, _, a| {
        let mut out = a[0].as_list()?.to_vec();
        out.extend(a[1].as_list()?.iter().cloned());
        Ok(Value::List(Rc::new(out)))
    });
    bi(&mut m, "lengthList", 1, 1, |_, _, a| {
        Ok(Value::Int(a[0].as_list()?.len() as i64))
    });
    bi(&mut m, "nullList", 1, 1, |_, _, a| {
        Ok(Value::Bool(a[0].as_list()?.is_empty()))
    });
    bi(&mut m, "revList", 1, 1, |_, _, a| {
        let mut out = a[0].as_list()?.to_vec();
        out.reverse();
        Ok(Value::List(Rc::new(out)))
    });
    bi(&mut m, "takeL", 1, 2, |_, _, a| {
        let n = a[0].as_int()?.max(0) as usize;
        let items = a[1].as_list()?;
        Ok(Value::List(Rc::new(
            items.iter().take(n).cloned().collect(),
        )))
    });
    bi(&mut m, "dropL", 1, 2, |_, _, a| {
        let n = a[0].as_int()?.max(0) as usize;
        let items = a[1].as_list()?;
        Ok(Value::List(Rc::new(
            items.iter().skip(n).cloned().collect(),
        )))
    });
    bi(&mut m, "sortByInt", 1, 2, |interp, _, a| {
        let f = a[0].clone();
        let mut keyed: Vec<(i64, Value)> = Vec::new();
        for item in a[1].as_list()?.to_vec() {
            let k = interp.apply(f.clone(), item.clone())?.as_int()?;
            keyed.push((k, item));
        }
        keyed.sort_by_key(|(k, _)| *k);
        Ok(Value::List(Rc::new(
            keyed.into_iter().map(|(_, v)| v).collect(),
        )))
    });
    bi(&mut m, "joinStrings", 0, 2, |_, _, a| {
        let sep = a[0].as_str()?;
        let parts: Result<Vec<String>, EvalError> = a[1]
            .as_list()?
            .iter()
            .map(|v| v.as_str().map(|s| s.to_string()))
            .collect();
        Ok(Value::str(parts?.join(&sep)))
    });

    // ---------- options ----------
    bi(&mut m, "some", 1, 1, |_, _, a| {
        Ok(Value::Opt(Some(Rc::new(a[0].clone()))))
    });
    bi(&mut m, "none", 1, 0, |_, _, _| Ok(Value::Opt(None)));
    bi(&mut m, "isSome", 1, 1, |_, _, a| match &a[0] {
        Value::Opt(o) => Ok(Value::Bool(o.is_some())),
        other => Err(EvalError::new(format!("expected option, got {other}"))),
    });
    bi(&mut m, "getOpt", 1, 2, |_, _, a| match &a[0] {
        Value::Opt(Some(v)) => Ok((**v).clone()),
        Value::Opt(None) => Ok(a[1].clone()),
        other => Err(EvalError::new(format!("expected option, got {other}"))),
    });

    // ---------- XML ----------
    bi(&mut m, "cdata", 1, 1, |_, _, a| {
        Ok(Value::Xml(Rc::new(XmlVal::Text(a[0].as_str()?.to_string()))))
    });
    bi(&mut m, "xempty", 1, 0, |_, _, _| {
        Ok(Value::Xml(Rc::new(XmlVal::Empty)))
    });
    bi(&mut m, "xcat", 1, 2, |_, _, a| {
        Ok(Value::Xml(Rc::new(XmlVal::Seq(vec![
            xml1(&a[0])?,
            xml1(&a[1])?,
        ]))))
    });
    tag(&mut m, "tagTable", "table");
    tag(&mut m, "tagTr", "tr");
    tag(&mut m, "tagTh", "th");
    tag(&mut m, "tagTd", "td");
    tag(&mut m, "tagP", "p");
    tag(&mut m, "tagDiv", "div");
    tag(&mut m, "tagH1", "h1");
    tag(&mut m, "tagH2", "h2");
    tag(&mut m, "tagUl", "ul");
    tag(&mut m, "tagLi", "li");
    tag(&mut m, "tagSpan", "span");
    tag(&mut m, "tagB", "b");
    bi(&mut m, "inputText", 0, 1, |_, _, a| {
        Ok(Value::Xml(Rc::new(XmlVal::Tag {
            name: "input".into(),
            attrs: vec![
                ("type".into(), "text".into()),
                ("name".into(), a[0].as_str()?.to_string()),
            ],
            children: vec![],
        })))
    });
    bi(&mut m, "button", 0, 1, |_, _, a| {
        Ok(Value::Xml(Rc::new(XmlVal::Tag {
            name: "button".into(),
            attrs: vec![],
            children: vec![XmlVal::Text(a[0].as_str()?.to_string())],
        })))
    });
    bi(&mut m, "renderXml", 1, 1, |_, _, a| {
        Ok(Value::str(a[0].as_xml()?.render()))
    });
    bi(&mut m, "page", 0, 2, |_, _, a| {
        let title = ur_eval::value::escape_text(&a[0].as_str()?);
        let body = a[1].as_xml()?.render();
        Ok(Value::str(format!(
            "<html><head><title>{title}</title></head><body>{body}</body></html>"
        )))
    });

    // ---------- SQL type witnesses ----------
    bi(&mut m, "sqlInt", 0, 0, |_, _, _| Ok(Value::SqlType(ColTy::Int)));
    bi(&mut m, "sqlFloat", 0, 0, |_, _, _| {
        Ok(Value::SqlType(ColTy::Float))
    });
    bi(&mut m, "sqlString", 0, 0, |_, _, _| {
        Ok(Value::SqlType(ColTy::Str))
    });
    bi(&mut m, "sqlBool", 0, 0, |_, _, _| {
        Ok(Value::SqlType(ColTy::Bool))
    });
    bi(&mut m, "sqlOption", 1, 1, |_, _, a| match &a[0] {
        Value::SqlType(t) => Ok(Value::SqlType(ColTy::Nullable(Box::new(t.clone())))),
        other => Err(EvalError::new(format!("expected sql_type, got {other}"))),
    });

    // ---------- DDL ----------
    bi(&mut m, "createTable", 1, 2, |interp, _, a| {
        let name = a[0].as_str()?;
        let rec = a[1].as_record()?;
        let mut cols = Vec::new();
        for (col, v) in rec {
            match v {
                Value::SqlType(t) => cols.push((col.to_string(), t.clone())),
                other => {
                    return Err(EvalError::new(format!(
                        "expected sql_type for column {col}, got {other}"
                    )))
                }
            }
        }
        let schema = Schema::new(cols).map_err(EvalError::from)?;
        interp
            .world
            .db
            .create_table(&name, schema)
            .map_err(EvalError::from)?;
        Ok(Value::SqlTable(name))
    });
    bi(&mut m, "createSequence", 0, 1, |interp, _, a| {
        interp.world.db.create_sequence(&a[0].as_str()?);
        Ok(Value::Unit)
    });
    bi(&mut m, "nextval", 0, 1, |interp, _, a| {
        Ok(Value::Int(
            interp
                .world
                .db
                .nextval(&a[0].as_str()?)
                .map_err(EvalError::from)?,
        ))
    });

    // ---------- SQL expressions ----------
    bi(&mut m, "const", 2, 1, |_, _, a| {
        Ok(Value::SqlExp(Rc::new(SqlExpr::Const(value_to_db(&a[0])?))))
    });
    bi(&mut m, "column", 3, 0, |interp, cons, _| {
        let venv = ur_eval::VEnv::new();
        let name = interp.resolve_name(&venv, &cons[0])?;
        Ok(Value::SqlExp(Rc::new(SqlExpr::col(name.to_string()))))
    });
    bi(&mut m, "sqlEq", 2, 2, |_, _, a| {
        Ok(Value::SqlExp(Rc::new(SqlExpr::eq(
            a[0].as_sql_exp()?.clone(),
            a[1].as_sql_exp()?.clone(),
        ))))
    });
    bi(&mut m, "sqlLt", 1, 2, |_, _, a| {
        Ok(Value::SqlExp(Rc::new(SqlExpr::Lt(
            Box::new(a[0].as_sql_exp()?.clone()),
            Box::new(a[1].as_sql_exp()?.clone()),
        ))))
    });
    bi(&mut m, "sqlLe", 1, 2, |_, _, a| {
        Ok(Value::SqlExp(Rc::new(SqlExpr::Le(
            Box::new(a[0].as_sql_exp()?.clone()),
            Box::new(a[1].as_sql_exp()?.clone()),
        ))))
    });
    bi(&mut m, "sqlAnd", 1, 2, |_, _, a| {
        Ok(Value::SqlExp(Rc::new(SqlExpr::and(
            a[0].as_sql_exp()?.clone(),
            a[1].as_sql_exp()?.clone(),
        ))))
    });
    bi(&mut m, "sqlOr", 1, 2, |_, _, a| {
        Ok(Value::SqlExp(Rc::new(SqlExpr::or(
            a[0].as_sql_exp()?.clone(),
            a[1].as_sql_exp()?.clone(),
        ))))
    });
    bi(&mut m, "sqlNot", 1, 1, |_, _, a| {
        Ok(Value::SqlExp(Rc::new(SqlExpr::not(
            a[0].as_sql_exp()?.clone(),
        ))))
    });
    bi(&mut m, "sqlIsNull", 2, 1, |_, _, a| {
        Ok(Value::SqlExp(Rc::new(SqlExpr::is_null(
            a[0].as_sql_exp()?.clone(),
        ))))
    });
    bi(&mut m, "sqlTrue", 1, 0, |_, _, _| {
        Ok(Value::SqlExp(Rc::new(SqlExpr::lit(DbVal::Bool(true)))))
    });
    // Environment weakening is a no-op at runtime: the expression is
    // unchanged, only its static environment row grows.
    bi(&mut m, "weaken", 3, 1, |_, _, a| Ok(a[0].clone()));

    // ---------- DML ----------
    bi(&mut m, "insert", 1, 2, |interp, _, a| {
        let table = table_name(&a[0])?;
        let rec = a[1].as_record()?;
        let mut values = Vec::new();
        for (col, v) in rec {
            values.push((col.to_string(), v.as_sql_exp()?.clone()));
        }
        interp
            .world
            .db
            .insert(&table, &values)
            .map_err(EvalError::from)?;
        Ok(Value::Unit)
    });
    bi(&mut m, "deleteRows", 1, 2, |interp, _, a| {
        let table = table_name(&a[0])?;
        let n = interp
            .world
            .db
            .delete(&table, a[1].as_sql_exp()?)
            .map_err(EvalError::from)?;
        Ok(Value::Int(n as i64))
    });
    bi(&mut m, "updateRows", 2, 3, |interp, _, a| {
        let table = table_name(&a[0])?;
        let rec = a[1].as_record()?;
        let mut changes = Vec::new();
        for (col, v) in rec {
            changes.push((col.to_string(), v.as_sql_exp()?.clone()));
        }
        let n = interp
            .world
            .db
            .update(&table, &changes, a[2].as_sql_exp()?)
            .map_err(EvalError::from)?;
        Ok(Value::Int(n as i64))
    });
    bi(&mut m, "selectAll", 1, 2, |interp, _, a| {
        let table = table_name(&a[0])?;
        let schema = interp
            .world
            .db
            .schema(&table)
            .map_err(EvalError::from)?
            .clone();
        let rows = interp
            .world
            .db
            .select(&table, a[1].as_sql_exp()?)
            .map_err(EvalError::from)?;
        let mut out = Vec::new();
        for row in rows {
            let mut rec = BTreeMap::new();
            for ((col, ty), v) in schema.columns().iter().zip(&row) {
                rec.insert(Rc::from(col.as_str()), db_to_value(v, ty));
            }
            out.push(Value::record(rec));
        }
        Ok(Value::List(Rc::new(out)))
    });
    bi(&mut m, "selectOrdered", 3, 4, |interp, cons, a| {
        let venv = ur_eval::VEnv::new();
        let order_col = interp.resolve_name(&venv, &cons[0])?;
        let table = table_name(&a[0])?;
        let offset = a[2].as_int()?.max(0) as usize;
        let limit = a[3].as_int()?.max(0) as usize;
        let schema = interp
            .world
            .db
            .schema(&table)
            .map_err(EvalError::from)?
            .clone();
        let rows = interp
            .world
            .db
            .select_ordered(&table, a[1].as_sql_exp()?, &order_col, offset, limit)
            .map_err(EvalError::from)?;
        let mut out = Vec::new();
        for row in rows {
            let mut rec = BTreeMap::new();
            for ((col, ty), v) in schema.columns().iter().zip(&row) {
                rec.insert(Rc::from(col.as_str()), db_to_value(v, ty));
            }
            out.push(Value::record(rec));
        }
        Ok(Value::List(Rc::new(out)))
    });
    bi(&mut m, "rowCount", 1, 1, |interp, _, a| {
        let table = table_name(&a[0])?;
        Ok(Value::Int(
            interp
                .world
                .db
                .row_count(&table)
                .map_err(EvalError::from)? as i64,
        ))
    });

    m
}

fn table_name(v: &Value) -> Result<Rc<str>, EvalError> {
    match v {
        Value::SqlTable(t) => Ok(Rc::clone(t)),
        other => Err(EvalError::new(format!("expected table handle, got {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_prelude() {
        // Every `val` in the prelude without a body must have an
        // implementation.
        let prog = ur_syntax::parse_program(crate::prelude::PRELUDE).unwrap();
        let reg = registry();
        for d in &prog.decls {
            if let ur_syntax::SDecl::ValAbs(_, name, _) = d {
                assert!(reg.contains_key(name), "missing builtin impl for {name}");
            }
        }
    }

    #[test]
    fn registry_has_no_extras() {
        let prog = ur_syntax::parse_program(crate::prelude::PRELUDE).unwrap();
        let declared: std::collections::HashSet<&str> = prog
            .decls
            .iter()
            .filter_map(|d| match d {
                ur_syntax::SDecl::ValAbs(_, name, _) => Some(name.as_str()),
                _ => None,
            })
            .collect();
        for name in registry().keys() {
            assert!(declared.contains(name.as_str()), "extra builtin {name}");
        }
    }

    #[test]
    fn value_db_roundtrip() {
        let v = Value::Int(42);
        let db = value_to_db(&v).unwrap();
        assert_eq!(db, DbVal::Int(42));
        let back = db_to_value(&db, &ColTy::Int);
        assert!(matches!(back, Value::Int(42)));
    }

    #[test]
    fn option_db_roundtrip() {
        let v = Value::Opt(Some(Rc::new(Value::str("x"))));
        let db = value_to_db(&v).unwrap();
        assert_eq!(db, DbVal::Str("x".into()));
        let nullable = ColTy::Nullable(Box::new(ColTy::Str));
        assert!(matches!(db_to_value(&db, &nullable), Value::Opt(Some(_))));
        assert!(matches!(
            db_to_value(&DbVal::Null, &nullable),
            Value::Opt(None)
        ));
    }

    #[test]
    fn closures_have_no_db_representation() {
        let reg = registry();
        assert!(reg.contains_key("const"));
        let v = Value::Unit;
        assert!(value_to_db(&v).is_err());
    }
}
