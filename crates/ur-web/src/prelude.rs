//! The Ur/Web standard-library signature, written in Ur itself.
//!
//! As in the paper (§5), "we did not need to write any custom type
//! inference code. Instead, we encoded those structures in the signature
//! of the main module of the standard library": abstract type families
//! (`con x :: K`) and primitive values (`val x : t`) whose implementations
//! live in [`crate::builtins`].

/// The library signature elaborated into every [`crate::Session`].
pub const PRELUDE: &str = r#"
(* ---------- primitive operations ---------- *)

val add : int -> int -> int
val sub : int -> int -> int
val mul : int -> int -> int
val div : int -> int -> int
val mod : int -> int -> int
val neg : int -> int
val lt : int -> int -> bool
val le : int -> int -> bool
val gt : int -> int -> bool
val ge : int -> int -> bool
val eq : int -> int -> bool
val ne : int -> int -> bool
val andb : bool -> bool -> bool
val orb : bool -> bool -> bool
val notb : bool -> bool

val addFloat : float -> float -> float
val mulFloat : float -> float -> float
val intToFloat : int -> float
val floatToInt : float -> int

val strcat : string -> string -> string
val eqString : string -> string -> bool
val showInt : int -> string
val showFloat : float -> string
val showBool : bool -> string
val parseInt : string -> int
val parseFloat : string -> float
val parseBool : string -> bool

val error : t :: Type -> string -> t
val debug : string -> unit
val seq : t :: Type -> unit -> t -> t
val ignore : t :: Type -> t -> unit

(* ---------- lists ---------- *)

con list :: Type -> Type
val nil : t :: Type -> list t
val cons : t :: Type -> t -> list t -> list t
val foldList : t :: Type -> acc :: Type -> (t -> acc -> acc) -> acc -> list t -> acc
val mapL : a :: Type -> b :: Type -> (a -> b) -> list a -> list b
val filterL : t :: Type -> (t -> bool) -> list t -> list t
val appendList : t :: Type -> list t -> list t -> list t
val lengthList : t :: Type -> list t -> int
val nullList : t :: Type -> list t -> bool
val revList : t :: Type -> list t -> list t
val joinStrings : string -> list string -> string
val takeL : t :: Type -> int -> list t -> list t
val dropL : t :: Type -> int -> list t -> list t
val sortByInt : t :: Type -> (t -> int) -> list t -> list t

(* ---------- options ---------- *)

con option :: Type -> Type
val some : t :: Type -> t -> option t
val none : t :: Type -> option t
val isSome : t :: Type -> option t -> bool
val getOpt : t :: Type -> option t -> t -> t

(* ---------- typed XML (contexts: #body, #table, #tr, #list, #inline) ---------- *)

con xml :: Name -> Type
val cdata : ctx :: Name -> string -> xml ctx
val xempty : ctx :: Name -> xml ctx
val xcat : ctx :: Name -> xml ctx -> xml ctx -> xml ctx
val tagTable : xml #table -> xml #body
val tagTr : xml #tr -> xml #table
val tagTh : xml #inline -> xml #tr
val tagTd : xml #inline -> xml #tr
val tagP : xml #inline -> xml #body
val tagDiv : xml #body -> xml #body
val tagH1 : xml #inline -> xml #body
val tagH2 : xml #inline -> xml #body
val tagUl : xml #list -> xml #body
val tagLi : xml #inline -> xml #list
val tagSpan : xml #inline -> xml #inline
val tagB : xml #inline -> xml #inline
val inputText : string -> xml #inline
val button : string -> xml #inline
val renderXml : ctx :: Name -> xml ctx -> string
val page : string -> xml #body -> string

(* ---------- typed SQL ---------- *)

con sql_table :: {Type} -> Type
con sql_exp :: {Type} -> Type -> Type
con sql_type :: Type -> Type

val sqlInt : sql_type int
val sqlFloat : sql_type float
val sqlString : sql_type string
val sqlBool : sql_type bool
val sqlOption : t :: Type -> sql_type t -> sql_type (option t)

val createTable : r :: {Type} -> string -> $(map sql_type r) -> sql_table r
val createSequence : string -> unit
val nextval : string -> int

val const : r :: {Type} -> t :: Type -> t -> sql_exp r t
val column : nm :: Name -> t :: Type -> r :: {Type} -> [[nm] ~ r] => sql_exp ([nm = t] ++ r) t
val sqlEq : r :: {Type} -> t :: Type -> sql_exp r t -> sql_exp r t -> sql_exp r bool
val sqlLt : r :: {Type} -> sql_exp r int -> sql_exp r int -> sql_exp r bool
val sqlLe : r :: {Type} -> sql_exp r int -> sql_exp r int -> sql_exp r bool
val sqlAnd : r :: {Type} -> sql_exp r bool -> sql_exp r bool -> sql_exp r bool
val sqlOr : r :: {Type} -> sql_exp r bool -> sql_exp r bool -> sql_exp r bool
val sqlNot : r :: {Type} -> sql_exp r bool -> sql_exp r bool
val sqlIsNull : r :: {Type} -> t :: Type -> sql_exp r (option t) -> sql_exp r bool
val sqlTrue : r :: {Type} -> sql_exp r bool
val weaken : r :: {Type} -> rest :: {Type} -> t :: Type -> [r ~ rest] =>
    sql_exp r t -> sql_exp (r ++ rest) t

val insert : r :: {Type} -> sql_table r -> $(map (sql_exp []) r) -> unit
val deleteRows : r :: {Type} -> sql_table r -> sql_exp r bool -> int
val updateRows : chg :: {Type} -> rest :: {Type} -> [chg ~ rest] =>
    sql_table (chg ++ rest) -> $(map (sql_exp (chg ++ rest)) chg) ->
    sql_exp (chg ++ rest) bool -> int
val selectAll : r :: {Type} -> sql_table r -> sql_exp r bool -> list $r
val selectOrdered : nm :: Name -> t :: Type -> r :: {Type} -> [[nm] ~ r] =>
    sql_table ([nm = t] ++ r) -> sql_exp ([nm = t] ++ r) bool ->
    int -> int -> list $([nm = t] ++ r)
val rowCount : r :: {Type} -> sql_table r -> int
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prelude_parses() {
        let prog = ur_syntax::parse_program(PRELUDE).expect("prelude parses");
        assert!(prog.decls.len() > 60);
    }

    #[test]
    fn prelude_elaborates() {
        let mut e = ur_infer::Elaborator::new();
        e.elab_source(PRELUDE).expect("prelude elaborates");
    }
}
