//! The supervised session pool.
//!
//! Each worker is a dedicated OS thread owning its [`Session`]s
//! (sessions are `Rc`-based and deliberately not `Send`; only `Send`
//! data — request lines, reply strings, atomics — crosses threads).
//! Connections are routed stickily (`conn % workers`) so a client's
//! requests land on the session holding its state.
//!
//! ## Supervision and deterministic restore
//!
//! A worker that wedges or panics is *replaced*, never joined from the
//! hot path: [`Pool::report_failed`] is generation-checked (idempotent
//! under racing reporters), bumps the slot's generation, and spawns a
//! fresh worker. Session state is rebuilt deterministically from the
//! *last acknowledged script* — [`Session::reelaborate`] makes session
//! state a function of (pristine base, last source), so replaying the
//! script into a fresh session reproduces exactly what was acked.
//!
//! ## Durable grafting (shared `--db-dir` mode)
//!
//! With a shared durable database worker 0 is the **single writer**
//! owning the global session: durable handles are single-writer, and
//! funneling every mutation through one session is what makes restarts
//! safe to reason about. Workers 1..n are **snapshot readers**: they
//! never open the store; the writer publishes an MVCC snapshot to the
//! [`SnapshotHub`] after every request, and readers serve read-only
//! commands from a [`Db::read_only`] handle over the latest published
//! snapshot — concurrent with, and isolated from, in-flight writes.
//! The writer pins a *pristine in-memory base* (a
//! `reelaborate("")` before the durable handle is ever installed) so a
//! rebuild replays declarations into a scratch in-memory world; the
//! durable store then *adopts* that world ([`Db::adopt_state`]) instead
//! of having the replay appended on top of history — the
//! double-apply-on-restart trap. The invariant threaded through
//! restore: **a scripts-map entry exists only after its effects are on
//! disk**, so a restored worker replays the script for elaborator state
//! only and installs the recovered durable handle without re-adopting.

use crate::counters::ServeCounters;
use crate::protocol::{self, ReqCtx};
use crate::{lock, ServeConfig};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use ur_core::failpoint::{self, FpCounters, Site};
use ur_db::{Db, DbSnapshot, RetryConfig};
use ur_query::json::parse_flat_object;
use ur_web::Session;

/// Session key for the single shared session in durable mode.
const GLOBAL_KEY: u64 = u64::MAX;

/// The writer→readers handoff point of durable mode: the latest
/// published MVCC snapshot plus two monotone generation counters.
///
/// The writer publishes after every request (cheap — `Db` caches the
/// snapshot per committed epoch, so an unchanged state republishes the
/// same `Arc` and the sequence does not move). Readers compare `seq`
/// — **not** the snapshot's own epoch, which restarts and adopt-state
/// rebuilds can rewind — and swap in a fresh read-only handle when it
/// moved. `scripts_gen` moves when the acknowledged script changes, so
/// readers also rebuild their elaborator state.
pub struct SnapshotHub {
    snap: Mutex<Option<Arc<DbSnapshot>>>,
    seq: AtomicU64,
    scripts_gen: AtomicU64,
}

impl SnapshotHub {
    fn new() -> SnapshotHub {
        SnapshotHub {
            snap: Mutex::new(None),
            seq: AtomicU64::new(0),
            scripts_gen: AtomicU64::new(0),
        }
    }

    /// Installs a snapshot; bumps `seq` only when the `Arc` actually
    /// changed (pointer identity — the writer's per-epoch cache makes
    /// republishing an unchanged state the common case).
    pub fn publish(&self, s: Arc<DbSnapshot>) {
        let mut g = lock(&self.snap);
        let changed = g.as_ref().is_none_or(|old| !Arc::ptr_eq(old, &s));
        if changed {
            *g = Some(s);
            self.seq.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// The current sequence number and snapshot (if any published yet).
    pub fn current(&self) -> (u64, Option<Arc<DbSnapshot>>) {
        let g = lock(&self.snap);
        (self.seq.load(Ordering::SeqCst), g.clone())
    }

    /// Marks the acknowledged script as changed.
    pub fn bump_scripts(&self) {
        self.scripts_gen.fetch_add(1, Ordering::SeqCst);
    }

    pub fn scripts_gen(&self) -> u64 {
        self.scripts_gen.load(Ordering::SeqCst)
    }
}

/// One unit of work for a worker.
pub enum Job {
    /// A request line from connection `conn`, to be answered through
    /// `reply` before `deadline`.
    Request {
        conn: u64,
        line: String,
        deadline: Instant,
        reply: SyncSender<String>,
    },
    /// Connection `conn` closed; its session can be dropped.
    Close { conn: u64 },
}

/// State shared between the pool, its workers, and the front door.
pub struct PoolShared {
    pub cfg: ServeConfig,
    pub counters: Arc<ServeCounters>,
    /// Fault-injection counters shipped home by worker threads (their
    /// thread-local counters die with them otherwise).
    pub faults: Mutex<FpCounters>,
    /// Last *acknowledged* load/edit source per session key. Entries are
    /// written only after the rebuild's effects are fully applied (and,
    /// in durable mode, adopted on disk) — the restore invariant.
    pub scripts: Mutex<HashMap<u64, String>>,
    /// Set during graceful drain: workers count completions as drained.
    pub draining: AtomicBool,
    /// Current generation per worker slot; a worker that discovers its
    /// generation superseded exits without touching shared state.
    pub gens: Vec<AtomicU64>,
    /// Durable mode's writer→readers snapshot handoff (unused, but
    /// present, in memory-only mode).
    pub hub: SnapshotHub,
}

struct WorkerSlot {
    gen: u64,
    tx: SyncSender<Job>,
    join: Option<JoinHandle<()>>,
}

/// The supervised pool: sticky routing, generation-checked restarts,
/// bounded per-worker queues.
pub struct Pool {
    pub shared: Arc<PoolShared>,
    slots: Mutex<Vec<WorkerSlot>>,
}

impl Pool {
    /// Spawns the worker threads. In durable mode (`cfg.db_dir` set)
    /// worker 0 is the **single writer** (it alone opens the store and
    /// holds its flock); every other worker is a **snapshot reader**
    /// serving read-only requests against the hub's latest published
    /// MVCC snapshot, concurrent with the writer.
    pub fn start(cfg: ServeConfig, counters: Arc<ServeCounters>) -> Arc<Pool> {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(PoolShared {
            cfg,
            counters,
            faults: Mutex::new(FpCounters::default()),
            scripts: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
            gens: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            hub: SnapshotHub::new(),
        });
        let mut slots = Vec::with_capacity(workers);
        for wid in 0..workers {
            slots.push(spawn_worker(&shared, wid, 0));
        }
        Arc::new(Pool {
            shared,
            slots: Mutex::new(slots),
        })
    }

    pub fn workers(&self) -> usize {
        self.shared.gens.len()
    }

    /// The worker a connection routes to, with the slot's current
    /// generation and queue handle. Equivalent to
    /// [`Pool::handle_for_routed`] with `read_only = false`.
    pub fn handle_for(&self, conn: u64) -> (usize, u64, SyncSender<Job>) {
        self.handle_for_routed(conn, false)
    }

    /// Routing with read-only awareness. Memory mode is sticky
    /// (`conn % workers`, sessions are per-connection). Durable mode
    /// sends every mutating request to the writer (worker 0) and fans
    /// read-only requests across the snapshot readers (workers 1..n),
    /// falling back to the writer when the pool has no readers.
    pub fn handle_for_routed(&self, conn: u64, read_only: bool) -> (usize, u64, SyncSender<Job>) {
        let n = self.workers();
        let wid = if self.shared.cfg.db_dir.is_some() {
            if read_only && n > 1 {
                1 + (conn as usize) % (n - 1)
            } else {
                0
            }
        } else {
            (conn as usize) % n
        };
        let slots = lock(&self.slots);
        (wid, slots[wid].gen, slots[wid].tx.clone())
    }

    /// Replaces worker `wid` if it is still at generation `gen`.
    /// Idempotent: racing reporters observe the bumped generation and
    /// return `false` (the slot is already fresh — just resubmit).
    pub fn report_failed(&self, wid: usize, gen: u64) -> bool {
        let mut slots = lock(&self.slots);
        if slots[wid].gen != gen {
            return false;
        }
        let next = gen + 1;
        self.shared.gens[wid].store(next, Ordering::SeqCst);
        // The wedged worker's thread cannot be force-killed; it is
        // abandoned (its queue dies with its receiver) and exits on its
        // own once it wakes and sees the superseded generation. Dropping
        // the old slot detaches the JoinHandle.
        slots[wid] = spawn_worker(&self.shared, wid, next);
        self.shared.counters.inc_worker_restarts();
        true
    }

    /// Flags drain: workers count subsequent completions as drained.
    pub fn start_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Closes every queue and joins the current-generation workers.
    /// Bounded: a wedged worker's stall is bounded by its wedge sleep,
    /// after which it observes the closed queue and exits.
    pub fn shutdown(&self) {
        let joins: Vec<Option<JoinHandle<()>>> = {
            let mut slots = lock(&self.slots);
            slots
                .iter_mut()
                .map(|s| {
                    // Swap in a disconnected sender so the worker's
                    // queue closes once transient per-request clones
                    // (held briefly by connection threads) drop.
                    let (dead_tx, _dead_rx) = sync_channel(1);
                    drop(std::mem::replace(&mut s.tx, dead_tx));
                    s.join.take()
                })
                .collect()
        };
        // Wait for the workers' final checkpoints.
        for j in joins.into_iter().flatten() {
            let _ = j.join();
        }
    }
}

fn spawn_worker(shared: &Arc<PoolShared>, wid: usize, gen: u64) -> WorkerSlot {
    let (tx, rx) = sync_channel::<Job>(shared.cfg.queue_depth.max(1));
    let shared = Arc::clone(shared);
    let join = std::thread::Builder::new()
        .name(format!("ur-serve-worker-{wid}.{gen}"))
        .spawn(move || worker_main(shared, wid, gen, rx))
        .ok();
    WorkerSlot { gen, tx, join }
}

/// Per-worker session table entry.
struct Slot {
    sess: Session,
    ctx: ReqCtx,
}

/// A snapshot reader's view of the hub, compared before every request.
/// `seq` starts at `u64::MAX` so the first request always installs the
/// current snapshot.
struct ReaderState {
    seq: u64,
    scripts_gen: u64,
}

fn worker_main(shared: Arc<PoolShared>, wid: usize, gen: u64, rx: Receiver<Job>) {
    if let Some(fp) = shared.cfg.fp {
        failpoint::install(Some(fp));
    }
    let durable_mode = shared.cfg.db_dir.is_some();
    let is_reader = durable_mode && wid > 0;
    // The durable handle is writer-owned (it is not Send, and the store
    // is single-writer) and opened with bounded-backoff retry: a
    // predecessor wedged past the watchdog still holds the directory
    // flock until it wakes and exits, which is bounded by its wedge
    // sleep — so the budget covers that plus slack. Readers never open
    // the store; they serve the hub's published snapshots.
    let mut durable: Option<Db> = None;
    if let Some(dir) = &shared.cfg.db_dir {
        if wid == 0 {
            let budget = wedge_sleep_ms(&shared.cfg) + 2_000;
            match Db::open_with_retry(dir, RetryConfig::with_wait_ms(budget)) {
                Ok(mut db) => {
                    // Publish the recovered state before serving anything,
                    // so readers never answer from pre-recovery emptiness.
                    shared.hub.publish(db.publish_snapshot());
                    durable = Some(db);
                }
                Err(e) => {
                    // Without the store this worker cannot serve safely;
                    // park until superseded or shut down, refusing requests.
                    refuse_all(&shared, &rx, &e.to_string());
                    return;
                }
            }
        }
    }
    let mut sessions: HashMap<u64, Slot> = HashMap::new();
    let mut reader = ReaderState {
        seq: u64::MAX,
        scripts_gen: shared.hub.scripts_gen(),
    };
    loop {
        let job = match rx.recv() {
            Ok(j) => j,
            Err(_) => break,
        };
        match job {
            Job::Close { conn } => {
                if shared.cfg.db_dir.is_none() {
                    sessions.remove(&conn);
                }
            }
            Job::Request {
                conn,
                line,
                deadline,
                reply,
            } => {
                if failpoint::fire(Site::ServeWedge) {
                    // Wedge: stall past the watchdog's patience, then
                    // retire. The supervisor replaces this worker, and
                    // the replacement models a kill + respawn — which is
                    // why the durable handle is released *first*: the OS
                    // would release a killed process's flock, and holding
                    // it through the stall would convoy the replacement
                    // past every replay deadline (the flock is held for
                    // `wedge_sleep_ms` but a replayed request expires at
                    // patience + deadline, which is strictly sooner). The
                    // injection counter also ships before the stall: the
                    // final summary may be taken while this abandoned
                    // thread is still asleep. Serving after waking is
                    // never safe — the replacement may have replayed the
                    // request already — so the thread exits either way;
                    // if somehow not yet superseded, the dropped receiver
                    // surfaces as Disconnected and the next shepherd
                    // replaces us.
                    drop(durable.take());
                    sessions.clear();
                    ship_faults(&shared);
                    std::thread::sleep(Duration::from_millis(wedge_sleep_ms(&shared.cfg)));
                    let _ = (wid, gen);
                    return;
                }
                let now = Instant::now();
                if now >= deadline {
                    shared.counters.inc_deadline_expired();
                    let _ = reply.send(protocol::deadline_expired_response(
                        shared.cfg.deadline_ms,
                    ));
                    ship_faults(&shared);
                    continue;
                }
                let budget_ms = (deadline - now).as_millis() as u64;
                if is_reader {
                    refresh_reader(&shared, &mut sessions, &mut reader);
                }
                let resp = serve_one(&shared, &mut sessions, &mut durable, conn, &line, budget_ms);
                if durable_mode && wid == 0 {
                    // Publish after every request: cheap when nothing
                    // changed (the per-epoch cache republishes the same
                    // `Arc` and the hub's sequence does not move).
                    if let Some(slot) = sessions.get_mut(&GLOBAL_KEY) {
                        shared.hub.publish(slot.sess.db().publish_snapshot());
                    }
                }
                if shared.draining.load(Ordering::SeqCst) {
                    shared.counters.inc_drained();
                }
                let _ = reply.send(resp);
                ship_faults(&shared);
            }
        }
    }
    // Queue closed: final checkpoint of every durable handle, then out.
    if let Some(d) = &mut durable {
        let _ = d.checkpoint();
    }
    for slot in sessions.values_mut() {
        let _ = slot.sess.db().checkpoint();
    }
    ship_faults(&shared);
}

/// Handles one request against the (lazily built) session for `conn`.
fn serve_one(
    shared: &Arc<PoolShared>,
    sessions: &mut HashMap<u64, Slot>,
    durable: &mut Option<Db>,
    conn: u64,
    line: &str,
    budget_ms: u64,
) -> String {
    let key = if shared.cfg.db_dir.is_some() {
        GLOBAL_KEY
    } else {
        conn
    };
    if let std::collections::hash_map::Entry::Vacant(vacant) = sessions.entry(key) {
        match build_session(shared, durable.as_ref(), key) {
            Ok(slot) => {
                vacant.insert(slot);
            }
            Err(e) => {
                return format!(
                    "{{\"ok\":false,\"error\":\"session construction failed: {}\"}}",
                    ur_query::json::escape(&e)
                )
            }
        }
    }
    let Some(slot) = sessions.get_mut(&key) else {
        return protocol::internal_error_response();
    };
    let is_rebuild = matches!(
        parse_flat_object(line)
            .as_ref()
            .and_then(|r| r.get("cmd"))
            .map(String::as_str),
        Some("load") | Some("edit")
    );
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        protocol::handle_line(&mut slot.sess, &mut slot.ctx, line, Some(budget_ms))
    }));
    let (resp, _ctl) = match outcome {
        Ok(r) => r,
        Err(_) => {
            // The panic was contained but the session's invariants are
            // unknown: drop it. The next request rebuilds from the last
            // acknowledged script — deterministic, nothing half-applied.
            sessions.remove(&key);
            return protocol::internal_error_response();
        }
    };
    if is_rebuild && resp.starts_with("{\"ok\":true") {
        if let Some(src) = parse_flat_object(line).and_then(|mut r| r.remove("source")) {
            if let Some(slot) = sessions.get_mut(&key) {
                if let Some(d) = durable.as_mut() {
                    // The rebuild replayed declarations into the scratch
                    // in-memory world; the durable store adopts that
                    // world as the new truth (see module docs). Poison
                    // from a failed adopt is healed by checkpoint retry
                    // with bounded backoff.
                    d.adopt_state(&slot.sess.db().clone());
                    let mut delay = Duration::from_millis(5);
                    for _ in 0..4 {
                        if d.poison_reason().is_none() {
                            break;
                        }
                        let _ = d.checkpoint();
                        std::thread::sleep(delay);
                        delay *= 2;
                    }
                    if d.poison_reason().is_some() {
                        // The store never accepted the rebuild: refuse
                        // the ack (acked state must be on disk) and drop
                        // the session so the next request restores from
                        // the last state the store *did* accept.
                        sessions.remove(&key);
                        return "{\"ok\":false,\"error\":\"durable store rejected the \
                                rebuild; state rolled back to the last checkpoint\"}"
                            .to_string();
                    }
                    *slot.sess.db() = d.clone();
                }
                // Effects are fully applied (and durable, when shared):
                // only now may the script become the restore point.
                lock(&shared.scripts).insert(key, src);
                shared.hub.bump_scripts();
            }
        }
    }
    resp
}

/// Brings a snapshot reader's session up to date before a request:
/// rebuild elaborator state when the acknowledged script changed, and
/// install a read-only handle over the latest snapshot when the hub's
/// sequence moved. The scripts generation is read *before* the rebuild,
/// so a script acked concurrently is caught by the next request's
/// comparison rather than lost.
fn refresh_reader(
    shared: &Arc<PoolShared>,
    sessions: &mut HashMap<u64, Slot>,
    reader: &mut ReaderState,
) {
    let sg = shared.hub.scripts_gen();
    if sg != reader.scripts_gen {
        sessions.remove(&GLOBAL_KEY);
        reader.scripts_gen = sg;
    }
    if let std::collections::hash_map::Entry::Vacant(v) = sessions.entry(GLOBAL_KEY) {
        match build_session(shared, None, GLOBAL_KEY) {
            Ok(slot) => {
                v.insert(slot);
                // A fresh session carries the replayed in-memory world;
                // force the snapshot reinstall below.
                reader.seq = u64::MAX;
            }
            // serve_one retries the build and surfaces the error.
            Err(_) => return,
        }
    }
    let (seq, snap) = shared.hub.current();
    if seq != reader.seq {
        if let (Some(snap), Some(slot)) = (snap, sessions.get_mut(&GLOBAL_KEY)) {
            *slot.sess.db() = Db::read_only(&snap);
            reader.seq = seq;
        }
    }
}

/// Builds a session for `key`: pin a pristine in-memory base, replay the
/// last acknowledged script (elaborator state), then install the durable
/// handle *without* re-adopting — the script's effects are already on
/// disk by the scripts-map invariant.
fn build_session(
    shared: &Arc<PoolShared>,
    durable: Option<&Db>,
    key: u64,
) -> Result<Slot, String> {
    let mut sess = Session::new().map_err(|e| e.to_string())?;
    if let Some(t) = shared.cfg.threads {
        sess.threads = t;
    }
    if let Some(e) = shared.cfg.engine {
        sess.engine = e;
    }
    sess.cache_dir = shared.cfg.cache_dir.clone();
    // Pin the pristine base before any durable handle exists, so every
    // later rebuild replays into scratch in-memory state.
    let _ = sess.reelaborate("");
    let script = lock(&shared.scripts).get(&key).cloned();
    if let Some(src) = script {
        let _ = sess.reelaborate(&src);
    }
    if let Some(d) = durable {
        *sess.db() = d.clone();
    }
    Ok(Slot {
        sess,
        ctx: ReqCtx::new(Some(Arc::clone(&shared.counters))),
    })
}

/// Fallback loop for a worker that could not open the shared store:
/// answer every request with a structured refusal until shut down or
/// superseded. Keeping the thread alive keeps the failure observable
/// (clients get errors, not hangs) while the supervisor's next restart
/// retries the open.
fn refuse_all(shared: &Arc<PoolShared>, rx: &Receiver<Job>, why: &str) {
    let resp = format!(
        "{{\"ok\":false,\"error\":\"shared database unavailable: {}\"}}",
        ur_query::json::escape(why)
    );
    while let Ok(job) = rx.recv() {
        if let Job::Request { reply, .. } = job {
            let _ = reply.send(resp.clone());
        }
    }
    ship_faults(shared);
}

/// Ships this thread's fault-injection counters to the pool-wide sink
/// (no-op totals without the `failpoints` feature).
fn ship_faults(shared: &Arc<PoolShared>) {
    let c = failpoint::take_counters();
    lock(&shared.faults).absorb(&c);
}

/// How long an injected wedge stalls a worker. Chosen to outlast the
/// front door's first-attempt patience
/// ([`crate::server::patience_ms`] at attempt 0), so a wedge reliably
/// trips the supervisor instead of degrading into a late deadline
/// answer — and bounded, so abandoned threads exit (releasing the
/// durable flock) soon after being superseded.
pub fn wedge_sleep_ms(cfg: &ServeConfig) -> u64 {
    3 * cfg.deadline_ms + 3 * cfg.watchdog_ms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_seq_moves_only_when_the_snapshot_arc_changes() {
        let hub = SnapshotHub::new();
        assert_eq!(hub.current().0, 0);
        let mut d = Db::new();
        let s1 = d.publish_snapshot();
        hub.publish(Arc::clone(&s1));
        assert_eq!(hub.current().0, 1);
        // Republishing the identical Arc (the writer's per-epoch cache
        // hit) must not move the sequence.
        hub.publish(Arc::clone(&s1));
        assert_eq!(hub.current().0, 1);
        let mut d2 = Db::new();
        hub.publish(d2.publish_snapshot());
        assert_eq!(hub.current().0, 2);
        hub.bump_scripts();
        assert_eq!(hub.scripts_gen(), 1);
    }

    #[test]
    fn memory_mode_routes_stickily_across_all_workers() {
        let cfg = ServeConfig {
            workers: 3,
            ..ServeConfig::default()
        };
        let pool = Pool::start(cfg, Arc::new(ServeCounters::new()));
        for conn in 0..9_u64 {
            let (wid, _, _) = pool.handle_for_routed(conn, false);
            assert_eq!(wid, (conn as usize) % 3);
            let (wid_ro, _, _) = pool.handle_for_routed(conn, true);
            assert_eq!(wid_ro, wid, "memory mode ignores read_only");
        }
        pool.shutdown();
    }

    #[test]
    fn durable_mode_routes_writes_to_0_and_reads_to_readers() {
        let dir = std::env::temp_dir().join(format!(
            "ur-serve-pool-route-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            workers: 4,
            db_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let pool = Pool::start(cfg, Arc::new(ServeCounters::new()));
        let mut reader_wids = std::collections::HashSet::new();
        for conn in 0..12_u64 {
            let (wid, _, _) = pool.handle_for_routed(conn, false);
            assert_eq!(wid, 0, "mutations go to the writer");
            let (wid_ro, _, _) = pool.handle_for_routed(conn, true);
            assert!(wid_ro >= 1, "reads never queue behind the writer");
            reader_wids.insert(wid_ro);
        }
        assert_eq!(reader_wids.len(), 3, "reads fan across every reader");
        pool.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durable_single_worker_pool_falls_back_to_the_writer() {
        let dir = std::env::temp_dir().join(format!(
            "ur-serve-pool-single-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = ServeConfig {
            workers: 1,
            db_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let pool = Pool::start(cfg, Arc::new(ServeCounters::new()));
        let (wid, _, _) = pool.handle_for_routed(7, true);
        assert_eq!(wid, 0);
        pool.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
