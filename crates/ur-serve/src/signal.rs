//! SIGTERM observation without external crates.
//!
//! The workspace takes no dependencies, so on Unix this registers a
//! handler via the C `signal(2)` symbol that std's libc linkage already
//! provides. The handler only stores a flag (the one async-signal-safe
//! thing worth doing); `urc --listen` polls [`sigterm_received`] and
//! turns it into a graceful drain. On non-Unix targets the functions
//! are inert stubs — drain is still reachable via the `shutdown`
//! command.

use std::sync::atomic::{AtomicBool, Ordering};

static SIGTERM: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::SIGTERM;
    use std::sync::atomic::Ordering;

    const SIGTERM_NO: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_sigterm(_signum: i32) {
        SIGTERM.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // Registering a handler cannot meaningfully fail for SIGTERM;
        // SIG_ERR would only mean the flag never gets set, which
        // degrades to "kill -9 semantics" rather than anything unsafe.
        unsafe {
            signal(SIGTERM_NO, on_sigterm as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGTERM flag handler (idempotent; no-op off Unix).
pub fn install_sigterm_handler() {
    imp::install();
}

/// True once SIGTERM has been delivered to this process.
pub fn sigterm_received() -> bool {
    SIGTERM.load(Ordering::SeqCst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_clear_and_install_is_safe() {
        install_sigterm_handler();
        install_sigterm_handler();
        // The flag itself is only ever set by signal delivery; spawning
        // a process to kill ourselves belongs to the e2e tests.
        let _ = sigterm_received();
    }
}
