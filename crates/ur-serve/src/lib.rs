//! Resilient concurrent serving for Ur sessions.
//!
//! `ur-serve` puts a multi-client TCP front door (`urc --listen ADDR`)
//! on the same line-delimited JSON protocol as `urc --serve`, backed by
//! a supervised pool of [`ur_web::Session`] workers. The paper's
//! metaprogramming pipeline is expensive and occasionally adversarial
//! (deep type-level computation, injected faults), so the serving layer
//! is built around four explicit policies rather than best-effort
//! threads:
//!
//! - **Admission / overload** ([`server`]): bounded queues and
//!   connection caps; excess load is *shed* with a structured
//!   `{"error":"overloaded","retry_after_ms":N}` answer, never buffered
//!   without bound.
//! - **Deadlines** ([`protocol`]): a per-request wall-clock budget maps
//!   onto the elaborator's fuel ceilings
//!   ([`ur_core::limits::Limits::for_deadline_ms`]), so over-budget
//!   work degrades to a structured E0900 diagnostic instead of
//!   wedging a worker.
//! - **Supervision** ([`pool`]): wedged or panicked workers are
//!   detected by watchdog timeouts, replaced (generation-checked), and
//!   their sessions rebuilt deterministically from the last
//!   acknowledged script — with a shared durable `ur-db` store healed
//!   via checkpoint-retry and adopted state, never double-applied.
//! - **Drain** ([`server::Server::wait`]): SIGTERM or a `shutdown`
//!   request stops admission, completes or deadlines-out in-flight
//!   work, checkpoints the store, and reports a final [`Summary`].
//!
//! The serve gauges surface through the same [`ur_core::stats::Stats`]
//! schema as the REPL's `:stats` and `urc --stats` (the `srv_*`
//! fields), and four failpoint sites (`serve_accept`, `serve_read`,
//! `serve_write`, `serve_wedge`) make the whole front door part of the
//! deterministic chaos surface.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

pub mod counters;
pub mod pool;
pub mod protocol;
pub mod reader;
pub mod server;
pub mod signal;

pub use counters::ServeCounters;
pub use protocol::{Control, ReqCtx, MAX_REQUEST};
pub use server::{Server, Summary};
pub use signal::{install_sigterm_handler, sigterm_received};

use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use ur_core::failpoint::FpConfig;
use ur_eval::EvalEngine;

/// Configuration for a [`Server`]. `Default` gives the production
/// profile; tests and the bench harness tighten the knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7788` (port 0 picks a free port —
    /// read it back from [`Server::addr`]).
    pub addr: String,
    /// Pool workers. In durable mode (`db_dir` set) worker 0 is the
    /// single writer holding the store's flock; the rest are snapshot
    /// readers serving read-only commands from the writer's published
    /// MVCC snapshots.
    pub workers: usize,
    /// Bounded per-worker request queue; a full queue sheds.
    pub queue_depth: usize,
    /// Global live-connection cap; excess connections are shed.
    pub max_conns: usize,
    /// Per-client (peer IP) connection cap.
    pub max_conns_per_client: usize,
    /// Default per-request wall-clock budget (a request's own
    /// `deadline_ms` can only tighten it).
    pub deadline_ms: u64,
    /// Watchdog patience increment (see [`server::patience_ms`]).
    pub watchdog_ms: u64,
    /// Backoff hint included in shed responses.
    pub retry_after_ms: u64,
    /// How long [`Server::wait`] lets stragglers finish after drain
    /// begins (handlers also deadline out on their own).
    pub drain_ms: u64,
    /// Shared durable database directory (single-writer pool mode).
    pub db_dir: Option<PathBuf>,
    /// Incremental disk-cache directory for sessions (`None` defers to
    /// `UR_CACHE_DIR` / `.ur-cache`, exactly like `urc`).
    pub cache_dir: Option<PathBuf>,
    /// Elaborator worker threads per session (`None` = session
    /// default, i.e. `UR_TEST_THREADS` / available parallelism).
    pub threads: Option<usize>,
    /// Evaluation engine override for sessions.
    pub engine: Option<EvalEngine>,
    /// Deterministic fault injection, installed in every serve thread
    /// (acceptor, handlers, workers). Inert without the `failpoints`
    /// feature.
    pub fp: Option<FpConfig>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 16,
            max_conns: 64,
            max_conns_per_client: 64,
            deadline_ms: 2_000,
            watchdog_ms: 500,
            retry_after_ms: 50,
            drain_ms: 2_000,
            db_dir: None,
            cache_dir: None,
            threads: None,
            engine: None,
            fp: None,
        }
    }
}

/// Poison-tolerant mutex lock: serve state (counters, fault sinks, the
/// scripts map) stays meaningful across a panicking thread, and the
/// serving layer must keep running through exactly those panics.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}
