//! The TCP front door: admission control, per-request watchdogs, and
//! graceful drain over the supervised pool.
//!
//! Every connection gets a handler thread that reads line-delimited
//! JSON requests (same schema as `urc --serve`), applies the admission
//! policy, and shepherds admitted requests through a worker queue with
//! a watchdog. The policies, all explicit and bounded:
//!
//! - **Admission.** A global connection cap and a per-client (per peer
//!   IP) cap shed excess connections with a structured `overloaded`
//!   response; worker queues are bounded (`try_send` — a full queue
//!   sheds the *request*, never buffers it); draining sheds everything
//!   new. Nothing in the front door buffers without bound.
//! - **Deadlines.** Each request carries an absolute deadline fixed at
//!   admission (`min(server default, request's deadline_ms)`). Workers
//!   convert the remaining budget into a fuel ceiling, so over-budget
//!   work degrades to a structured E0900 diagnostic; requests that
//!   expire in the queue get `deadline_expired` answers.
//! - **Watchdog + supervision.** The handler waits [`patience_ms`] for
//!   a reply (escalating once on retry). A timeout or a dead queue
//!   means the worker wedged or died: the handler reports it
//!   ([`Pool::report_failed`], generation-checked), and *replays* the
//!   request on the replacement when replay is safe — load/edit are
//!   idempotent by construction (a rebuild restores the pristine base
//!   and replays the script), eval against the shared durable store is
//!   not (the lost attempt may or may not have committed), so that one
//!   case is answered with an explicit unknown-outcome error instead.
//! - **Drain.** `shutdown` (or SIGTERM via `urc --listen`) stops
//!   admission, lets in-flight work finish or deadline out, closes the
//!   pool (final checkpoints), and reports a final [`Summary`].

use crate::counters::ServeCounters;
use crate::pool::{Job, Pool};
use crate::protocol::{self, MAX_REQUEST};
use crate::reader::read_capped_line;
use crate::{lock, ServeConfig};
use std::collections::HashMap;
use std::io::{BufReader, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, RecvTimeoutError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use ur_core::failpoint::{self, FpCounters, Site};
use ur_query::json::parse_flat_object;

/// How long a connection handler waits for a worker's reply on the
/// given attempt before declaring the worker wedged. The base covers a
/// full deadline of queue overhang plus the request's own deadline
/// (queued-behind requests answer quickly once their deadlines lapse);
/// the escalation doubles the watchdog share on the retry, so a slow
/// machine gets patience before a second restart.
pub fn patience_ms(cfg: &ServeConfig, attempt: u32) -> u64 {
    2 * cfg.deadline_ms + cfg.watchdog_ms * (1_u64 << attempt.min(4))
}

/// Final serving report, returned by [`Server::wait`].
#[derive(Clone, Debug, Default)]
pub struct Summary {
    pub accepted: u64,
    pub requests: u64,
    pub shed: u64,
    pub deadline_expired: u64,
    pub worker_restarts: u64,
    pub drained: u64,
    /// Fault-injection totals across acceptor, handlers, and workers
    /// (all-zero without the `failpoints` feature).
    pub faults: FpCounters,
}

impl Summary {
    /// The summary as one JSON line (the final line `urc --listen`
    /// prints before exiting).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ok\":true,\"event\":\"final\",\"accepted\":{},\"requests\":{},\
             \"shed\":{},\"deadline_expired\":{},\"worker_restarts\":{},\"drained\":{}}}",
            self.accepted,
            self.requests,
            self.shed,
            self.deadline_expired,
            self.worker_restarts,
            self.drained
        )
    }
}

/// A running serve front door. Dropping it does **not** stop serving;
/// call [`Server::start_drain`] then [`Server::wait`].
pub struct Server {
    addr: SocketAddr,
    pool: Arc<Pool>,
    counters: Arc<ServeCounters>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `cfg.addr` and starts the acceptor and the pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let counters = Arc::new(ServeCounters::new());
        let pool = Pool::start(cfg, Arc::clone(&counters));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let pool = Arc::clone(&pool);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("ur-serve-accept".to_string())
                .spawn(move || accept_loop(listener, pool, handlers))
                .ok()
        };
        Ok(Server {
            addr,
            pool,
            counters,
            acceptor,
            handlers,
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn counters(&self) -> &Arc<ServeCounters> {
        &self.counters
    }

    /// Begins graceful drain: stop admitting, finish or deadline-out
    /// in-flight work. Idempotent.
    pub fn start_drain(&self) {
        self.pool.start_drain();
    }

    /// True once a drain has begun (via [`Server::start_drain`] or a
    /// client `shutdown` command).
    pub fn draining(&self) -> bool {
        self.pool
            .shared
            .draining
            .load(Ordering::SeqCst)
    }

    /// Waits for the drain to complete — acceptor gone, every handler
    /// finished, pool checkpointed and joined — and returns the final
    /// summary. Call after [`Server::start_drain`] (or rely on a client
    /// `shutdown`); blocks until then.
    pub fn wait(mut self) -> Summary {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        loop {
            let hs: Vec<JoinHandle<()>> = std::mem::take(&mut *lock(&self.handlers));
            if hs.is_empty() {
                break;
            }
            for h in hs {
                let _ = h.join();
            }
        }
        self.pool.shutdown();
        let c = &self.counters;
        let mut faults = *lock(&self.pool.shared.faults);
        faults.absorb(&failpoint::take_counters());
        Summary {
            accepted: c.accepted.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            deadline_expired: c.deadline_expired.load(Ordering::Relaxed),
            worker_restarts: c.worker_restarts.load(Ordering::Relaxed),
            drained: c.drained.load(Ordering::Relaxed),
            faults,
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    pool: Arc<Pool>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    if let Some(fp) = pool.shared.cfg.fp {
        failpoint::install(Some(fp));
    }
    let live: Arc<AtomicU64> = Arc::new(AtomicU64::new(0));
    let per_ip: Arc<Mutex<HashMap<IpAddr, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    let mut next_conn: u64 = 0;
    loop {
        if pool.shared.draining.load(Ordering::SeqCst) {
            break;
        }
        let (stream, peer) = match listener.accept() {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        if failpoint::fire(Site::ServeAccept) {
            // Injected accept-time death: the connection vanishes before
            // a handler ever owns it. Clients observe EOF and retry.
            drop(stream);
            continue;
        }
        // Request/response ping-pong: Nagle + delayed ACK would add
        // ~40ms to every one-line answer.
        let _ = stream.set_nodelay(true);
        let cfg = &pool.shared.cfg;
        let over_global = live.load(Ordering::SeqCst) >= cfg.max_conns as u64;
        let over_client = *lock(&per_ip).entry(peer.ip()).or_insert(0)
            >= cfg.max_conns_per_client as u64;
        if over_global || over_client {
            pool.shared.counters.inc_shed();
            shed_and_close(stream, retry_hint_ms(&pool));
            continue;
        }
        *lock(&per_ip).entry(peer.ip()).or_insert(0) += 1;
        live.fetch_add(1, Ordering::SeqCst);
        pool.shared.counters.inc_accepted();
        let conn = next_conn;
        next_conn += 1;
        let pool = Arc::clone(&pool);
        let live = Arc::clone(&live);
        let per_ip = Arc::clone(&per_ip);
        let h = std::thread::Builder::new()
            .name(format!("ur-serve-conn-{conn}"))
            .spawn(move || {
                handle_conn(&pool, conn, stream);
                live.fetch_sub(1, Ordering::SeqCst);
                let mut m = lock(&per_ip);
                if let Some(n) = m.get_mut(&peer.ip()) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        m.remove(&peer.ip());
                    }
                }
            })
            .ok();
        if let Some(h) = h {
            lock(&handlers).push(h);
        }
    }
    // Shipped for the final summary: the acceptor's own fault counters.
    let c = failpoint::take_counters();
    lock(&pool.shared.faults).absorb(&c);
}

/// The retry hint handed to shed clients: the configured hint divided
/// by the pool depth. With N workers draining bounded queues in
/// parallel a slot frees up roughly N times as fast, and durable mode's
/// snapshot readers count — they absorb the read-only traffic that used
/// to serialise behind the single writer — so the hint stays honest
/// instead of quoting the single-worker wait.
fn retry_hint_ms(pool: &Arc<Pool>) -> u64 {
    (pool.shared.cfg.retry_after_ms / pool.workers() as u64).max(1)
}

fn shed_and_close(mut stream: TcpStream, retry_after_ms: u64) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let _ = writeln!(stream, "{}", protocol::overloaded_response(retry_after_ms, false));
}

fn handle_conn(pool: &Arc<Pool>, conn: u64, stream: TcpStream) {
    if let Some(fp) = pool.shared.cfg.fp {
        failpoint::install(Some(fp));
    }
    serve_conn(pool, conn, &stream);
    // Connection epilogue: release the worker-side session (bounded
    // best-effort — a full queue only delays the cleanup, and a global
    // durable session is never dropped) and this handler's fault
    // counters.
    if pool.shared.cfg.db_dir.is_none() {
        let (_wid, _gen, tx) = pool.handle_for(conn);
        for _ in 0..5 {
            match tx.try_send(Job::Close { conn }) {
                Ok(()) | Err(TrySendError::Disconnected(_)) => break,
                Err(TrySendError::Full(_)) => {
                    std::thread::sleep(Duration::from_millis(10))
                }
            }
        }
        lock(&pool.shared.scripts).remove(&conn);
    }
    let c = failpoint::take_counters();
    lock(&pool.shared.faults).absorb(&c);
}

fn serve_conn(pool: &Arc<Pool>, conn: u64, stream: &TcpStream) {
    let cfg = &pool.shared.cfg;
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let Ok(reader_stream) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    let draining = || pool.shared.draining.load(Ordering::SeqCst);
    loop {
        let line = match read_capped_line(&mut reader, MAX_REQUEST, &draining) {
            Ok(Some((line, truncated))) => {
                if failpoint::fire(Site::ServeRead) {
                    // Injected torn read: the line is untrustworthy and
                    // the connection is torn down cleanly, unanswered.
                    return;
                }
                if truncated {
                    let _ = writeln!(writer, "{}", protocol::oversize_response());
                    continue;
                }
                line
            }
            Ok(None) | Err(_) => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        // Admission-level peek: malformed requests, quit, and shutdown
        // are answered without spending a queue slot.
        let req = parse_flat_object(&line);
        let Some(req) = req else {
            let _ = writeln!(writer, "{}", protocol::malformed_response());
            continue;
        };
        match req.get("cmd").map(String::as_str) {
            Some("quit") => {
                let _ = writeln!(writer, "{{\"ok\":true}}");
                return;
            }
            Some("shutdown") => {
                pool.start_drain();
                let _ = writeln!(writer, "{{\"ok\":true,\"draining\":true}}");
                continue;
            }
            _ => {}
        }
        if draining() {
            pool.shared.counters.inc_shed();
            let _ = writeln!(
                writer,
                "{}",
                protocol::overloaded_response(retry_hint_ms(pool), true)
            );
            return;
        }
        let deadline_ms = req
            .get("deadline_ms")
            .and_then(|v| v.trim().parse::<u64>().ok())
            .map_or(cfg.deadline_ms, |d| d.min(cfg.deadline_ms));
        // Replay safety: a rebuild is idempotent (restore + replay);
        // everything stateless is trivially replayable; eval against the
        // shared durable store is the one case where the lost attempt
        // may have committed.
        let replayable = cfg.db_dir.is_none()
            || !matches!(req.get("cmd").map(String::as_str), Some("eval"));
        // Read-only commands never mutate session or store; in durable
        // mode they fan out to the snapshot readers instead of queueing
        // behind the writer.
        let read_only = matches!(
            req.get("cmd").map(String::as_str),
            Some("type") | Some("diagnostics") | Some("stats") | Some("db")
        );
        let resp = shepherd(pool, conn, &line, deadline_ms, replayable, read_only);
        if failpoint::fire(Site::ServeWrite) {
            // Injected write failure after execution: effects (if any)
            // are applied but the ack is lost — the acked-vs-applied
            // ambiguity clients must tolerate.
            return;
        }
        if writeln!(writer, "{resp}").is_err() {
            return;
        }
    }
}

/// Submits one admitted request and supervises it to an answer:
/// bounded-queue shed, deadline accounting, watchdog timeout, worker
/// replacement, and at most one replay.
fn shepherd(
    pool: &Arc<Pool>,
    conn: u64,
    line: &str,
    deadline_ms: u64,
    replayable: bool,
    read_only: bool,
) -> String {
    let cfg = &pool.shared.cfg;
    let mut attempt: u32 = 0;
    loop {
        let (wid, gen, tx) = pool.handle_for_routed(conn, read_only);
        let deadline = Instant::now() + Duration::from_millis(deadline_ms);
        let (reply_tx, reply_rx) = sync_channel::<String>(1);
        match tx.try_send(Job::Request {
            conn,
            line: line.to_string(),
            deadline,
            reply: reply_tx,
        }) {
            Err(TrySendError::Full(_)) => {
                pool.shared.counters.inc_shed();
                return protocol::overloaded_response(retry_hint_ms(pool), false);
            }
            Err(TrySendError::Disconnected(_)) => {
                // The worker died before we could enqueue. Replacing it
                // is always safe here — nothing of ours was in flight.
                pool.report_failed(wid, gen);
                attempt += 1;
                if attempt > 2 {
                    return protocol::lost_request_response();
                }
                continue;
            }
            Ok(()) => {}
        }
        pool.shared.counters.inc_requests();
        match reply_rx.recv_timeout(Duration::from_millis(patience_ms(cfg, attempt))) {
            Ok(resp) => return resp,
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                pool.report_failed(wid, gen);
                attempt += 1;
                if replayable && attempt <= 1 {
                    continue;
                }
                return protocol::lost_request_response();
            }
        }
    }
}
