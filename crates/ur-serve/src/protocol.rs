//! The serve request protocol: one flat JSON object per line in, one
//! JSON object per line out.
//!
//! This is the *small, testable spec* both front doors share: `urc
//! --serve` (stdin/stdout, one session) and the `--listen` TCP pool
//! drive the same [`handle_line`], so a request means the same thing —
//! and degrades the same way — on both. Requests:
//!
//! ```text
//! {"cmd":"load"|"edit","source":S[,"deadline_ms":N]}  rebuild
//! {"cmd":"type","name":X}                             query a type
//! {"cmd":"eval","expr":E[,"deadline_ms":N]}           evaluate E
//! {"cmd":"diagnostics"}                               last diagnostics
//! {"cmd":"stats"}                                     counters
//! {"cmd":"db"}                                        database report
//! {"cmd":"quit"}                                      close this stream
//! {"cmd":"shutdown"}                                  drain the server
//! ```
//!
//! `deadline_ms` caps the request's wall-clock budget; the remaining
//! budget is converted to a fuel ceiling
//! ([`ur_core::limits::Limits::for_deadline_ms`]) so an over-budget
//! elaboration degrades to a structured E0900 diagnostic instead of
//! wedging its worker. Overload and failure answers are structured too
//! (`overloaded` + `retry_after_ms`, `deadline_expired`, lost in-flight
//! requests) — see the response builders below.

use crate::counters::ServeCounters;
use std::sync::Arc;
use ur_core::limits::Limits;
use ur_query::json::{diags_to_json, escape, parse_flat_object};
use ur_web::Session;

/// Per-request size cap, shared by both front doors. A line longer
/// than this gets a structured JSON error; the excess is drained
/// without ever being buffered.
pub const MAX_REQUEST: usize = 8 * 1024 * 1024;

/// What the caller should do after a response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Control {
    /// Keep serving this stream.
    Continue,
    /// Close this stream (TCP: just this connection; stdin: the process).
    Quit,
    /// Drain the whole server.
    Shutdown,
}

/// Per-stream protocol state.
pub struct ReqCtx {
    /// Diagnostics from the most recent load/edit (the `diagnostics`
    /// command replays them).
    pub last_diags: ur_syntax::Diagnostics,
    /// Serve gauges folded into `stats` responses, when serving.
    pub counters: Option<Arc<ServeCounters>>,
}

impl ReqCtx {
    pub fn new(counters: Option<Arc<ServeCounters>>) -> ReqCtx {
        ReqCtx {
            last_diags: Vec::new(),
            counters,
        }
    }
}

/// Response for a line that does not parse as a flat JSON object.
/// Shared by the admission layer (which answers without spending a
/// queue slot) and [`handle_line`], so the text cannot drift.
pub fn malformed_response() -> String {
    "{\"ok\":false,\"error\":\"malformed request: expected a flat JSON object\"}".to_string()
}

/// Response for a request line that exceeded [`MAX_REQUEST`].
pub fn oversize_response() -> String {
    format!(
        "{{\"ok\":false,\"error\":\"request exceeds the {MAX_REQUEST}-byte \
         limit and was dropped\"}}"
    )
}

/// Load-shed response: the admission layer refused the request (bounded
/// queue full, connection caps, or draining). `retry_after_ms` is the
/// client's backoff hint.
pub fn overloaded_response(retry_after_ms: u64, draining: bool) -> String {
    if draining {
        format!(
            "{{\"ok\":false,\"error\":\"overloaded\",\"retry_after_ms\":{retry_after_ms},\
             \"draining\":true}}"
        )
    } else {
        format!("{{\"ok\":false,\"error\":\"overloaded\",\"retry_after_ms\":{retry_after_ms}}}")
    }
}

/// Deadline-expiry response: the request's wall-clock budget ran out
/// before a worker could start it.
pub fn deadline_expired_response(deadline_ms: u64) -> String {
    format!(
        "{{\"ok\":false,\"error\":\"deadline_expired\",\"deadline_ms\":{deadline_ms},\
         \"code\":\"E0900\"}}"
    )
}

/// Response for a request whose worker was killed mid-flight and whose
/// effects cannot be safely replayed: the outcome is unknown.
pub fn lost_request_response() -> String {
    "{\"ok\":false,\"error\":\"in-flight request lost to a worker restart; \
     outcome unknown\"}"
        .to_string()
}

/// Response when request handling panicked (the panic was contained;
/// the session survives).
pub fn internal_error_response() -> String {
    "{\"ok\":false,\"error\":\"internal error handling request; session continues\"}"
        .to_string()
}

/// The inferred type of the most recent value named `name`, if any.
pub fn type_of(sess: &Session, name: &str) -> Option<String> {
    use ur_infer::ElabDecl;
    sess.elab.decls.iter().rev().find_map(|d| match d {
        ElabDecl::Val { name: n, ty, .. } if n == name => Some(ty.to_string()),
        _ => None,
    })
}

/// The request's own `deadline_ms` field, if present and well-formed.
pub fn requested_deadline_ms(line: &str) -> Option<u64> {
    let req = parse_flat_object(line)?;
    req.get("deadline_ms")?.trim().parse().ok()
}

/// Runs `f` with the session's fuel ceilings scaled to `budget_ms` of
/// wall clock (when given), restoring the previous limits after. Only
/// correct for operations that do *not* restore the session base
/// (evaluation); rebuilds must go through
/// [`Session::reelaborate_limited`], which installs the ceiling after
/// the base restore.
fn with_deadline_fuel<T>(
    sess: &mut Session,
    budget_ms: Option<u64>,
    f: impl FnOnce(&mut Session) -> T,
) -> T {
    let Some(ms) = budget_ms else { return f(sess) };
    let saved = sess.elab.cx.fuel.limits;
    sess.elab.cx.fuel.limits = Limits::for_deadline_ms(ms);
    sess.elab.cx.fuel.reset();
    let out = f(sess);
    sess.elab.cx.fuel.limits = saved;
    sess.elab.cx.fuel.reset();
    out
}

/// Handles one request line; returns `(response, control)`.
///
/// `budget_ms` is the wall-clock budget remaining for this request
/// (admission deadline minus queue time); the request's own
/// `deadline_ms` field tightens it further. `None` means unlimited.
pub fn handle_line(
    sess: &mut Session,
    ctx: &mut ReqCtx,
    line: &str,
    budget_ms: Option<u64>,
) -> (String, Control) {
    let err = |msg: &str| {
        (
            format!("{{\"ok\":false,\"error\":\"{}\"}}", escape(msg)),
            Control::Continue,
        )
    };
    let Some(req) = parse_flat_object(line) else {
        return (malformed_response(), Control::Continue);
    };
    let budget_ms = [
        budget_ms,
        req.get("deadline_ms").and_then(|v| v.trim().parse().ok()),
    ]
    .into_iter()
    .flatten()
    .min();
    match req.get("cmd").map(String::as_str) {
        Some("load") | Some("edit") => {
            let Some(src) = req.get("source") else {
                return err("load/edit needs a \"source\" field");
            };
            let (_defs, diags) = match budget_ms {
                Some(ms) => sess.reelaborate_limited(src, Limits::for_deadline_ms(ms)),
                None => sess.reelaborate(src),
            };
            let r = sess.last_incr_report().cloned().unwrap_or_default();
            let resp = format!(
                "{{\"ok\":true,\"decls\":{},\"green\":{},\"red\":{},\
                 \"disk_hits\":{},\"diagnostics\":{}}}",
                r.decls_total,
                r.green,
                r.red,
                r.disk_hits,
                diags_to_json(&diags)
            );
            ctx.last_diags = diags;
            (resp, Control::Continue)
        }
        Some("type") => {
            let Some(name) = req.get("name") else {
                return err("type needs a \"name\" field");
            };
            match type_of(sess, name) {
                Some(ty) => (
                    format!(
                        "{{\"ok\":true,\"name\":\"{}\",\"type\":\"{}\"}}",
                        escape(name),
                        escape(&ty)
                    ),
                    Control::Continue,
                ),
                None => err(&format!("no value named {name}")),
            }
        }
        Some("eval") => {
            let Some(expr) = req.get("expr") else {
                return err("eval needs an \"expr\" field");
            };
            match with_deadline_fuel(sess, budget_ms, |sess| sess.eval(expr)) {
                Ok(v) => (
                    format!("{{\"ok\":true,\"value\":\"{}\"}}", escape(&v.to_string())),
                    Control::Continue,
                ),
                Err(e) => err(&e.to_string()),
            }
        }
        Some("diagnostics") => (
            format!(
                "{{\"ok\":true,\"diagnostics\":{}}}",
                diags_to_json(&ctx.last_diags)
            ),
            Control::Continue,
        ),
        Some("stats") => {
            let mut s = sess.stats_snapshot();
            if let Some(c) = &ctx.counters {
                c.fold_into(&mut s);
            }
            (
                format!("{{\"ok\":true,\"stats\":\"{}\"}}", escape(&s.to_string())),
                Control::Continue,
            )
        }
        Some("db") => (
            format!("{{\"ok\":true,\"db\":\"{}\"}}", escape(&sess.db_report())),
            Control::Continue,
        ),
        Some("quit") => ("{\"ok\":true}".to_string(), Control::Quit),
        Some("shutdown") => (
            "{\"ok\":true,\"draining\":true}".to_string(),
            Control::Shutdown,
        ),
        Some(other) => err(&format!("unknown cmd {other}")),
        None => err("request needs a \"cmd\" field"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sess() -> Session {
        Session::new().expect("session")
    }

    #[test]
    fn load_type_eval_round_trip() {
        let mut s = sess();
        let mut ctx = ReqCtx::new(None);
        let (resp, c) = handle_line(
            &mut s,
            &mut ctx,
            "{\"cmd\":\"load\",\"source\":\"val x = 41\"}",
            None,
        );
        assert_eq!(c, Control::Continue);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let (resp, _) = handle_line(&mut s, &mut ctx, "{\"cmd\":\"type\",\"name\":\"x\"}", None);
        assert!(resp.contains("\"type\":\"int\""), "{resp}");
        let (resp, _) = handle_line(&mut s, &mut ctx, "{\"cmd\":\"eval\",\"expr\":\"x + 1\"}", None);
        assert!(resp.contains("\"value\":\"42\""), "{resp}");
    }

    #[test]
    fn quit_and_shutdown_controls() {
        let mut s = sess();
        let mut ctx = ReqCtx::new(None);
        let (_, c) = handle_line(&mut s, &mut ctx, "{\"cmd\":\"quit\"}", None);
        assert_eq!(c, Control::Quit);
        let (resp, c) = handle_line(&mut s, &mut ctx, "{\"cmd\":\"shutdown\"}", None);
        assert_eq!(c, Control::Shutdown);
        assert!(resp.contains("draining"), "{resp}");
    }

    #[test]
    fn malformed_and_unknown_requests_error_without_quit() {
        let mut s = sess();
        let mut ctx = ReqCtx::new(None);
        for line in ["not json", "{\"cmd\":\"nope\"}", "{\"x\":1}"] {
            let (resp, c) = handle_line(&mut s, &mut ctx, line, None);
            assert_eq!(c, Control::Continue, "{line}");
            assert!(resp.contains("\"ok\":false"), "{line}: {resp}");
        }
    }

    #[test]
    fn tiny_deadline_degrades_to_e0900_not_a_hang() {
        let mut s = sess();
        let mut ctx = ReqCtx::new(None);
        // A wide record concatenation whose disjointness goal needs
        // 150×150 prover pairs — far beyond the ~2000 a 1ms budget
        // allows, while default limits elaborate it fine.
        let fields = |prefix: &str, n: usize| {
            (0..n)
                .map(|i| format!("{prefix}{i} = {i}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let src = format!("val wide = {{{}}} ++ {{{}}}", fields("A", 150), fields("B", 150));
        let req = format!(
            "{{\"cmd\":\"load\",\"source\":\"{}\",\"deadline_ms\":\"1\"}}",
            escape(&src)
        );
        let (resp, c) = handle_line(&mut s, &mut ctx, &req, None);
        assert_eq!(c, Control::Continue);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("E0900"), "expected structured degradation: {resp}");
        // The session's default limits are restored afterwards: a sane
        // load succeeds cleanly.
        let (resp, _) = handle_line(
            &mut s,
            &mut ctx,
            "{\"cmd\":\"load\",\"source\":\"val y = 7\"}",
            None,
        );
        assert!(resp.contains("\"diagnostics\":[]"), "{resp}");
    }

    #[test]
    fn stats_response_includes_serve_schema() {
        let mut s = sess();
        let c = Arc::new(ServeCounters::new());
        c.inc_accepted();
        let mut ctx = ReqCtx::new(Some(c));
        let (resp, _) = handle_line(&mut s, &mut ctx, "{\"cmd\":\"stats\"}", None);
        assert!(resp.contains("serve[accepted=1"), "{resp}");
    }

    #[test]
    fn structured_responses_are_wellformed() {
        assert!(oversize_response().contains("limit"));
        let o = overloaded_response(50, false);
        assert!(o.contains("\"error\":\"overloaded\"") && o.contains("\"retry_after_ms\":50"));
        assert!(overloaded_response(50, true).contains("\"draining\":true"));
        assert!(deadline_expired_response(5).contains("deadline_expired"));
        assert!(lost_request_response().contains("outcome unknown"));
    }
}
