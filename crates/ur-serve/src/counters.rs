//! Cross-thread serve gauges.
//!
//! The serve layer spans many threads (acceptor, connection handlers,
//! pool workers, supervisor) while [`ur_core::stats::Stats`] is a plain
//! struct owned by whichever session snapshots it. [`ServeCounters`] is
//! the bridge: lock-free atomics every serve thread bumps, folded into
//! a `Stats` snapshot at observation points (`stats` responses, the
//! final drain line) so the REPL, `--stats`, and serve all report one
//! schema.

use std::sync::atomic::{AtomicU64, Ordering};
use ur_core::stats::Stats;

/// Shared atomic counters for the serve front door. Field meanings
/// mirror the `srv_*` counters in [`Stats`].
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Connections accepted past the admission caps.
    pub accepted: AtomicU64,
    /// Requests admitted to a worker queue.
    pub requests: AtomicU64,
    /// Requests/connections shed (queue full, conn caps, draining).
    pub shed: AtomicU64,
    /// Requests answered with a deadline-expiry degradation.
    pub deadline_expired: AtomicU64,
    /// Workers killed and replaced by the supervisor.
    pub worker_restarts: AtomicU64,
    /// In-flight requests completed during graceful drain.
    pub drained: AtomicU64,
}

impl ServeCounters {
    pub fn new() -> ServeCounters {
        ServeCounters::default()
    }

    pub fn inc_accepted(&self) {
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }
    pub fn inc_requests(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }
    pub fn inc_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }
    pub fn inc_deadline_expired(&self) {
        self.deadline_expired.fetch_add(1, Ordering::Relaxed);
    }
    pub fn inc_worker_restarts(&self) {
        self.worker_restarts.fetch_add(1, Ordering::Relaxed);
    }
    pub fn inc_drained(&self) {
        self.drained.fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the gauges into `stats`' `srv_*` fields (overwriting: the
    /// gauges are process-wide truth, not per-session deltas).
    pub fn fold_into(&self, stats: &mut Stats) {
        stats.srv_accepted = self.accepted.load(Ordering::Relaxed);
        stats.srv_requests = self.requests.load(Ordering::Relaxed);
        stats.srv_shed = self.shed.load(Ordering::Relaxed);
        stats.srv_deadline_expired = self.deadline_expired.load(Ordering::Relaxed);
        stats.srv_worker_restarts = self.worker_restarts.load(Ordering::Relaxed);
        stats.srv_drained = self.drained.load(Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_into_overwrites_srv_fields() {
        let c = ServeCounters::new();
        c.inc_accepted();
        c.inc_accepted();
        c.inc_shed();
        c.inc_requests();
        c.inc_deadline_expired();
        c.inc_worker_restarts();
        c.inc_drained();
        let mut s = Stats::new();
        s.srv_accepted = 99;
        c.fold_into(&mut s);
        assert_eq!(s.srv_accepted, 2);
        assert_eq!(s.srv_requests, 1);
        assert_eq!(s.srv_shed, 1);
        assert_eq!(s.srv_deadline_expired, 1);
        assert_eq!(s.srv_worker_restarts, 1);
        assert_eq!(s.srv_drained, 1);
        assert!(s.to_string().contains("serve[accepted=2"));
    }
}
