//! Capped line reading for the serve protocols.
//!
//! One request is one `\n`-terminated line, never buffered past
//! [`crate::protocol::MAX_REQUEST`] bytes: the excess is drained and
//! the request answered with a structured error, so a hostile or broken
//! client cannot balloon the server. Shared by `urc --serve` (blocking
//! stdin) and the TCP front door (sockets with a short read timeout, so
//! a drain can interrupt an idle connection).

use std::io::{self, BufRead};

/// Reads one `\n`-terminated line, buffering at most `max` bytes of it.
///
/// Returns `None` at end of input, otherwise `(line, truncated)` —
/// `truncated` set when the line exceeded the cap (the stored prefix is
/// then partial and must not be parsed as a request). A trailing `\r`
/// is stripped.
///
/// Timeout-style read errors (`WouldBlock`, `TimedOut`, `Interrupted`)
/// are retried internally — any partial prefix is preserved — unless
/// `should_abort` returns true, in which case the read gives up with
/// `None` (used by graceful drain to unblock idle connections).
///
/// # Errors
///
/// Any other I/O error from the underlying reader.
pub fn read_capped_line(
    r: &mut impl BufRead,
    max: usize,
    should_abort: &dyn Fn() -> bool,
) -> io::Result<Option<(String, bool)>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut truncated = false;
    let mut saw_any = false;
    loop {
        let chunk = match r.fill_buf() {
            Ok(c) => c,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                if should_abort() {
                    return Ok(None);
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        if chunk.is_empty() {
            if !saw_any {
                return Ok(None);
            }
            break;
        }
        saw_any = true;
        let (take, found_newline) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos, true),
            None => (chunk.len(), false),
        };
        if !truncated {
            let room = max - buf.len();
            let kept = take.min(room);
            buf.extend_from_slice(&chunk[..kept]);
            if kept < take {
                truncated = true;
            }
        }
        let consumed = if found_newline { take + 1 } else { take };
        r.consume(consumed);
        if found_newline {
            break;
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(Some((String::from_utf8_lossy(&buf).into_owned(), truncated)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    const NEVER: &dyn Fn() -> bool = &|| false;

    #[test]
    fn reads_lines_and_eof() {
        let mut r = BufReader::new(&b"one\ntwo\r\n"[..]);
        assert_eq!(
            read_capped_line(&mut r, 64, NEVER).unwrap(),
            Some(("one".to_string(), false))
        );
        assert_eq!(
            read_capped_line(&mut r, 64, NEVER).unwrap(),
            Some(("two".to_string(), false))
        );
        assert_eq!(read_capped_line(&mut r, 64, NEVER).unwrap(), None);
    }

    #[test]
    fn final_partial_line_is_returned_not_dropped() {
        // EOF after a partial line: the line is still delivered (this is
        // the `--serve` EOF path that must answer the last request).
        let mut r = BufReader::new(&b"{\"cmd\":\"stats\"}"[..]);
        assert_eq!(
            read_capped_line(&mut r, 64, NEVER).unwrap(),
            Some(("{\"cmd\":\"stats\"}".to_string(), false))
        );
        assert_eq!(read_capped_line(&mut r, 64, NEVER).unwrap(), None);
    }

    #[test]
    fn over_cap_lines_are_truncated_and_drained() {
        let mut data = vec![b'x'; 100];
        data.push(b'\n');
        data.extend_from_slice(b"next\n");
        let mut r = BufReader::new(&data[..]);
        let (line, truncated) = read_capped_line(&mut r, 10, NEVER).unwrap().unwrap();
        assert!(truncated);
        assert_eq!(line.len(), 10, "only the capped prefix is buffered");
        // The excess was consumed: the next read sees the next line.
        assert_eq!(
            read_capped_line(&mut r, 10, NEVER).unwrap(),
            Some(("next".to_string(), false))
        );
    }

    /// A reader that yields `WouldBlock` once between chunks, like a
    /// socket with a read timeout.
    struct Stutter {
        chunks: Vec<Vec<u8>>,
        blocked: bool,
    }
    impl io::Read for Stutter {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if !self.blocked {
                self.blocked = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "later"));
            }
            self.blocked = false;
            match self.chunks.first_mut() {
                None => Ok(0),
                Some(c) => {
                    let n = c.len().min(out.len());
                    out[..n].copy_from_slice(&c[..n]);
                    c.drain(..n);
                    if c.is_empty() {
                        self.chunks.remove(0);
                    }
                    Ok(n)
                }
            }
        }
    }

    #[test]
    fn timeouts_preserve_partial_prefixes() {
        let mut r = BufReader::new(Stutter {
            chunks: vec![b"hel".to_vec(), b"lo\n".to_vec()],
            blocked: false,
        });
        assert_eq!(
            read_capped_line(&mut r, 64, NEVER).unwrap(),
            Some(("hello".to_string(), false))
        );
    }

    #[test]
    fn abort_interrupts_an_idle_read() {
        let mut r = BufReader::new(Stutter {
            chunks: vec![],
            blocked: false,
        });
        // First fill_buf blocks; abort says stop: the read returns None
        // instead of spinning.
        assert_eq!(read_capped_line(&mut r, 64, &|| true).unwrap(), None);
    }
}
