//! End-to-end tests for the `ur-serve` TCP front door: concurrent
//! clients, overload shedding, graceful drain, per-client caps, and
//! (under `--features failpoints`) supervised worker replacement.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;
use ur_serve::{ServeConfig, Server};

/// A line-oriented test client.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    fn send(&mut self, line: &str) {
        // Tolerates write failures: fault-injection tests tear
        // connections server-side, and a torn peer surfaces here as
        // BrokenPipe. The recv-side asserts catch real breakage.
        let _ = writeln!(self.writer, "{line}");
    }

    fn recv(&mut self) -> String {
        let mut out = String::new();
        self.reader.read_line(&mut out).expect("read");
        out.trim_end().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

/// A fresh, test-private cache directory: deadline tests rely on the
/// fuel actually burning, which a shared disk cache would short-circuit.
fn tmp_cache() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "ur-serve-e2e-cache-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn quick_cfg() -> ServeConfig {
    ServeConfig {
        deadline_ms: 5_000,
        watchdog_ms: 200,
        threads: Some(1),
        cache_dir: Some(tmp_cache()),
        ..ServeConfig::default()
    }
}

#[test]
fn serves_concurrent_clients_with_isolated_sessions() {
    let server = Server::start(quick_cfg()).expect("start");
    let addr = server.addr();
    let mut joins = Vec::new();
    for i in 0..4_u32 {
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            let v = 10 + i;
            let resp = c.roundtrip(&format!(
                "{{\"cmd\":\"load\",\"source\":\"val x = {v}\"}}"
            ));
            assert!(resp.contains("\"ok\":true"), "{resp}");
            assert!(resp.contains("\"diagnostics\":[]"), "{resp}");
            let resp = c.roundtrip("{\"cmd\":\"type\",\"name\":\"x\"}");
            assert!(resp.contains("\"type\":\"int\""), "{resp}");
            // Sessions are per-connection: each client sees its own x.
            let resp = c.roundtrip("{\"cmd\":\"eval\",\"expr\":\"x + 1\"}");
            assert!(
                resp.contains(&format!("\"value\":\"{}\"", v + 1)),
                "client {i}: {resp}"
            );
            let resp = c.roundtrip("{\"cmd\":\"quit\"}");
            assert!(resp.contains("\"ok\":true"), "{resp}");
        }));
    }
    for j in joins {
        j.join().expect("client thread");
    }
    server.start_drain();
    let summary = server.wait();
    assert!(summary.accepted >= 4, "{summary:?}");
    assert!(summary.requests >= 12, "{summary:?}");
}

#[test]
fn oversized_and_malformed_lines_answered_like_serve_mode() {
    let server = Server::start(quick_cfg()).expect("start");
    let mut c = Client::connect(server.addr());
    // Far past the cap: structured error, connection survives.
    let mut big = vec![b'x'; 9 * 1024 * 1024];
    big.push(b'\n');
    c.writer.write_all(&big).expect("write big");
    let resp = c.recv();
    assert!(resp.contains("\"ok\":false") && resp.contains("limit"), "{resp}");
    let resp = c.roundtrip("this is not json");
    assert!(resp.contains("malformed"), "{resp}");
    let resp = c.roundtrip("{\"cmd\":\"stats\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("serve[accepted="), "{resp}");
    server.start_drain();
    server.wait();
}

#[test]
fn overload_sheds_with_structured_retry_hint() {
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 1,
        deadline_ms: 10_000,
        threads: Some(1),
        cache_dir: Some(tmp_cache()),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("start");
    let addr = server.addr();
    // One slow-but-legal load occupies the single worker…
    let body = (0..4_000)
        .map(|i| format!("F{i} = {i}"))
        .collect::<Vec<_>>()
        .join(", ");
    let mut busy = Client::connect(addr);
    busy.send(&format!(
        "{{\"cmd\":\"load\",\"source\":\"val big = {{{body}}}\"}}"
    ));
    std::thread::sleep(Duration::from_millis(50));
    // …so a burst behind it must overflow the depth-1 queue and shed.
    let mut shed = 0;
    let mut others: Vec<Client> = (0..6).map(|_| Client::connect(addr)).collect();
    for c in &mut others {
        c.send("{\"cmd\":\"load\",\"source\":\"val y = 1\"}");
    }
    for c in &mut others {
        let resp = c.recv();
        if resp.contains("\"error\":\"overloaded\"") {
            assert!(resp.contains("\"retry_after_ms\":"), "{resp}");
            shed += 1;
        } else {
            assert!(resp.contains("\"ok\":true"), "{resp}");
        }
    }
    assert!(shed > 0, "a depth-1 queue under a 6-deep burst must shed");
    let resp = busy.recv();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    server.start_drain();
    let summary = server.wait();
    assert_eq!(summary.shed, shed, "{summary:?}");
}

#[test]
fn per_client_connection_cap_sheds_excess() {
    let cfg = ServeConfig {
        max_conns_per_client: 1,
        ..quick_cfg()
    };
    let server = Server::start(cfg).expect("start");
    let addr = server.addr();
    let mut first = Client::connect(addr);
    let resp = first.roundtrip("{\"cmd\":\"stats\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    // Same peer IP: the second connection is shed at admission.
    let mut second = Client::connect(addr);
    let resp = second.recv();
    assert!(resp.contains("\"error\":\"overloaded\""), "{resp}");
    server.start_drain();
    let summary = server.wait();
    assert!(summary.shed >= 1, "{summary:?}");
}

#[test]
fn shutdown_command_drains_and_summary_reports() {
    let server = Server::start(quick_cfg()).expect("start");
    let mut c = Client::connect(server.addr());
    let resp = c.roundtrip("{\"cmd\":\"load\",\"source\":\"val x = 3\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let resp = c.roundtrip("{\"cmd\":\"shutdown\"}");
    assert!(resp.contains("\"draining\":true"), "{resp}");
    assert!(server.draining());
    let summary = server.wait();
    assert!(summary.accepted >= 1, "{summary:?}");
    assert!(summary.requests >= 1, "{summary:?}");
}

#[test]
fn durable_mode_snapshot_readers_see_acked_state() {
    let db_dir = std::env::temp_dir().join(format!(
        "ur-serve-e2e-db-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&db_dir);
    let cfg = ServeConfig {
        workers: 4,
        db_dir: Some(db_dir.clone()),
        deadline_ms: 10_000,
        threads: Some(1),
        cache_dir: Some(tmp_cache()),
        ..ServeConfig::default()
    };
    let server = Server::start(cfg).expect("start");
    let addr = server.addr();
    let mut w = Client::connect(addr);
    let resp = w.roundtrip("{\"cmd\":\"load\",\"source\":\"val x = 7\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"diagnostics\":[]"), "{resp}");
    // Read-only commands from other connections fan out to the
    // snapshot readers; every reader must see the acked script.
    let mut joins = Vec::new();
    for _ in 0..6 {
        joins.push(std::thread::spawn(move || {
            let mut c = Client::connect(addr);
            let resp = c.roundtrip("{\"cmd\":\"type\",\"name\":\"x\"}");
            assert!(resp.contains("\"type\":\"int\""), "{resp}");
            let resp = c.roundtrip("{\"cmd\":\"db\"}");
            assert!(resp.contains("\"ok\":true"), "{resp}");
            let resp = c.roundtrip("{\"cmd\":\"stats\"}");
            assert!(resp.contains("\"ok\":true"), "{resp}");
        }));
    }
    for j in joins {
        j.join().expect("reader client");
    }
    // The writer keeps accepting mutations alongside the readers.
    let resp = w.roundtrip("{\"cmd\":\"eval\",\"expr\":\"x + 1\"}");
    assert!(resp.contains("\"value\":\"8\""), "{resp}");
    server.start_drain();
    server.wait();
    let _ = std::fs::remove_dir_all(&db_dir);
}

#[test]
fn tiny_deadline_degrades_structurally_at_1_and_4_threads() {
    for threads in [1_usize, 4] {
        let cfg = ServeConfig {
            threads: Some(threads),
            cache_dir: Some(tmp_cache()),
            ..ServeConfig::default()
        };
        let server = Server::start(cfg).expect("start");
        let mut c = Client::connect(server.addr());
        let fields = |prefix: &str, n: usize| {
            (0..n)
                .map(|i| format!("{prefix}{i} = {i}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let src = format!(
            "val wide = {{{}}} ++ {{{}}}",
            fields("A", 150),
            fields("B", 150)
        );
        let resp = c.roundtrip(&format!(
            "{{\"cmd\":\"load\",\"source\":\"{src}\",\"deadline_ms\":1}}"
        ));
        assert!(resp.contains("\"ok\":true"), "threads={threads}: {resp}");
        assert!(resp.contains("E0900"), "threads={threads}: {resp}");
        // The ceiling was per-request: the same session elaborates the
        // same program fine without the deadline.
        let resp = c.roundtrip(&format!("{{\"cmd\":\"load\",\"source\":\"{src}\"}}"));
        assert!(
            resp.contains("\"diagnostics\":[]"),
            "threads={threads}: {resp}"
        );
        server.start_drain();
        server.wait();
    }
}

#[cfg(feature = "failpoints")]
mod faulted {
    use super::*;
    use ur_core::failpoint::{FpConfig, Site};

    #[test]
    fn wedged_worker_is_replaced_and_request_replayed() {
        // The fault schedule is deterministic per (seed, site, consult
        // index) and every worker thread starts its consult count at
        // zero. Seed 5 at 350‰ draws [pass, FIRE, …] for serve_wedge,
        // so the original worker serves the load (consult 0), wedges on
        // the eval (consult 1), and the replacement serves the replayed
        // eval cleanly on *its* consult 0. A schedule that fires on
        // consult 0 would wedge every replacement too — by design:
        // replay is bounded, not a retry loop.
        let cfg = ServeConfig {
            workers: 1,
            deadline_ms: 400,
            watchdog_ms: 100,
            threads: Some(1),
            cache_dir: Some(tmp_cache()),
            fp: Some(FpConfig::new(5).with_rate(Site::ServeWedge, 350)),
            ..ServeConfig::default()
        };
        let server = Server::start(cfg).expect("start");
        let mut c = Client::connect(server.addr());
        // Acked state, then a request that trips the wedge. The
        // supervisor must replace the worker and replay (isolated-mode
        // requests are idempotent: the replacement rebuilds from the
        // acked script), so the client still gets a correct answer.
        let resp = c.roundtrip("{\"cmd\":\"load\",\"source\":\"val x = 9\"}");
        assert!(resp.contains("\"ok\":true"), "{resp}");
        let resp = c.roundtrip("{\"cmd\":\"eval\",\"expr\":\"x * 2\"}");
        assert!(resp.contains("\"value\":\"18\""), "{resp}");
        server.start_drain();
        let summary = server.wait();
        assert!(summary.worker_restarts >= 1, "{summary:?}");
        assert!(summary.faults.injected[Site::ServeWedge.index()] >= 1, "{summary:?}");
    }

    #[test]
    fn accept_and_read_faults_tear_connections_not_the_server() {
        // Seed 25: the acceptor (one thread, consult count persists
        // across accepts) drops connections intermittently at 500‰;
        // each connection handler (fresh thread, fresh consult count)
        // serves three reads and tears on the fourth at 300‰. A client
        // that reconnects through the tears keeps getting correct
        // answers — faults tear *connections*, never the server.
        let cfg = ServeConfig {
            deadline_ms: 5_000,
            threads: Some(1),
            cache_dir: Some(tmp_cache()),
            fp: Some(
                FpConfig::new(25)
                    .with_rate(Site::ServeAccept, 500)
                    .with_rate(Site::ServeRead, 300)
                    .with_max_per_site(8),
            ),
            ..ServeConfig::default()
        };
        let server = Server::start(cfg).expect("start");
        let addr = server.addr();
        let mut answered = 0;
        let mut i = 0;
        for _attempt in 0..40 {
            if answered >= 8 {
                break;
            }
            let mut c = Client::connect(addr);
            loop {
                c.send(&format!("{{\"cmd\":\"load\",\"source\":\"val v = {i}\"}}"));
                i += 1;
                let mut line = String::new();
                match c.reader.read_line(&mut line) {
                    Ok(n) if n > 0 => {
                        assert!(line.contains("\"ok\":true"), "{line}");
                        assert!(line.contains("\"diagnostics\":[]"), "{line}");
                        answered += 1;
                        if answered >= 8 {
                            break;
                        }
                    }
                    // Torn by an injected accept/read fault: reconnect,
                    // as a real client would.
                    _ => break,
                }
            }
        }
        assert!(
            answered >= 8,
            "only {answered} answers through the fault storm"
        );
        server.start_drain();
        let summary = server.wait();
        let torn = summary.faults.injected[Site::ServeAccept.index()]
            + summary.faults.injected[Site::ServeRead.index()];
        assert!(torn > 0, "{summary:?}");
    }
}
