//! `urc` — the Ur compiler/interpreter driver.
//!
//! ```text
//! usage: urc [OPTIONS] FILE...
//!
//!   Elaborates and runs the given .ur files in order, against the Ur/Web
//!   standard library.
//!
//! options:
//!   --print            print every top-level value as it is defined
//!   --stats            print inference statistics (the Figure 5 counters)
//!   --health           print the self-healing report (circuit breaker,
//!                      watchdog/retry counters, fault injection totals)
//!   --core NAME        dump the elaborated core term of value NAME
//!   --type NAME        print the inferred type of value NAME
//!   --eval EXPR        evaluate EXPR after loading the files
//!   --sql-log          print the SQL statements the program issued
//!   --jobs N           elaborate on N worker threads (default: available
//!                      parallelism; 1 = sequential)
//!   --no-identity      disable the map-identity law   (ablation)
//!   --no-distrib       disable map-distributivity     (ablation)
//!   --no-fusion        disable map-fusion             (ablation)
//!   --help             this message
//! ```

use std::process::ExitCode;
use ur::infer::ElabDecl;
use ur::Session;

struct Options {
    files: Vec<String>,
    print: bool,
    stats: bool,
    health: bool,
    core: Vec<String>,
    types: Vec<String>,
    evals: Vec<String>,
    sql_log: bool,
    jobs: Option<usize>,
    no_identity: bool,
    no_distrib: bool,
    no_fusion: bool,
}

fn usage() -> &'static str {
    "usage: urc [--print] [--stats] [--health] [--core NAME] [--type NAME] [--eval EXPR]\n\
     \x20          [--sql-log] [--jobs N] [--no-identity] [--no-distrib]\n\
     \x20          [--no-fusion] FILE...\n\
     Elaborates and runs Ur source files against the Ur/Web standard library."
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        print: false,
        stats: false,
        health: false,
        core: Vec::new(),
        types: Vec::new(),
        evals: Vec::new(),
        sql_log: false,
        jobs: None,
        no_identity: false,
        no_distrib: false,
        no_fusion: false,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(usage().to_string()),
            "--print" => opts.print = true,
            "--stats" => opts.stats = true,
            "--health" => opts.health = true,
            "--sql-log" => opts.sql_log = true,
            "--no-identity" => opts.no_identity = true,
            "--no-distrib" => opts.no_distrib = true,
            "--no-fusion" => opts.no_fusion = true,
            "--core" => opts
                .core
                .push(args.next().ok_or("--core needs a value name")?),
            "--type" => opts
                .types
                .push(args.next().ok_or("--type needs a value name")?),
            "--eval" => opts
                .evals
                .push(args.next().ok_or("--eval needs an expression")?),
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a thread count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs: not a thread count: {v}"))?;
                opts.jobs = Some(n.max(1));
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}\n{}", usage()))
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() && opts.evals.is_empty() {
        return Err(format!("no input files\n{}", usage()));
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<(), String> {
    let mut sess = Session::new().map_err(|e| e.to_string())?;
    if let Some(jobs) = opts.jobs {
        sess.threads = jobs;
    }
    sess.elab.cx.laws.identity = !opts.no_identity;
    sess.elab.cx.laws.distrib = !opts.no_distrib;
    sess.elab.cx.laws.fusion = !opts.no_fusion;

    // Multi-error mode: report every diagnostic in every file in one
    // pass, keep going (later files may still be useful), and fail at
    // the end if anything was wrong.
    let mut n_errors = 0usize;
    for file in &opts.files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("{file}: {e}"))?;
        let (defs, diags) = sess.run_all(&src);
        for d in &diags {
            eprintln!("{file}: {d}");
        }
        n_errors += diags.len();
        if opts.print {
            for (name, v) in defs {
                println!("{name} = {v}");
            }
        }
    }
    if n_errors > 0 {
        return Err(format!(
            "{n_errors} error{} found",
            if n_errors == 1 { "" } else { "s" }
        ));
    }

    for name in &opts.types {
        let ty = sess
            .elab
            .decls
            .iter()
            .rev()
            .find_map(|d| match d {
                ElabDecl::Val { name: n, ty, .. } if n == name => Some(ty.clone()),
                _ => None,
            })
            .ok_or_else(|| format!("--type: no value named {name}"))?;
        println!("{name} : {ty}");
    }

    for name in &opts.core {
        let body = sess
            .elab
            .decls
            .iter()
            .rev()
            .find_map(|d| match d {
                ElabDecl::Val {
                    name: n,
                    body: Some(b),
                    ..
                } if n == name => Some(b.clone()),
                _ => None,
            })
            .ok_or_else(|| format!("--core: no value named {name} with a body"))?;
        println!("(* core of {name} *)\n{body}");
    }

    for expr in &opts.evals {
        let v = sess.eval(expr).map_err(|e| e.to_string())?;
        println!("{v}");
    }

    if opts.sql_log {
        for stmt in sess.db().log() {
            println!("{stmt}");
        }
    }

    if opts.stats {
        eprintln!("stats: {}", sess.stats_snapshot());
    }
    if opts.health {
        eprint!("{}", sess.health_report());
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
