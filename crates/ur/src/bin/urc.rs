//! `urc` — the Ur compiler/interpreter driver.
//!
//! ```text
//! usage: urc [OPTIONS] FILE...
//!
//!   Elaborates and runs the given .ur files in order, against the Ur/Web
//!   standard library.
//!
//! options:
//!   --print            print every top-level value as it is defined
//!   --stats            print inference statistics (the Figure 5 counters)
//!   --health           print the self-healing report (circuit breaker,
//!                      watchdog/retry counters, fault injection totals)
//!   --core NAME        dump the elaborated core term of value NAME
//!   --type NAME        print the inferred type of value NAME
//!   --eval EXPR        evaluate EXPR after loading the files
//!   --eval=vm|interp   execution engine: the bytecode VM (default) or
//!                      the tree-walking interpreter (the differential
//!                      oracle; also: UR_EVAL env var)
//!   --sql-log          print the SQL statements the program issued
//!   --jobs N           elaborate on N worker threads (default: available
//!                      parallelism; 1 = sequential)
//!   --no-identity      disable the map-identity law   (ablation)
//!   --no-distrib       disable map-distributivity     (ablation)
//!   --no-fusion        disable map-fusion             (ablation)
//!   --emit-json        print diagnostics as one JSON array on stdout
//!                      (code, line, col, message, notes)
//!   --cache-dir DIR    persistent incremental cache directory (also:
//!                      UR_CACHE_DIR env var; default .ur-cache; a
//!                      single-file run, --watch, and --serve reuse
//!                      cached elaborations from it)
//!   --db-dir DIR       durable database directory: program effects go
//!                      through a crash-safe WAL + snapshot store that
//!                      recovers exactly the committed prefix on reopen
//!                      (empty string or absent = in-memory, the default)
//!   --watch            watch FILE and incrementally re-elaborate on
//!                      every change (single file; Ctrl-C to stop)
//!   --serve            line-delimited JSON protocol on stdin/stdout:
//!                      {"cmd":"load"|"edit","source":…} rebuild
//!                      {"cmd":"type","name":…}          query a type
//!                      {"cmd":"diagnostics"}            last diagnostics
//!                      {"cmd":"stats"}                  counters
//!                      {"cmd":"db"}                     database report
//!                      {"cmd":"quit"}                   exit
//!                      Requests are capped at 8 MiB per line; over-long
//!                      or internally-failing requests get a JSON error
//!                      without tearing down the session.
//!   --help             this message
//! ```

use std::process::ExitCode;
use ur::infer::ElabDecl;
use ur::Session;

struct Options {
    files: Vec<String>,
    print: bool,
    stats: bool,
    health: bool,
    core: Vec<String>,
    types: Vec<String>,
    evals: Vec<String>,
    sql_log: bool,
    jobs: Option<usize>,
    no_identity: bool,
    no_distrib: bool,
    no_fusion: bool,
    emit_json: bool,
    cache_dir: Option<String>,
    db_dir: Option<String>,
    watch: bool,
    serve: bool,
    engine: Option<ur::eval::EvalEngine>,
}

fn usage() -> &'static str {
    "usage: urc [--print] [--stats] [--health] [--core NAME] [--type NAME] [--eval EXPR]\n\
     \x20          [--eval=vm|interp] [--sql-log] [--jobs N] [--no-identity] [--no-distrib]\n\
     \x20          [--no-fusion] [--emit-json] [--cache-dir DIR] [--db-dir DIR] [--watch]\n\
     \x20          [--serve] FILE...\n\
     Elaborates and runs Ur source files against the Ur/Web standard library.\n\
     --db-dir backs database effects with a crash-safe WAL + snapshot store\n\
     (empty = in-memory). --watch re-elaborates FILE incrementally on every\n\
     change; --serve speaks line-delimited JSON (load/edit/type/diagnostics/\n\
     stats/db/quit) on stdin/stdout, one request per line, 8 MiB cap."
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        print: false,
        stats: false,
        health: false,
        core: Vec::new(),
        types: Vec::new(),
        evals: Vec::new(),
        sql_log: false,
        jobs: None,
        no_identity: false,
        no_distrib: false,
        no_fusion: false,
        emit_json: false,
        cache_dir: None,
        db_dir: None,
        watch: false,
        serve: false,
        engine: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(usage().to_string()),
            "--print" => opts.print = true,
            "--stats" => opts.stats = true,
            "--health" => opts.health = true,
            "--sql-log" => opts.sql_log = true,
            "--no-identity" => opts.no_identity = true,
            "--no-distrib" => opts.no_distrib = true,
            "--no-fusion" => opts.no_fusion = true,
            "--emit-json" => opts.emit_json = true,
            "--watch" => opts.watch = true,
            "--serve" => opts.serve = true,
            "--cache-dir" => {
                opts.cache_dir = Some(args.next().ok_or("--cache-dir needs a directory")?)
            }
            "--db-dir" => {
                opts.db_dir = Some(args.next().ok_or("--db-dir needs a directory")?)
            }
            "--core" => opts
                .core
                .push(args.next().ok_or("--core needs a value name")?),
            "--type" => opts
                .types
                .push(args.next().ok_or("--type needs a value name")?),
            "--eval" => opts
                .evals
                .push(args.next().ok_or("--eval needs an expression")?),
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a thread count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs: not a thread count: {v}"))?;
                opts.jobs = Some(n.max(1));
            }
            other if other.starts_with("--eval=") => {
                let name = &other["--eval=".len()..];
                opts.engine = Some(
                    ur::eval::EvalEngine::parse(name)
                        .ok_or_else(|| format!("--eval=: unknown engine {name} (vm|interp)"))?,
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}\n{}", usage()))
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.watch && opts.files.len() != 1 {
        return Err(format!("--watch needs exactly one input file\n{}", usage()));
    }
    if opts.files.is_empty() && opts.evals.is_empty() && !opts.serve {
        return Err(format!("no input files\n{}", usage()));
    }
    Ok(opts)
}

/// The inferred type of the most recent value named `name`, if any.
/// Shared by `--type` and the serve-mode `type` command.
fn type_of(sess: &Session, name: &str) -> Option<String> {
    sess.elab.decls.iter().rev().find_map(|d| match d {
        ElabDecl::Val { name: n, ty, .. } if n == name => Some(ty.to_string()),
        _ => None,
    })
}

fn run(opts: &Options) -> Result<(), String> {
    let mut sess = Session::new().map_err(|e| e.to_string())?;
    if let Some(jobs) = opts.jobs {
        sess.threads = jobs;
    }
    sess.elab.cx.laws.identity = !opts.no_identity;
    sess.elab.cx.laws.distrib = !opts.no_distrib;
    sess.elab.cx.laws.fusion = !opts.no_fusion;
    if let Some(dir) = &opts.cache_dir {
        sess.cache_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(engine) = opts.engine {
        sess.engine = engine;
    }
    // An empty --db-dir means "today's in-memory mode", so scripts can
    // pass a variable unconditionally.
    if let Some(dir) = opts.db_dir.as_deref().filter(|d| !d.is_empty()) {
        *sess.db() = ur::db::Db::open(dir).map_err(|e| format!("--db-dir {dir}: {e}"))?;
    }

    if opts.serve {
        return serve(&mut sess);
    }
    if opts.watch {
        return watch(&mut sess, opts);
    }

    // Multi-error mode: report every diagnostic in every file in one
    // pass, keep going (later files may still be useful), and fail at
    // the end if anything was wrong. A single-file run with --cache-dir
    // goes through the incremental engine so repeated invocations reuse
    // the on-disk cache; multi-file runs accumulate declarations across
    // files and stay on the sequential path.
    let incremental = opts.cache_dir.is_some() && opts.files.len() == 1;
    let mut all_diags: ur::syntax::Diagnostics = Vec::new();
    for file in &opts.files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("{file}: {e}"))?;
        let (defs, diags) = if incremental {
            sess.reelaborate(&src)
        } else {
            sess.run_all(&src)
        };
        if !opts.emit_json {
            for d in &diags {
                eprintln!("{file}: {d}");
            }
        }
        all_diags.extend(diags);
        if opts.print {
            for (name, v) in defs {
                println!("{name} = {v}");
            }
        }
    }
    if opts.emit_json {
        println!("{}", ur::query::json::diags_to_json(&all_diags));
    }
    let n_errors = all_diags.len();
    if n_errors > 0 {
        return Err(format!(
            "{n_errors} error{} found",
            if n_errors == 1 { "" } else { "s" }
        ));
    }

    for name in &opts.types {
        let ty = type_of(&sess, name).ok_or_else(|| format!("--type: no value named {name}"))?;
        println!("{name} : {ty}");
    }

    for name in &opts.core {
        let body = sess
            .elab
            .decls
            .iter()
            .rev()
            .find_map(|d| match d {
                ElabDecl::Val {
                    name: n,
                    body: Some(b),
                    ..
                } if n == name => Some(*b),
                _ => None,
            })
            .ok_or_else(|| format!("--core: no value named {name} with a body"))?;
        println!("(* core of {name} *)\n{body}");
    }

    for expr in &opts.evals {
        let v = sess.eval(expr).map_err(|e| e.to_string())?;
        println!("{v}");
    }

    if opts.sql_log {
        for stmt in sess.db().log() {
            println!("{stmt}");
        }
    }

    if opts.stats {
        eprintln!("stats: {}", sess.stats_snapshot());
        eprintln!("eval engine: {}", sess.engine.name());
    }
    if opts.health {
        eprint!("{}", sess.health_report());
    }
    Ok(())
}

/// `--watch`: poll one file's mtime and incrementally re-elaborate on
/// every change. Runs until the process is interrupted.
fn watch(sess: &mut Session, opts: &Options) -> Result<(), String> {
    let file = &opts.files[0];
    let mut last_stamp = None;
    loop {
        // Editors replace files non-atomically; a transiently missing
        // file or unreadable metadata just means "try again shortly".
        let stamp = std::fs::metadata(file)
            .ok()
            .map(|m| (m.modified().ok(), m.len()));
        if stamp.is_some() && stamp != last_stamp {
            last_stamp = stamp;
            match std::fs::read_to_string(file) {
                Ok(src) => {
                    let t0 = std::time::Instant::now();
                    let (defs, diags) = sess.reelaborate(&src);
                    let ms = t0.elapsed().as_millis();
                    if opts.emit_json {
                        println!("{}", ur::query::json::diags_to_json(&diags));
                    } else {
                        for d in &diags {
                            eprintln!("{file}: {d}");
                        }
                    }
                    if opts.print {
                        for (name, v) in defs {
                            println!("{name} = {v}");
                        }
                    }
                    let r = sess.last_incr_report().cloned().unwrap_or_default();
                    eprintln!(
                        "[watch] {file}: {} decls ({} green, {} red, {} disk hits), \
                         {} error{} in {ms} ms",
                        r.decls_total,
                        r.green,
                        r.red,
                        r.disk_hits,
                        diags.len(),
                        if diags.len() == 1 { "" } else { "s" },
                    );
                }
                Err(e) => eprintln!("[watch] {file}: {e}"),
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}

/// Serve-mode per-request size cap. A line longer than this gets a
/// structured JSON error; the excess is drained without ever being
/// buffered, so a hostile or broken client cannot balloon the server.
const SERVE_MAX_REQUEST: usize = 8 * 1024 * 1024;

/// Reads one `\n`-terminated line, buffering at most
/// [`SERVE_MAX_REQUEST`] bytes of it. Returns `None` at end of input,
/// otherwise `(line, truncated)` — `truncated` set when the line
/// exceeded the cap (the stored prefix is then partial and must not be
/// parsed as a request).
fn read_request_line(
    r: &mut impl std::io::BufRead,
) -> std::io::Result<Option<(String, bool)>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut truncated = false;
    let mut saw_any = false;
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            if !saw_any {
                return Ok(None);
            }
            break;
        }
        saw_any = true;
        let (take, found_newline) = match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos, true),
            None => (chunk.len(), false),
        };
        if !truncated {
            let room = SERVE_MAX_REQUEST - buf.len();
            let kept = take.min(room);
            buf.extend_from_slice(&chunk[..kept]);
            if kept < take {
                truncated = true;
            }
        }
        let consumed = if found_newline { take + 1 } else { take };
        r.consume(consumed);
        if found_newline {
            break;
        }
    }
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    Ok(Some((String::from_utf8_lossy(&buf).into_owned(), truncated)))
}

/// `--serve`: one JSON request per stdin line, one JSON response per
/// stdout line. Exits cleanly on `{"cmd":"quit"}` or end of input.
/// Hardened: request lines are capped at [`SERVE_MAX_REQUEST`] bytes,
/// and a panic while handling one request answers that request with a
/// JSON error instead of tearing down the whole session.
fn serve(sess: &mut Session) -> Result<(), String> {
    use std::io::Write;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut inp = stdin.lock();
    let mut out = stdout.lock();
    let mut last_diags: ur::syntax::Diagnostics = Vec::new();
    while let Some((line, truncated)) = read_request_line(&mut inp).map_err(|e| e.to_string())? {
        let (resp, quit) = if truncated {
            (
                format!(
                    "{{\"ok\":false,\"error\":\"request exceeds the {SERVE_MAX_REQUEST}-byte \
                     limit and was dropped\"}}"
                ),
                false,
            )
        } else {
            if line.trim().is_empty() {
                continue;
            }
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                serve_request(sess, &mut last_diags, &line)
            })) {
                Ok(r) => r,
                Err(_) => (
                    "{\"ok\":false,\"error\":\"internal error handling request; \
                     session continues\"}"
                        .to_string(),
                    false,
                ),
            }
        };
        writeln!(out, "{resp}").and_then(|()| out.flush()).map_err(|e| e.to_string())?;
        if quit {
            break;
        }
    }
    Ok(())
}

/// Handles one serve-mode request; returns `(response, quit)`.
fn serve_request(
    sess: &mut Session,
    last_diags: &mut ur::syntax::Diagnostics,
    line: &str,
) -> (String, bool) {
    use ur::query::json::{diags_to_json, escape, parse_flat_object};
    let err = |msg: &str| (format!("{{\"ok\":false,\"error\":\"{}\"}}", escape(msg)), false);
    let Some(req) = parse_flat_object(line) else {
        return err("malformed request: expected a flat JSON object");
    };
    match req.get("cmd").map(String::as_str) {
        Some("load") | Some("edit") => {
            let Some(src) = req.get("source") else {
                return err("load/edit needs a \"source\" field");
            };
            let (_defs, diags) = sess.reelaborate(src);
            let r = sess.last_incr_report().cloned().unwrap_or_default();
            let resp = format!(
                "{{\"ok\":true,\"decls\":{},\"green\":{},\"red\":{},\
                 \"disk_hits\":{},\"diagnostics\":{}}}",
                r.decls_total,
                r.green,
                r.red,
                r.disk_hits,
                diags_to_json(&diags)
            );
            *last_diags = diags;
            (resp, false)
        }
        Some("type") => {
            let Some(name) = req.get("name") else {
                return err("type needs a \"name\" field");
            };
            match type_of(sess, name) {
                Some(ty) => (
                    format!(
                        "{{\"ok\":true,\"name\":\"{}\",\"type\":\"{}\"}}",
                        escape(name),
                        escape(&ty)
                    ),
                    false,
                ),
                None => err(&format!("no value named {name}")),
            }
        }
        Some("diagnostics") => (
            format!("{{\"ok\":true,\"diagnostics\":{}}}", diags_to_json(last_diags)),
            false,
        ),
        Some("stats") => (
            format!(
                "{{\"ok\":true,\"stats\":\"{}\"}}",
                escape(&sess.stats_snapshot().to_string())
            ),
            false,
        ),
        Some("db") => (
            format!("{{\"ok\":true,\"db\":\"{}\"}}", escape(&sess.db_report())),
            false,
        ),
        Some("quit") => ("{\"ok\":true}".to_string(), true),
        Some(other) => err(&format!("unknown cmd {other}")),
        None => err("request needs a \"cmd\" field"),
    }
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
