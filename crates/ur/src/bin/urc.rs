//! `urc` — the Ur compiler/interpreter driver.
//!
//! ```text
//! usage: urc [OPTIONS] FILE...
//!
//!   Elaborates and runs the given .ur files in order, against the Ur/Web
//!   standard library.
//!
//! options:
//!   --print            print every top-level value as it is defined
//!   --stats            print inference statistics (the Figure 5 counters)
//!   --health           print the self-healing report (circuit breaker,
//!                      watchdog/retry counters, fault injection totals)
//!   --core NAME        dump the elaborated core term of value NAME
//!   --type NAME        print the inferred type of value NAME
//!   --eval EXPR        evaluate EXPR after loading the files
//!   --eval=vm|interp   execution engine: the bytecode VM (default) or
//!                      the tree-walking interpreter (the differential
//!                      oracle; also: UR_EVAL env var)
//!   --sql-log          print the SQL statements the program issued
//!   --jobs N           elaborate on N worker threads (default: available
//!                      parallelism; 1 = sequential)
//!   --no-identity      disable the map-identity law   (ablation)
//!   --no-distrib       disable map-distributivity     (ablation)
//!   --no-fusion        disable map-fusion             (ablation)
//!   --emit-json        print diagnostics as one JSON array on stdout
//!                      (code, line, col, message, notes)
//!   --cache-dir DIR    persistent incremental cache directory (also:
//!                      UR_CACHE_DIR env var; default .ur-cache; a
//!                      single-file run, --watch, and --serve reuse
//!                      cached elaborations from it)
//!   --db-dir DIR       durable database directory: program effects go
//!                      through a crash-safe WAL + snapshot store that
//!                      recovers exactly the committed prefix on reopen
//!                      (empty string or absent = in-memory, the default)
//!   --watch            watch FILE and incrementally re-elaborate on
//!                      every change (single file; Ctrl-C to stop)
//!   --serve            line-delimited JSON protocol on stdin/stdout:
//!                      {"cmd":"load"|"edit","source":…} rebuild
//!                      {"cmd":"type","name":…}          query a type
//!                      {"cmd":"eval","expr":…}          evaluate
//!                      {"cmd":"diagnostics"}            last diagnostics
//!                      {"cmd":"stats"}                  counters
//!                      {"cmd":"db"}                     database report
//!                      {"cmd":"quit"}                   exit
//!                      Requests carry an optional "deadline_ms" budget
//!                      (over-budget work degrades to E0900) and are
//!                      capped at 8 MiB per line; over-long or
//!                      internally-failing requests get a JSON error
//!                      without tearing down the session. On quit or end
//!                      of input a final {"event":"final","stats":…}
//!                      line is flushed and the process exits 0.
//!   --listen ADDR      serve the same JSON protocol to concurrent TCP
//!                      clients (e.g. 127.0.0.1:7788; port 0 picks a
//!                      free port, reported on the first stdout line as
//!                      {"listening":"HOST:PORT"}). Backed by a
//!                      supervised session pool with bounded queues:
//!                      excess load is shed with a structured
//!                      "overloaded" answer, wedged workers are replaced
//!                      and their sessions rebuilt, SIGTERM or a
//!                      "shutdown" request drains gracefully and prints
//!                      a final summary line.
//!   --pool N           worker sessions for --listen (default 4; forced
//!                      to 1 with --db-dir: the store is single-writer)
//!   --queue-depth N    per-worker bounded queue for --listen (default 16)
//!   --max-conns N      live-connection cap for --listen (default 64)
//!   --deadline-ms N    default per-request budget for --listen
//!                      (default 2000; requests can only tighten it)
//!   --help             this message
//! ```

use std::process::ExitCode;
use ur::infer::ElabDecl;
use ur::Session;

struct Options {
    files: Vec<String>,
    print: bool,
    stats: bool,
    health: bool,
    core: Vec<String>,
    types: Vec<String>,
    evals: Vec<String>,
    sql_log: bool,
    jobs: Option<usize>,
    no_identity: bool,
    no_distrib: bool,
    no_fusion: bool,
    emit_json: bool,
    cache_dir: Option<String>,
    db_dir: Option<String>,
    watch: bool,
    serve: bool,
    listen: Option<String>,
    pool: Option<usize>,
    queue_depth: Option<usize>,
    max_conns: Option<usize>,
    deadline_ms: Option<u64>,
    engine: Option<ur::eval::EvalEngine>,
}

fn usage() -> &'static str {
    "usage: urc [--print] [--stats] [--health] [--core NAME] [--type NAME] [--eval EXPR]\n\
     \x20          [--eval=vm|interp] [--sql-log] [--jobs N] [--no-identity] [--no-distrib]\n\
     \x20          [--no-fusion] [--emit-json] [--cache-dir DIR] [--db-dir DIR] [--watch]\n\
     \x20          [--serve] [--listen ADDR] [--pool N] [--queue-depth N] [--max-conns N]\n\
     \x20          [--deadline-ms N] FILE...\n\
     Elaborates and runs Ur source files against the Ur/Web standard library.\n\
     --db-dir backs database effects with a crash-safe WAL + snapshot store\n\
     (empty = in-memory). --watch re-elaborates FILE incrementally on every\n\
     change; --serve speaks line-delimited JSON (load/edit/type/eval/\n\
     diagnostics/stats/db/quit) on stdin/stdout, one request per line, 8 MiB\n\
     cap; --listen ADDR serves the same protocol to concurrent TCP clients\n\
     through a supervised session pool (bounded queues shed overload, wedged\n\
     workers are replaced, SIGTERM or \"shutdown\" drains gracefully)."
}

fn parse_args(mut args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut opts = Options {
        files: Vec::new(),
        print: false,
        stats: false,
        health: false,
        core: Vec::new(),
        types: Vec::new(),
        evals: Vec::new(),
        sql_log: false,
        jobs: None,
        no_identity: false,
        no_distrib: false,
        no_fusion: false,
        emit_json: false,
        cache_dir: None,
        db_dir: None,
        watch: false,
        serve: false,
        listen: None,
        pool: None,
        queue_depth: None,
        max_conns: None,
        deadline_ms: None,
        engine: None,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(usage().to_string()),
            "--print" => opts.print = true,
            "--stats" => opts.stats = true,
            "--health" => opts.health = true,
            "--sql-log" => opts.sql_log = true,
            "--no-identity" => opts.no_identity = true,
            "--no-distrib" => opts.no_distrib = true,
            "--no-fusion" => opts.no_fusion = true,
            "--emit-json" => opts.emit_json = true,
            "--watch" => opts.watch = true,
            "--serve" => opts.serve = true,
            "--listen" => {
                opts.listen = Some(args.next().ok_or("--listen needs an address (host:port)")?)
            }
            "--pool" => {
                let v = args.next().ok_or("--pool needs a worker count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--pool: not a worker count: {v}"))?;
                opts.pool = Some(n.max(1));
            }
            "--queue-depth" => {
                let v = args.next().ok_or("--queue-depth needs a depth")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--queue-depth: not a depth: {v}"))?;
                opts.queue_depth = Some(n.max(1));
            }
            "--max-conns" => {
                let v = args.next().ok_or("--max-conns needs a connection count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--max-conns: not a connection count: {v}"))?;
                opts.max_conns = Some(n.max(1));
            }
            "--deadline-ms" => {
                let v = args.next().ok_or("--deadline-ms needs a duration")?;
                let n: u64 = v
                    .parse()
                    .map_err(|_| format!("--deadline-ms: not a duration: {v}"))?;
                opts.deadline_ms = Some(n.max(1));
            }
            "--cache-dir" => {
                opts.cache_dir = Some(args.next().ok_or("--cache-dir needs a directory")?)
            }
            "--db-dir" => {
                opts.db_dir = Some(args.next().ok_or("--db-dir needs a directory")?)
            }
            "--core" => opts
                .core
                .push(args.next().ok_or("--core needs a value name")?),
            "--type" => opts
                .types
                .push(args.next().ok_or("--type needs a value name")?),
            "--eval" => opts
                .evals
                .push(args.next().ok_or("--eval needs an expression")?),
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a thread count")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs: not a thread count: {v}"))?;
                opts.jobs = Some(n.max(1));
            }
            other if other.starts_with("--eval=") => {
                let name = &other["--eval=".len()..];
                opts.engine = Some(
                    ur::eval::EvalEngine::parse(name)
                        .ok_or_else(|| format!("--eval=: unknown engine {name} (vm|interp)"))?,
                );
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown option {other}\n{}", usage()))
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.watch && opts.files.len() != 1 {
        return Err(format!("--watch needs exactly one input file\n{}", usage()));
    }
    if opts.files.is_empty() && opts.evals.is_empty() && !opts.serve && opts.listen.is_none() {
        return Err(format!("no input files\n{}", usage()));
    }
    Ok(opts)
}

/// The inferred type of the most recent value named `name`, if any
/// (shared with the serve-mode `type` command).
fn type_of(sess: &Session, name: &str) -> Option<String> {
    ur::serve::protocol::type_of(sess, name)
}

fn run(opts: &Options) -> Result<(), String> {
    // `--listen` builds its sessions inside the pool workers; nothing
    // session-like is needed (or wanted) on this thread.
    if let Some(addr) = &opts.listen {
        return listen(opts, addr);
    }
    let mut sess = Session::new().map_err(|e| e.to_string())?;
    if let Some(jobs) = opts.jobs {
        sess.threads = jobs;
    }
    sess.elab.cx.laws.identity = !opts.no_identity;
    sess.elab.cx.laws.distrib = !opts.no_distrib;
    sess.elab.cx.laws.fusion = !opts.no_fusion;
    if let Some(dir) = &opts.cache_dir {
        sess.cache_dir = Some(std::path::PathBuf::from(dir));
    }
    if let Some(engine) = opts.engine {
        sess.engine = engine;
    }
    // An empty --db-dir means "today's in-memory mode", so scripts can
    // pass a variable unconditionally. Lock contention (a previous
    // invocation still checkpointing on exit) is retried with bounded
    // backoff; UR_DB_LOCK_WAIT_MS tunes the total budget.
    if let Some(dir) = opts.db_dir.as_deref().filter(|d| !d.is_empty()) {
        *sess.db() = ur::db::Db::open_with_retry(dir, ur::db::RetryConfig::from_env())
            .map_err(|e| format!("--db-dir {dir}: {e}"))?;
    }

    if opts.serve {
        return serve(&mut sess);
    }
    if opts.watch {
        return watch(&mut sess, opts);
    }

    // Multi-error mode: report every diagnostic in every file in one
    // pass, keep going (later files may still be useful), and fail at
    // the end if anything was wrong. A single-file run with --cache-dir
    // goes through the incremental engine so repeated invocations reuse
    // the on-disk cache; multi-file runs accumulate declarations across
    // files and stay on the sequential path.
    let incremental = opts.cache_dir.is_some() && opts.files.len() == 1;
    let mut all_diags: ur::syntax::Diagnostics = Vec::new();
    for file in &opts.files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("{file}: {e}"))?;
        let (defs, diags) = if incremental {
            sess.reelaborate(&src)
        } else {
            sess.run_all(&src)
        };
        if !opts.emit_json {
            for d in &diags {
                eprintln!("{file}: {d}");
            }
        }
        all_diags.extend(diags);
        if opts.print {
            for (name, v) in defs {
                println!("{name} = {v}");
            }
        }
    }
    if opts.emit_json {
        println!("{}", ur::query::json::diags_to_json(&all_diags));
    }
    let n_errors = all_diags.len();
    if n_errors > 0 {
        return Err(format!(
            "{n_errors} error{} found",
            if n_errors == 1 { "" } else { "s" }
        ));
    }

    for name in &opts.types {
        let ty = type_of(&sess, name).ok_or_else(|| format!("--type: no value named {name}"))?;
        println!("{name} : {ty}");
    }

    for name in &opts.core {
        let body = sess
            .elab
            .decls
            .iter()
            .rev()
            .find_map(|d| match d {
                ElabDecl::Val {
                    name: n,
                    body: Some(b),
                    ..
                } if n == name => Some(*b),
                _ => None,
            })
            .ok_or_else(|| format!("--core: no value named {name} with a body"))?;
        println!("(* core of {name} *)\n{body}");
    }

    for expr in &opts.evals {
        let v = sess.eval(expr).map_err(|e| e.to_string())?;
        println!("{v}");
    }

    if opts.sql_log {
        for stmt in sess.db().log() {
            println!("{stmt}");
        }
    }

    if opts.stats {
        eprintln!("stats: {}", sess.stats_snapshot());
        eprintln!("eval engine: {}", sess.engine.name());
    }
    if opts.health {
        eprint!("{}", sess.health_report());
    }
    Ok(())
}

/// `--watch`: poll one file's mtime and incrementally re-elaborate on
/// every change. Runs until the process is interrupted.
fn watch(sess: &mut Session, opts: &Options) -> Result<(), String> {
    let file = &opts.files[0];
    let mut last_stamp = None;
    loop {
        // Editors replace files non-atomically; a transiently missing
        // file or unreadable metadata just means "try again shortly".
        let stamp = std::fs::metadata(file)
            .ok()
            .map(|m| (m.modified().ok(), m.len()));
        if stamp.is_some() && stamp != last_stamp {
            last_stamp = stamp;
            match std::fs::read_to_string(file) {
                Ok(src) => {
                    let t0 = std::time::Instant::now();
                    let (defs, diags) = sess.reelaborate(&src);
                    let ms = t0.elapsed().as_millis();
                    if opts.emit_json {
                        println!("{}", ur::query::json::diags_to_json(&diags));
                    } else {
                        for d in &diags {
                            eprintln!("{file}: {d}");
                        }
                    }
                    if opts.print {
                        for (name, v) in defs {
                            println!("{name} = {v}");
                        }
                    }
                    let r = sess.last_incr_report().cloned().unwrap_or_default();
                    eprintln!(
                        "[watch] {file}: {} decls ({} green, {} red, {} disk hits), \
                         {} error{} in {ms} ms",
                        r.decls_total,
                        r.green,
                        r.red,
                        r.disk_hits,
                        diags.len(),
                        if diags.len() == 1 { "" } else { "s" },
                    );
                }
                Err(e) => eprintln!("[watch] {file}: {e}"),
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}

/// `--serve`: one JSON request per stdin line, one JSON response per
/// stdout line, driven by the shared [`ur::serve::protocol`] (the same
/// spec the `--listen` TCP front door speaks). Hardened: request lines
/// are capped at [`ur::serve::MAX_REQUEST`] bytes, and a panic while
/// handling one request answers that request with a JSON error instead
/// of tearing down the whole session. On `{"cmd":"quit"}`, a client
/// `shutdown`, or end of input, a final stats line
/// (`{"ok":true,"event":"final","stats":…}`) is flushed and the
/// process exits 0 — scripted drivers get the session's counters even
/// when they just close the pipe.
fn serve(sess: &mut Session) -> Result<(), String> {
    use std::io::Write;
    use ur::serve::protocol::{handle_line, internal_error_response, oversize_response, Control};
    use ur::serve::reader::read_capped_line;
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut inp = stdin.lock();
    let mut out = stdout.lock();
    let mut ctx = ur::serve::ReqCtx::new(None);
    let never = || false;
    while let Some((line, truncated)) =
        read_capped_line(&mut inp, ur::serve::MAX_REQUEST, &never).map_err(|e| e.to_string())?
    {
        let (resp, control) = if truncated {
            (oversize_response(), Control::Continue)
        } else {
            if line.trim().is_empty() {
                continue;
            }
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handle_line(sess, &mut ctx, &line, None)
            })) {
                Ok(r) => r,
                Err(_) => (internal_error_response(), Control::Continue),
            }
        };
        writeln!(out, "{resp}").and_then(|()| out.flush()).map_err(|e| e.to_string())?;
        if !matches!(control, Control::Continue) {
            break;
        }
    }
    let stats = sess.stats_snapshot().to_string();
    writeln!(
        out,
        "{{\"ok\":true,\"event\":\"final\",\"stats\":\"{}\"}}",
        ur::query::json::escape(&stats)
    )
    .and_then(|()| out.flush())
    .map_err(|e| e.to_string())?;
    Ok(())
}

/// `--listen ADDR`: the same JSON protocol as `--serve`, served to
/// concurrent TCP clients through the supervised session pool. Prints
/// `{"listening":"HOST:PORT"}` once bound (drivers parse the resolved
/// port), drains gracefully on SIGTERM or a client `shutdown`, and
/// prints the final summary line before exiting 0.
fn listen(opts: &Options, addr: &str) -> Result<(), String> {
    use std::io::Write;
    let mut cfg = ur::serve::ServeConfig {
        addr: addr.to_string(),
        threads: opts.jobs,
        engine: opts.engine,
        cache_dir: opts.cache_dir.as_ref().map(std::path::PathBuf::from),
        db_dir: opts
            .db_dir
            .as_deref()
            .filter(|d| !d.is_empty())
            .map(std::path::PathBuf::from),
        fp: ur::core::failpoint::FpConfig::from_env(),
        ..ur::serve::ServeConfig::default()
    };
    if let Some(n) = opts.pool {
        cfg.workers = n;
    }
    if let Some(n) = opts.queue_depth {
        cfg.queue_depth = n;
    }
    if let Some(n) = opts.max_conns {
        cfg.max_conns = n;
    }
    if let Some(n) = opts.deadline_ms {
        cfg.deadline_ms = n;
    }
    let server = ur::serve::Server::start(cfg).map_err(|e| format!("--listen {addr}: {e}"))?;
    ur::serve::install_sigterm_handler();
    {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        writeln!(out, "{{\"listening\":\"{}\"}}", server.addr())
            .and_then(|()| out.flush())
            .map_err(|e| e.to_string())?;
    }
    loop {
        if ur::serve::sigterm_received() {
            server.start_drain();
        }
        if server.draining() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let summary = server.wait();
    println!("{}", summary.to_json());
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args().skip(1)) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
