//! # ur — statically-typed metaprogramming with type-level record computation
//!
//! A comprehensive Rust reproduction of
//! *Ur: Statically-Typed Metaprogramming with Type-Level Record
//! Computation* (Adam Chlipala, PLDI 2010): the Featherweight Ur core
//! calculus, the heuristic type-inference engine (row unification,
//! reverse-engineering unification, automatic disjointness proving, folder
//! generation), a surface-language front end, a type-passing interpreter,
//! the Ur/Web-style typed XML + SQL standard library over an in-memory
//! relational engine, and the paper's §6 case-study metaprograms.
//!
//! The most convenient entry point is [`Session`]:
//!
//! ```
//! use ur::Session;
//!
//! let mut sess = ur::Session::new()?;
//! sess.run(
//!     "fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
//!          (x : $([nm = t] ++ r)) = x.nm \
//!      val a = proj [#A] {A = 1, B = 2.3}",
//! )?;
//! assert_eq!(sess.get_int("a")?, 1);
//! # Ok::<(), ur::SessionError>(())
//! ```
//!
//! Layer map (one crate per subsystem, re-exported here):
//!
//! * [`core`] — kinds, constructors, expressions, kinding, definitional
//!   equality with the Figure-3 row laws, typing, disjointness (§3);
//! * [`syntax`] — lexer and parser for the §2 surface notation;
//! * [`infer`] — elaboration and unification (§4);
//! * [`query`] — the red-green incremental elaboration engine with its
//!   persistent on-disk cache;
//! * [`eval`] — the call-by-value interpreter;
//! * [`web`] — the Ur/Web standard library and [`Session`] runtime (§5);
//! * [`db`] — the in-memory relational substrate;
//! * [`serve`] — the resilient serving layer (`urc --serve`/`--listen`):
//!   supervised session pool, deadlines, overload shedding, drain;
//! * [`studies`] — the §6 case studies, written in Ur.

pub use ur_core as core;
pub use ur_db as db;
pub use ur_eval as eval;
pub use ur_infer as infer;
pub use ur_query as query;
pub use ur_serve as serve;
pub use ur_studies as studies;
pub use ur_syntax as syntax;
pub use ur_web as web;

pub use ur_eval::Value;
pub use ur_infer::Elaborator;
pub use ur_web::{Session, SessionError};
