// Library code must be panic-free: unwrap/expect/panic are denied
// outside cfg(test) (see docs/ROBUSTNESS.md).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! # ur-query — incremental elaboration for the Ur reproduction
//!
//! A salsa-style red-green query engine over the batch elaborator:
//! every declaration is a query keyed by a content fingerprint mixed
//! with the fingerprints of its dependency cone ([`engine`]), cached
//! outcomes are stored in a process-independent linked form ([`link`])
//! in memory and on disk ([`disk`]), and machine-readable output for
//! editors and CI shares one JSON encoder ([`json`]).
//!
//! The contract, checked by `tests/incremental.rs`: a rebuild through
//! the engine is observably **byte-identical** to a cold sequential
//! elaboration of the same source — same declarations (up to fresh
//! symbol ids), same span-sorted diagnostics — while re-running only
//! the declarations whose transitive inputs actually changed. A no-op
//! rebuild re-runs zero declarations and charges zero elaboration fuel.

pub mod disk;
pub mod engine;
pub mod json;
pub mod link;

pub use engine::{Engine, EngineConfig, RunReport};
