//! The red-green incremental elaboration engine.
//!
//! Every declaration of a program is a *query* keyed by its **input
//! fingerprint**:
//!
//! ```text
//! input_fp(i) = fold mix over
//!     mix(env_fp, content_fp(i)), input_fp(dep_1), …, input_fp(dep_k)
//! ```
//!
//! where `content_fp` hashes the declaration's canonical printed form
//! (span-erased, whitespace-normalized — a comment edit stays green),
//! the dependencies come from the name-level [`DepGraph`] in ascending
//! index order, and `env_fp` covers everything else an elaboration can
//! observe: crate version, [`LawConfig`](ur_core::LawConfig) bits,
//! resource [`Limits`](ur_core::Limits), and the base environment
//! (prelude) identity. Input fingerprints are transitive by
//! construction: a change anywhere in a declaration's dependency cone
//! changes its key.
//!
//! A rebuild walks declarations in source order. A declaration is
//! **green** when all of its dependencies are green *and* its key has a
//! decodable cached outcome (memory first, then the on-disk layer in
//! [`crate::disk`]); green declarations are *seeded* — their recorded
//! outcome is installed verbatim, re-running none of the hnf/defeq/unify
//! machinery and charging no fuel. Everything else is **red** and
//! re-elaborates through the ordinary engine, in parallel when a thread
//! pool is available ([`elab_program_all_incremental`] composes with the
//! PR-3 scheduler: seeded outcomes ship to workers exactly like
//! completed tasks). After the run, every red outcome is linked
//! ([`crate::link`]) and written back to both cache layers.
//!
//! The green requirement on dependencies is what makes seeding sound
//! with direct symbol linking: a green declaration's payload references
//! its dependencies by fingerprint, and those have already been resolved
//! (they are green, in source order) by the time the payload decodes.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use ur_core::fingerprint::{hash_str, mix, Fnv64};
use ur_core::sym::Sym;
use ur_infer::{elab_program_all_incremental, DepGraph, Elaborator, Seed};
use ur_infer::{Code, Diagnostic, Diagnostics, ElabDecl};
use ur_syntax::pretty::decl_to_string;
use ur_syntax::{parse_program, Span};

use crate::disk;
use crate::link::{self, LinkTable, RelDiag, ResolveTable};

/// Engine construction parameters.
#[derive(Clone, Debug, Default)]
pub struct EngineConfig {
    /// Explicit cache directory; `None` defers to `UR_CACHE_DIR` /
    /// `.ur-cache` resolution (see [`disk::resolve_cache_dir`]).
    pub cache_dir: Option<PathBuf>,
    /// Identity of the base environment the engine runs against
    /// (typically a hash of the prelude source). Folded into `env_fp`,
    /// so caches produced against a different base never seed.
    pub base_tag: u64,
}

/// What one [`Engine::run`] did, for reporting and tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Declarations in the program.
    pub decls_total: usize,
    /// Declarations reused from cache without re-elaboration.
    pub green: usize,
    /// Declarations that re-elaborated.
    pub red: usize,
    /// Verified entries loaded from the disk layer this run.
    pub disk_hits: u64,
    /// Disk entries that existed but failed verification or decoding.
    pub disk_rejections: u64,
    /// Write-back attempts the disk layer could not persist this run
    /// (full disk, bad permissions, …). The run is still correct — the
    /// cache just stays cold for those entries.
    pub disk_store_errs: u64,
}

/// A red-green incremental elaboration engine with a two-layer
/// (memory + disk) outcome cache. One engine instance tracks one base
/// environment; reuse it across rebuilds of the same session.
pub struct Engine {
    cache_dir: Option<PathBuf>,
    base_tag: u64,
    /// Linked payloads by input fingerprint. Entries are
    /// process-independent (see [`crate::link`]), so surviving a base
    /// re-seed between rebuilds is safe.
    memory: HashMap<u64, Vec<u8>>,
    /// Whether this engine already warned about disk-store failures;
    /// one warning per engine (≈ per session), not one per entry.
    warned_store_err: bool,
}

impl Engine {
    pub fn new(cfg: EngineConfig) -> Engine {
        Engine {
            cache_dir: disk::resolve_cache_dir(cfg.cache_dir),
            base_tag: cfg.base_tag,
            memory: HashMap::new(),
            warned_store_err: false,
        }
    }

    /// The resolved disk-cache directory, if the disk layer is enabled.
    pub fn cache_dir(&self) -> Option<&Path> {
        self.cache_dir.as_deref()
    }

    /// Number of linked payloads in the in-memory layer.
    pub fn memory_entries(&self) -> usize {
        self.memory.len()
    }

    /// Elaborates `src` against `elab`, which must be at the base state
    /// this engine was configured for (callers restore a base snapshot
    /// before each rebuild). Returns the elaborated declarations, the
    /// diagnostics in source order, and a [`RunReport`].
    ///
    /// Semantics are identical to a cold
    /// [`elab_source_all_threads`](ur_infer::elab::Elaborator) run —
    /// the cache changes how much work happens, never the result.
    pub fn run(
        &mut self,
        elab: &mut Elaborator,
        src: &str,
        threads: usize,
    ) -> (Vec<ElabDecl>, Diagnostics, RunReport) {
        let prog = match parse_program(src) {
            Ok(p) => p,
            Err(e) => return (Vec::new(), vec![e.into()], RunReport::default()),
        };
        let n = prog.decls.len();

        // Base environment enumeration, in sym-id (creation) order. Both
        // the link and resolve tables are built from this one list, and
        // env_fp covers it, so cross-process ordinals agree.
        let mut base_cons: Vec<Sym> = elab.genv.cons().map(|(s, _)| *s).collect();
        base_cons.sort_by_key(|s| s.id());
        let mut base_vals: Vec<Sym> = elab.genv.vals().map(|(s, _)| *s).collect();
        base_vals.sort_by_key(|s| s.id());
        let env_fp = env_fingerprint(elab, self.base_tag, &base_cons, &base_vals);

        // Fingerprints. Dependencies always point at earlier
        // declarations or form cycles the scheduler reports; for
        // robustness a forward edge contributes a fixed tag instead of
        // an (uncomputed) fingerprint.
        let graph = DepGraph::build(&prog.decls);
        let mut input_fp = vec![0u64; n];
        for i in 0..n {
            let mut fp = mix(env_fp, hash_str(&decl_to_string(&prog.decls[i])));
            for &d in graph.deps(i) {
                let dep_fp = if d < i { input_fp[d] } else { 0x6f72_7761_7264_u64 };
                fp = mix(fp, dep_fp);
            }
            input_fp[i] = fp;
        }

        // Green detection + seeding, in source order so every green
        // declaration's dependencies are already in the resolve table.
        let mut resolve = ResolveTable::new(base_cons.clone(), base_vals.clone());
        let mut green = vec![false; n];
        let mut seeds: Vec<Option<Seed>> = (0..n).map(|_| None).collect();
        let mut disk_hits = 0u64;
        let mut disk_rejections = 0u64;
        for i in 0..n {
            if !graph.deps(i).iter().all(|&d| d < i && green[d]) {
                continue;
            }
            let key = input_fp[i];
            let mut from_disk = false;
            let payload = match self.memory.get(&key) {
                Some(p) => Some(p.clone()),
                None => match &self.cache_dir {
                    Some(dir) => match disk::load(dir, key, env_fp) {
                        disk::LoadResult::Hit(p) => {
                            from_disk = true;
                            Some(p)
                        }
                        disk::LoadResult::Rejected => {
                            disk_rejections = disk_rejections.saturating_add(1);
                            None
                        }
                        disk::LoadResult::Miss => None,
                    },
                    None => None,
                },
            };
            let Some(bytes) = payload else { continue };
            match link::decode_entry(&bytes, &resolve) {
                Some((outcome, rel)) => {
                    if from_disk {
                        disk_hits = disk_hits.saturating_add(1);
                        self.memory.insert(key, bytes);
                    }
                    let diag = rel.map(|rd| replay_diag(&rd, prog.decls[i].span()));
                    resolve.add_decl(key, &outcome);
                    seeds[i] = Some(Seed { outcome, diag });
                    green[i] = true;
                }
                None => {
                    // Undecodable payload: drop it and recompute.
                    self.memory.remove(&key);
                    if from_disk {
                        disk_rejections = disk_rejections.saturating_add(1);
                    }
                }
            }
        }
        let greens = green.iter().filter(|&&g| g).count();

        let (decls, diags, records) =
            elab_program_all_incremental(elab, &prog, threads, &graph, seeds);

        // Write back every red outcome in linked form. Green outcomes
        // are only (re-)registered in the link table so later red
        // declarations can reference their contributions.
        let mut disk_store_errs = 0u64;
        if records.len() == n {
            let mut ltab = LinkTable::new(&base_cons, &base_vals);
            for (i, rec) in records.iter().enumerate() {
                if !green[i] {
                    let rel = rec
                        .diag
                        .as_ref()
                        .map(|d| rebase_diag(d, prog.decls[i].span()));
                    if let Some(bytes) = link::encode_entry(&rec.outcome, rel.as_ref(), &ltab) {
                        if let Some(dir) = &self.cache_dir {
                            if !disk::store(dir, input_fp[i], env_fp, &bytes) {
                                disk_store_errs = disk_store_errs.saturating_add(1);
                            }
                        }
                        self.memory.insert(input_fp[i], bytes);
                    }
                }
                ltab.add_decl(input_fp[i], &rec.outcome);
            }
        }
        if disk_store_errs > 0 && !self.warned_store_err {
            self.warned_store_err = true;
            eprintln!(
                "warning: ur-query disk cache: {disk_store_errs} store failure(s) in {:?}; \
                 cache stays cold (check disk space/permissions)",
                self.cache_dir
            );
        }

        let st = &mut elab.cx.stats;
        st.queries_total = st.queries_total.saturating_add(n as u64);
        st.green_reused = st.green_reused.saturating_add(greens as u64);
        st.red_recomputed = st.red_recomputed.saturating_add((n - greens) as u64);
        st.disk_hits = st.disk_hits.saturating_add(disk_hits);
        st.disk_rejections = st.disk_rejections.saturating_add(disk_rejections);
        st.disk_store_errs = st.disk_store_errs.saturating_add(disk_store_errs);

        let report = RunReport {
            decls_total: n,
            green: greens,
            red: n - greens,
            disk_hits,
            disk_rejections,
            disk_store_errs,
        };
        (decls, diags, report)
    }
}

/// Everything an elaboration observes besides the declarations
/// themselves: crate version, equational-law configuration, resource
/// limits, the configured base tag, and the base environment's binding
/// names in enumeration order (so a drifted base can never be confused
/// with the one a cache entry was linked against).
fn env_fingerprint(
    elab: &Elaborator,
    base_tag: u64,
    base_cons: &[Sym],
    base_vals: &[Sym],
) -> u64 {
    let mut f = Fnv64::new();
    f.write_str(env!("CARGO_PKG_VERSION"));
    f.write_str(&format!("{:?}", elab.cx.laws));
    f.write_str(&format!("{:?}", elab.cx.fuel.limits));
    f.write_u64(base_tag);
    f.write_u32(base_cons.len() as u32);
    for s in base_cons {
        f.write_str(s.name());
    }
    f.write_u32(base_vals.len() as u32);
    for s in base_vals {
        f.write_str(s.name());
    }
    f.finish()
}

/// Diagnostic → declaration-relative form (store direction).
fn rebase_diag(d: &Diagnostic, decl_span: Span) -> RelDiag {
    RelDiag {
        dline: d.span.line as i64 - decl_span.line as i64,
        col: d.span.col,
        code: d.code.as_str().to_string(),
        message: d.message.clone(),
        notes: d.notes.clone(),
    }
}

/// Declaration-relative form → diagnostic at the declaration's current
/// position (load direction).
fn replay_diag(rd: &RelDiag, decl_span: Span) -> Diagnostic {
    let line = (decl_span.line as i64 + rd.dline).clamp(0, u32::MAX as i64) as u32;
    let mut d = Diagnostic::new(
        Span { line, col: rd.col },
        Code::parse(&rd.code).unwrap_or(Code::Other),
        rd.message.clone(),
    );
    for n in &rd.notes {
        d = d.with_note(n.clone());
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "con t :: Type = int\n\
                       val one : int = 1\n\
                       val two : t = one\n";

    fn run_cold(src: &str) -> (Vec<ElabDecl>, Diagnostics) {
        let mut elab = Elaborator::new();
        elab.elab_source_all_threads(src, 1)
    }

    fn strip(decls: &[ElabDecl]) -> Vec<String> {
        decls.iter().map(|d| format!("{d:?}")).collect()
    }

    #[test]
    fn noop_rebuild_is_fully_green() {
        let mut eng = Engine::new(EngineConfig {
            cache_dir: Some(test_dir("noop")),
            base_tag: 1,
        });
        let mut e1 = Elaborator::new();
        let (d1, g1, r1) = eng.run(&mut e1, SRC, 1);
        assert_eq!(r1.red, 3, "cold run recomputes everything");
        assert!(g1.is_empty(), "{g1:?}");
        let mut e2 = Elaborator::new();
        let (d2, g2, r2) = eng.run(&mut e2, SRC, 1);
        assert_eq!(r2.green, 3, "warm no-op rebuild is fully green: {r2:?}");
        assert_eq!(r2.red, 0);
        assert!(g2.is_empty());
        assert_eq!(norm(&strip(&d1)), norm(&strip(&d2)));
        // Green reuse must charge no elaboration fuel.
        assert_eq!(e2.cx.fuel.lifetime_norm_steps(), 0);
        cleanup("noop");
    }

    #[test]
    fn single_edit_recomputes_only_the_dependent_cone() {
        let mut eng = Engine::new(EngineConfig {
            cache_dir: Some(test_dir("edit")),
            base_tag: 2,
        });
        let mut e1 = Elaborator::new();
        let _ = eng.run(&mut e1, SRC, 1);
        // Edit `one` (decl 1): `two` depends on it, `t` does not.
        let edited = "con t :: Type = int\n\
                      val one : int = 2\n\
                      val two : t = one\n";
        let mut e2 = Elaborator::new();
        let (_, diags, r) = eng.run(&mut e2, edited, 1);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(r.green, 1, "only `t` stays green: {r:?}");
        assert_eq!(r.red, 2);
        cleanup("edit");
    }

    #[test]
    fn disk_layer_seeds_a_fresh_engine() {
        let dir = test_dir("disk");
        let mut eng1 = Engine::new(EngineConfig {
            cache_dir: Some(dir.clone()),
            base_tag: 3,
        });
        let mut e1 = Elaborator::new();
        let (_, _, r1) = eng1.run(&mut e1, SRC, 1);
        assert_eq!(r1.disk_hits, 0);
        // A brand-new engine (fresh process simulation) hits disk.
        let mut eng2 = Engine::new(EngineConfig {
            cache_dir: Some(dir),
            base_tag: 3,
        });
        let mut e2 = Elaborator::new();
        let (d2, g2, r2) = eng2.run(&mut e2, SRC, 1);
        assert!(g2.is_empty());
        assert_eq!(r2.green, 3, "{r2:?}");
        assert_eq!(r2.disk_hits, 3);
        let (cold, _) = run_cold(SRC);
        assert_eq!(norm(&strip(&cold)), norm(&strip(&d2)));
        cleanup("disk");
    }

    #[test]
    fn corrupt_disk_entries_fall_back_to_recompute() {
        let dir = test_dir("corrupt");
        let mut eng1 = Engine::new(EngineConfig {
            cache_dir: Some(dir.clone()),
            base_tag: 4,
        });
        let mut e1 = Elaborator::new();
        let _ = eng1.run(&mut e1, SRC, 1);
        // Bit-flip every cached file.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            let mut b = std::fs::read(&p).unwrap();
            let mid = b.len() / 2;
            b[mid] ^= 0xff;
            std::fs::write(&p, b).unwrap();
        }
        let mut eng2 = Engine::new(EngineConfig {
            cache_dir: Some(dir),
            base_tag: 4,
        });
        let mut e2 = Elaborator::new();
        let (_, diags, r) = eng2.run(&mut e2, SRC, 1);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(r.green, 0, "corrupt entries must not seed: {r:?}");
        assert_eq!(r.red, 3);
        assert!(r.disk_rejections >= 1, "{r:?}");
        cleanup("corrupt");
    }

    #[test]
    fn cached_diagnostics_replay_at_shifted_positions() {
        let bad = "val a : int = 1\nval b : int = \"oops\"\n";
        let mut eng = Engine::new(EngineConfig {
            cache_dir: Some(test_dir("diag")),
            base_tag: 5,
        });
        let mut e1 = Elaborator::new();
        let (_, d1, _) = eng.run(&mut e1, bad, 1);
        assert_eq!(d1.len(), 1, "{d1:?}");
        // Insert an unrelated declaration above; `b` shifts down a line
        // but stays green, and its diagnostic replays at the new line.
        let shifted = "val z : int = 9\nval a : int = 1\nval b : int = \"oops\"\n";
        let mut e2 = Elaborator::new();
        let (_, d2, r) = eng.run(&mut e2, shifted, 1);
        assert_eq!(d2.len(), 1, "{d2:?}");
        assert_eq!(d2[0].code, d1[0].code);
        assert_eq!(d2[0].message, d1[0].message);
        assert_eq!(d2[0].span.line, d1[0].span.line + 1, "{:?}", d2[0]);
        assert!(r.green >= 1, "b must be a green replay: {r:?}");
        cleanup("diag");
    }

    #[test]
    fn unwritable_cache_dir_counts_store_errors() {
        // The cache dir's parent is a regular file: `create_dir_all`
        // fails, so every write-back counts as a store error — and the
        // run itself still succeeds (the cache just stays cold).
        let file = std::env::temp_dir().join(format!("ur-query-eng-notdir-{}", std::process::id()));
        std::fs::write(&file, b"not a directory").unwrap();
        let mut eng = Engine::new(EngineConfig {
            cache_dir: Some(file.join("cache")),
            base_tag: 6,
        });
        let mut e = Elaborator::new();
        let (_, diags, r) = eng.run(&mut e, SRC, 1);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(r.red, 3);
        assert_eq!(r.disk_store_errs, 3, "{r:?}");
        assert_eq!(e.cx.stats.disk_store_errs, 3);
        let _ = std::fs::remove_file(&file);
    }

    fn norm(xs: &[String]) -> Vec<String> {
        // Sym ids differ between cold and warm runs (alpha-renaming);
        // strip `#N` suffixes the Debug form carries.
        xs.iter()
            .map(|s| {
                let mut out = String::new();
                let mut chars = s.chars().peekable();
                while let Some(c) = chars.next() {
                    if c == '#' {
                        while matches!(chars.peek(), Some(d) if d.is_ascii_digit()) {
                            chars.next();
                        }
                    } else {
                        out.push(c);
                    }
                }
                out
            })
            .collect()
    }

    fn test_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("ur-query-eng-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn cleanup(tag: &str) {
        let _ = std::fs::remove_dir_all(test_dir(tag));
    }
}
