//! Symbol linking: process-independent encoding of elaboration outcomes.
//!
//! A cached outcome ([`ur_infer::Outcome`]) is full of [`Sym`] ids, and
//! sym ids come from a process-global counter — an id persisted by one
//! `urc` run aliases a completely unrelated symbol in the next. Before
//! an outcome can live in the on-disk cache (or even in the in-memory
//! cache across rebuilds, where the base environment is re-seeded), every
//! sym occurrence must be rewritten into a *linked* form ([`LSym`]) that
//! names symbols by role rather than by id:
//!
//! * [`LSym::BaseCon`]/[`LSym::BaseVal`] — the *ord*-th constructor/value
//!   binding of the base (post-prelude) environment, enumerated in sym-id
//!   order. Id order is creation order, so the enumeration is identical
//!   in every process that elaborated the same prelude (the cache's
//!   environment fingerprint guarantees exactly that).
//! * [`LSym::DeclOf`] — the declaration symbol of the dependency whose
//!   input fingerprint is `fp`.
//! * [`LSym::ExtraOf`] — the *ord*-th extra `con` binding (a `let`-local
//!   constructor that escaped into the global environment) of the
//!   dependency with input fingerprint `fp`.
//! * [`LSym::Local`] — a symbol minted during this declaration's own
//!   elaboration (its own decl sym, binders, escaped locals). Numbered by
//!   first appearance; decoding mints a fresh sym per number, which is
//!   exactly alpha-renaming and therefore invisible to every downstream
//!   consumer (sym equality is id-based and ids are never compared across
//!   declarations except through the environment, which the decoder
//!   rebuilds consistently).
//!
//! Soundness of the `Local` fallback: a free sym in an outcome can only
//! refer to something in the environment the declaration elaborated
//! against — the base environment plus its dependency closure's
//! contributions — and all of those are in the link table. Anything not
//! in the table was minted during the declaration's own elaboration, so
//! it is local by construction.
//!
//! ## Wire format: flat node tables
//!
//! Terms are arena handles ([`RCon`]/[`RExpr`]), i.e. DAGs with `Copy`
//! ids, so the payload is a *node table* rather than a recursive term
//! dump: three tables (kinds, then constructors, then expressions) where
//! every entry's children are `u32` indices of **earlier** entries, then
//! a root section referencing the tables. Both directions are plain
//! loops — no recursion, no depth cap (the `Rc`-era codec needed a
//! `MAX_LINK_DEPTH` guard to stay inside the thread stack; a 5,000-deep
//! term is now just 5,000 table rows) — and sharing survives the trip:
//! a subterm the arena deduplicated is encoded once and re-interned
//! once.
//!
//! Decoding is the mirror image and is total: any reference the
//! [`ResolveTable`] cannot satisfy, any out-of-range table index, or any
//! truncated/corrupt byte makes the whole entry undecodable (`None`),
//! and the engine treats the declaration as red.

use std::collections::HashMap;
use ur_core::codec::{ByteReader, ByteWriter};
use ur_core::con::{Con, MetaId, PrimType, RCon};
use ur_core::expr::{Expr, Lit, RExpr};
use ur_core::kind::{KMetaId, Kind};
use ur_core::sym::Sym;
use ur_infer::{ConBind, ElabDecl, Outcome};

/// A linked (process-independent) symbol reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LSym {
    /// Minted during the owning declaration's elaboration; `ord` numbers
    /// locals by first appearance in the encoded payload.
    Local(u32),
    /// The `ord`-th constructor binding of the base environment (sym-id
    /// order).
    BaseCon(u32),
    /// The `ord`-th value binding of the base environment (sym-id order).
    BaseVal(u32),
    /// The declaration symbol of the dependency with input fingerprint
    /// `fp`.
    DeclOf(u64),
    /// The `ord`-th extra constructor binding of the dependency with
    /// input fingerprint `fp`.
    ExtraOf(u64, u32),
}

/// Store-direction context: sym id → linked reference, for everything
/// visible to a declaration from outside (base bindings and dependency
/// contributions). Ids absent from the table encode as [`LSym::Local`].
#[derive(Debug, Default)]
pub struct LinkTable {
    map: HashMap<u32, LSym>,
}

impl LinkTable {
    /// Builds the base layer from the base environment's bindings,
    /// pre-sorted by sym id (see [`ResolveTable::new`] for the mirror).
    pub fn new(base_cons: &[Sym], base_vals: &[Sym]) -> LinkTable {
        let mut map = HashMap::new();
        for (ord, s) in base_cons.iter().enumerate() {
            map.insert(s.id(), LSym::BaseCon(ord as u32));
        }
        for (ord, s) in base_vals.iter().enumerate() {
            map.insert(s.id(), LSym::BaseVal(ord as u32));
        }
        LinkTable { map }
    }

    /// Records one processed declaration's contributions so later
    /// declarations can reference them. Call in source order, *after*
    /// encoding the declaration itself (its own sym must encode as
    /// local, not as a reference to itself).
    pub fn add_decl(&mut self, fp: u64, outcome: &Outcome) {
        if let Some(d) = &outcome.decl {
            let sym = match d {
                ElabDecl::Con { sym, .. } | ElabDecl::Val { sym, .. } => *sym,
            };
            self.map.insert(sym.id(), LSym::DeclOf(fp));
        }
        for (ord, b) in outcome.extra_cons.iter().enumerate() {
            self.map.insert(b.sym.id(), LSym::ExtraOf(fp, ord as u32));
        }
    }
}

/// Load-direction context: the inverse of [`LinkTable`], mapping linked
/// references back to live symbols of the current process.
#[derive(Debug, Default)]
pub struct ResolveTable {
    base_cons: Vec<Sym>,
    base_vals: Vec<Sym>,
    decls: HashMap<u64, (Option<Sym>, Vec<Sym>)>,
}

impl ResolveTable {
    /// Builds the base layer; the slices must enumerate the same
    /// bindings in the same (sym-id) order as the [`LinkTable`] that
    /// encoded the entries being resolved.
    pub fn new(base_cons: Vec<Sym>, base_vals: Vec<Sym>) -> ResolveTable {
        ResolveTable {
            base_cons,
            base_vals,
            decls: HashMap::new(),
        }
    }

    /// Records a green declaration's resolved contributions. Call in
    /// source order as seeds are accepted; red declarations contribute
    /// nothing (no green declaration can depend on them).
    pub fn add_decl(&mut self, fp: u64, outcome: &Outcome) {
        let sym = outcome.decl.as_ref().map(|d| match d {
            ElabDecl::Con { sym, .. } | ElabDecl::Val { sym, .. } => *sym,
        });
        let extra = outcome.extra_cons.iter().map(|b| b.sym).collect();
        self.decls.insert(fp, (sym, extra));
    }

    fn resolve(&self, l: &LSym) -> Option<Sym> {
        match l {
            LSym::Local(_) => None, // handled by the decoder's mint table
            LSym::BaseCon(ord) => self.base_cons.get(*ord as usize).copied(),
            LSym::BaseVal(ord) => self.base_vals.get(*ord as usize).copied(),
            LSym::DeclOf(fp) => self.decls.get(fp).and_then(|(s, _)| *s),
            LSym::ExtraOf(fp, ord) => self
                .decls
                .get(fp)
                .and_then(|(_, extra)| extra.get(*ord as usize).copied()),
        }
    }
}

/// Writes one sym occurrence: a linked reference when the table knows
/// the id, otherwise a local ordinal (assigned by first appearance)
/// plus the display name. A free function so entry serializers can
/// borrow the destination writer and the locals map independently.
fn put_sym(table: &LinkTable, locals: &mut HashMap<u32, u32>, w: &mut ByteWriter, s: Sym) {
    match table.map.get(&s.id()) {
        Some(LSym::BaseCon(ord)) => {
            w.put_u8(1);
            w.put_u32(*ord);
        }
        Some(LSym::BaseVal(ord)) => {
            w.put_u8(2);
            w.put_u32(*ord);
        }
        Some(LSym::DeclOf(fp)) => {
            w.put_u8(3);
            w.put_u64(*fp);
        }
        Some(LSym::ExtraOf(fp, ord)) => {
            w.put_u8(4);
            w.put_u64(*fp);
            w.put_u32(*ord);
        }
        Some(LSym::Local(_)) | None => {
            let next = locals.len() as u32;
            let ord = *locals.entry(s.id()).or_insert(next);
            w.put_u8(0);
            w.put_u32(ord);
            w.put_str(s.name());
        }
    }
}

fn put_prim(w: &mut ByteWriter, p: PrimType) {
    w.put_u8(match p {
        PrimType::Int => 0,
        PrimType::Float => 1,
        PrimType::String => 2,
        PrimType::Bool => 3,
        PrimType::Unit => 4,
    });
}

// ---------------- encoder ----------------

/// Flat-table encoder. Each node space (kinds / cons / exprs) gets its
/// own append-only entry stream and a dedup map; `idx_*` returns the
/// table index of a node, serializing it (and its so-far-unseen
/// descendants, children first) on first sight. The root section is
/// written to `dw` and references the tables by index.
struct Enc<'a> {
    table: &'a LinkTable,
    /// Sym id → local ordinal, assigned by first appearance in the
    /// payload. Shared across all tables and the root section: the
    /// decoder's mint table is keyed by ordinal, so section order does
    /// not matter, only that equal ids get equal ordinals.
    locals: HashMap<u32, u32>,
    kw: ByteWriter,
    kcount: u32,
    /// Structural dedup for kinds: (tag, child, child) → index. Kinds
    /// are plain `Arc` trees (not arena-interned), so the flat key is
    /// how sharing is recovered.
    kmap: HashMap<(u8, u32, u32), u32>,
    cw: ByteWriter,
    ccount: u32,
    cmap: HashMap<RCon, u32>,
    ew: ByteWriter,
    ecount: u32,
    emap: HashMap<RExpr, u32>,
    dw: ByteWriter,
}

enum Walk<T> {
    Enter(T),
    Exit(T),
}

impl<'a> Enc<'a> {
    fn new(table: &'a LinkTable) -> Enc<'a> {
        Enc {
            table,
            locals: HashMap::new(),
            kw: ByteWriter::new(),
            kcount: 0,
            kmap: HashMap::new(),
            cw: ByteWriter::new(),
            ccount: 0,
            cmap: HashMap::new(),
            ew: ByteWriter::new(),
            ecount: 0,
            emap: HashMap::new(),
            dw: ByteWriter::new(),
        }
    }

    /// Indexes a kind, serializing unseen sub-kinds in post-order. The
    /// value stack mirrors the children of the frame being exited.
    fn idx_kind(&mut self, root: &Kind) -> u32 {
        let mut stack: Vec<Walk<&Kind>> = vec![Walk::Enter(root)];
        let mut vals: Vec<u32> = Vec::new();
        while let Some(f) = stack.pop() {
            match f {
                Walk::Enter(k) => {
                    stack.push(Walk::Exit(k));
                    match k {
                        Kind::Arrow(a, b) | Kind::Pair(a, b) => {
                            stack.push(Walk::Enter(b));
                            stack.push(Walk::Enter(a));
                        }
                        Kind::Row(a) => stack.push(Walk::Enter(a)),
                        Kind::Type | Kind::Name | Kind::Meta(_) => {}
                    }
                }
                Walk::Exit(k) => {
                    let key = match k {
                        Kind::Type => (0u8, 0u32, 0u32),
                        Kind::Name => (1, 0, 0),
                        Kind::Arrow(_, _) => {
                            let b = vals.pop().unwrap_or(0);
                            let a = vals.pop().unwrap_or(0);
                            (2, a, b)
                        }
                        Kind::Row(_) => (3, vals.pop().unwrap_or(0), 0),
                        Kind::Pair(_, _) => {
                            let b = vals.pop().unwrap_or(0);
                            let a = vals.pop().unwrap_or(0);
                            (4, a, b)
                        }
                        Kind::Meta(m) => (5, m.0, 0),
                    };
                    let idx = match self.kmap.get(&key) {
                        Some(&i) => i,
                        None => {
                            let i = self.kcount;
                            self.kcount += 1;
                            self.kw.put_u8(key.0);
                            match key.0 {
                                2 | 4 => {
                                    self.kw.put_u32(key.1);
                                    self.kw.put_u32(key.2);
                                }
                                3 | 5 => self.kw.put_u32(key.1),
                                _ => {}
                            }
                            self.kmap.insert(key, i);
                            i
                        }
                    };
                    vals.push(idx);
                }
            }
        }
        vals.pop().unwrap_or(0)
    }

    /// Indexes a constructor, serializing unseen descendants children
    /// first. Children are `Copy` handles, so the dedup map key is the
    /// handle itself and every child of an exiting node is already
    /// indexed.
    fn idx_con(&mut self, root: RCon) -> u32 {
        if let Some(&i) = self.cmap.get(&root) {
            return i;
        }
        let mut stack = vec![Walk::Enter(root)];
        while let Some(f) = stack.pop() {
            match f {
                Walk::Enter(c) => {
                    if self.cmap.contains_key(&c) {
                        continue;
                    }
                    stack.push(Walk::Exit(c));
                    match &*c {
                        Con::Arrow(a, b)
                        | Con::App(a, b)
                        | Con::RowOne(a, b)
                        | Con::RowCat(a, b)
                        | Con::Pair(a, b) => {
                            stack.push(Walk::Enter(*a));
                            stack.push(Walk::Enter(*b));
                        }
                        Con::Guarded(a, b, t) => {
                            stack.push(Walk::Enter(*a));
                            stack.push(Walk::Enter(*b));
                            stack.push(Walk::Enter(*t));
                        }
                        Con::Poly(_, _, t)
                        | Con::Lam(_, _, t)
                        | Con::Record(t)
                        | Con::Fst(t)
                        | Con::Snd(t) => stack.push(Walk::Enter(*t)),
                        Con::Var(_)
                        | Con::Meta(_)
                        | Con::Prim(_)
                        | Con::Name(_)
                        | Con::RowNil(_)
                        | Con::Map(_, _)
                        | Con::Folder(_) => {}
                    }
                }
                Walk::Exit(c) => {
                    if self.cmap.contains_key(&c) {
                        continue;
                    }
                    self.put_con_entry(c);
                    let i = self.ccount;
                    self.ccount += 1;
                    self.cmap.insert(c, i);
                }
            }
        }
        self.cmap.get(&root).copied().unwrap_or(0)
    }

    /// Index of an already-visited con child (exists by post-order).
    fn cref(&self, c: RCon) -> u32 {
        debug_assert!(self.cmap.contains_key(&c), "child indexed before parent");
        self.cmap.get(&c).copied().unwrap_or(0)
    }

    fn eref(&self, e: RExpr) -> u32 {
        debug_assert!(self.emap.contains_key(&e), "child indexed before parent");
        self.emap.get(&e).copied().unwrap_or(0)
    }

    fn put_con_entry(&mut self, c: RCon) {
        match &*c {
            Con::Var(s) => {
                self.cw.put_u8(0);
                put_sym(self.table, &mut self.locals, &mut self.cw, *s);
            }
            Con::Meta(m) => {
                self.cw.put_u8(1);
                self.cw.put_u32(m.0);
            }
            Con::Prim(p) => {
                self.cw.put_u8(2);
                put_prim(&mut self.cw, *p);
            }
            Con::Arrow(a, b) => {
                let (a, b) = (self.cref(*a), self.cref(*b));
                self.cw.put_u8(3);
                self.cw.put_u32(a);
                self.cw.put_u32(b);
            }
            Con::Poly(s, k, t) => {
                let (k, t) = (self.idx_kind(k), self.cref(*t));
                self.cw.put_u8(4);
                put_sym(self.table, &mut self.locals, &mut self.cw, *s);
                self.cw.put_u32(k);
                self.cw.put_u32(t);
            }
            Con::Guarded(a, b, t) => {
                let (a, b, t) = (self.cref(*a), self.cref(*b), self.cref(*t));
                self.cw.put_u8(5);
                self.cw.put_u32(a);
                self.cw.put_u32(b);
                self.cw.put_u32(t);
            }
            Con::Lam(s, k, t) => {
                let (k, t) = (self.idx_kind(k), self.cref(*t));
                self.cw.put_u8(6);
                put_sym(self.table, &mut self.locals, &mut self.cw, *s);
                self.cw.put_u32(k);
                self.cw.put_u32(t);
            }
            Con::App(f, a) => {
                let (f, a) = (self.cref(*f), self.cref(*a));
                self.cw.put_u8(7);
                self.cw.put_u32(f);
                self.cw.put_u32(a);
            }
            Con::Name(n) => {
                self.cw.put_u8(8);
                self.cw.put_str(n);
            }
            Con::Record(t) => {
                let t = self.cref(*t);
                self.cw.put_u8(9);
                self.cw.put_u32(t);
            }
            Con::RowNil(k) => {
                let k = self.idx_kind(k);
                self.cw.put_u8(10);
                self.cw.put_u32(k);
            }
            Con::RowOne(n, v) => {
                let (n, v) = (self.cref(*n), self.cref(*v));
                self.cw.put_u8(11);
                self.cw.put_u32(n);
                self.cw.put_u32(v);
            }
            Con::RowCat(a, b) => {
                let (a, b) = (self.cref(*a), self.cref(*b));
                self.cw.put_u8(12);
                self.cw.put_u32(a);
                self.cw.put_u32(b);
            }
            Con::Map(k1, k2) => {
                let (k1, k2) = (self.idx_kind(k1), self.idx_kind(k2));
                self.cw.put_u8(13);
                self.cw.put_u32(k1);
                self.cw.put_u32(k2);
            }
            Con::Folder(k) => {
                let k = self.idx_kind(k);
                self.cw.put_u8(14);
                self.cw.put_u32(k);
            }
            Con::Pair(a, b) => {
                let (a, b) = (self.cref(*a), self.cref(*b));
                self.cw.put_u8(15);
                self.cw.put_u32(a);
                self.cw.put_u32(b);
            }
            Con::Fst(t) => {
                let t = self.cref(*t);
                self.cw.put_u8(16);
                self.cw.put_u32(t);
            }
            Con::Snd(t) => {
                let t = self.cref(*t);
                self.cw.put_u8(17);
                self.cw.put_u32(t);
            }
        }
    }

    fn idx_expr(&mut self, root: RExpr) -> u32 {
        if let Some(&i) = self.emap.get(&root) {
            return i;
        }
        let mut stack = vec![Walk::Enter(root)];
        while let Some(f) = stack.pop() {
            match f {
                Walk::Enter(e) => {
                    if self.emap.contains_key(&e) {
                        continue;
                    }
                    stack.push(Walk::Exit(e));
                    match &*e {
                        Expr::App(a, b) | Expr::RecCat(a, b) | Expr::Let(_, _, a, b) => {
                            stack.push(Walk::Enter(*a));
                            stack.push(Walk::Enter(*b));
                        }
                        Expr::Lam(_, _, b)
                        | Expr::CLam(_, _, b)
                        | Expr::DLam(_, _, b)
                        | Expr::RecOne(_, b)
                        | Expr::CApp(b, _)
                        | Expr::Proj(b, _)
                        | Expr::Cut(b, _)
                        | Expr::DApp(b) => stack.push(Walk::Enter(*b)),
                        Expr::If(c, t, e2) => {
                            stack.push(Walk::Enter(*c));
                            stack.push(Walk::Enter(*t));
                            stack.push(Walk::Enter(*e2));
                        }
                        Expr::Var(_) | Expr::Lit(_) | Expr::RecNil => {}
                    }
                }
                Walk::Exit(e) => {
                    if self.emap.contains_key(&e) {
                        continue;
                    }
                    self.put_expr_entry(e);
                    let i = self.ecount;
                    self.ecount += 1;
                    self.emap.insert(e, i);
                }
            }
        }
        self.emap.get(&root).copied().unwrap_or(0)
    }

    fn put_expr_entry(&mut self, e: RExpr) {
        match &*e {
            Expr::Var(s) => {
                self.ew.put_u8(0);
                put_sym(self.table, &mut self.locals, &mut self.ew, *s);
            }
            Expr::Lit(l) => {
                self.ew.put_u8(1);
                match l {
                    Lit::Int(n) => {
                        self.ew.put_u8(0);
                        self.ew.put_i64(*n);
                    }
                    Lit::Float(x) => {
                        self.ew.put_u8(1);
                        self.ew.put_f64(*x);
                    }
                    Lit::Str(s) => {
                        self.ew.put_u8(2);
                        self.ew.put_str(s);
                    }
                    Lit::Bool(b) => {
                        self.ew.put_u8(3);
                        self.ew.put_bool(*b);
                    }
                    Lit::Unit => self.ew.put_u8(4),
                }
            }
            Expr::App(f, a) => {
                let (f, a) = (self.eref(*f), self.eref(*a));
                self.ew.put_u8(2);
                self.ew.put_u32(f);
                self.ew.put_u32(a);
            }
            Expr::Lam(x, t, b) => {
                let (t, b) = (self.idx_con(*t), self.eref(*b));
                self.ew.put_u8(3);
                put_sym(self.table, &mut self.locals, &mut self.ew, *x);
                self.ew.put_u32(t);
                self.ew.put_u32(b);
            }
            Expr::CApp(e1, c) => {
                let (e1, c) = (self.eref(*e1), self.idx_con(*c));
                self.ew.put_u8(4);
                self.ew.put_u32(e1);
                self.ew.put_u32(c);
            }
            Expr::CLam(a, k, b) => {
                let (k, b) = (self.idx_kind(k), self.eref(*b));
                self.ew.put_u8(5);
                put_sym(self.table, &mut self.locals, &mut self.ew, *a);
                self.ew.put_u32(k);
                self.ew.put_u32(b);
            }
            Expr::RecNil => self.ew.put_u8(6),
            Expr::RecOne(n, e1) => {
                let (n, e1) = (self.idx_con(*n), self.eref(*e1));
                self.ew.put_u8(7);
                self.ew.put_u32(n);
                self.ew.put_u32(e1);
            }
            Expr::RecCat(a, b) => {
                let (a, b) = (self.eref(*a), self.eref(*b));
                self.ew.put_u8(8);
                self.ew.put_u32(a);
                self.ew.put_u32(b);
            }
            Expr::Proj(e1, c) => {
                let (e1, c) = (self.eref(*e1), self.idx_con(*c));
                self.ew.put_u8(9);
                self.ew.put_u32(e1);
                self.ew.put_u32(c);
            }
            Expr::Cut(e1, c) => {
                let (e1, c) = (self.eref(*e1), self.idx_con(*c));
                self.ew.put_u8(10);
                self.ew.put_u32(e1);
                self.ew.put_u32(c);
            }
            Expr::DLam(c1, c2, b) => {
                let (c1, c2, b) = (self.idx_con(*c1), self.idx_con(*c2), self.eref(*b));
                self.ew.put_u8(11);
                self.ew.put_u32(c1);
                self.ew.put_u32(c2);
                self.ew.put_u32(b);
            }
            Expr::DApp(e1) => {
                let e1 = self.eref(*e1);
                self.ew.put_u8(12);
                self.ew.put_u32(e1);
            }
            Expr::Let(x, t, bound, body) => {
                let (t, bound, body) = (self.idx_con(*t), self.eref(*bound), self.eref(*body));
                self.ew.put_u8(13);
                put_sym(self.table, &mut self.locals, &mut self.ew, *x);
                self.ew.put_u32(t);
                self.ew.put_u32(bound);
                self.ew.put_u32(body);
            }
            Expr::If(c, t, e2) => {
                let (c, t, e2) = (self.eref(*c), self.eref(*t), self.eref(*e2));
                self.ew.put_u8(14);
                self.ew.put_u32(c);
                self.ew.put_u32(t);
                self.ew.put_u32(e2);
            }
        }
    }

    fn root_sym(&mut self, s: Sym) {
        put_sym(self.table, &mut self.locals, &mut self.dw, s);
    }

    fn root_opt_con(&mut self, c: &Option<RCon>) {
        match c {
            Some(c) => {
                let i = self.idx_con(*c);
                self.dw.put_bool(true);
                self.dw.put_u32(i);
            }
            None => self.dw.put_bool(false),
        }
    }

    fn outcome(&mut self, o: &Outcome) {
        match &o.decl {
            Some(ElabDecl::Con { name, sym, kind, def }) => {
                self.dw.put_bool(true);
                self.dw.put_u8(0);
                self.dw.put_str(name);
                self.root_sym(*sym);
                let k = self.idx_kind(kind);
                self.dw.put_u32(k);
                self.root_opt_con(def);
            }
            Some(ElabDecl::Val { name, sym, ty, body }) => {
                self.dw.put_bool(true);
                self.dw.put_u8(1);
                self.dw.put_str(name);
                self.root_sym(*sym);
                let t = self.idx_con(*ty);
                self.dw.put_u32(t);
                match body {
                    Some(e) => {
                        let i = self.idx_expr(*e);
                        self.dw.put_bool(true);
                        self.dw.put_u32(i);
                    }
                    None => self.dw.put_bool(false),
                }
            }
            None => self.dw.put_bool(false),
        }
        self.dw.put_u32(o.extra_cons.len() as u32);
        for b in &o.extra_cons {
            self.root_sym(b.sym);
            let k = self.idx_kind(&b.kind);
            self.dw.put_u32(k);
            self.root_opt_con(&b.def);
        }
    }
}

// ---------------- decoder ----------------

/// Flat-table decoder. Tables are rebuilt front to back — every child
/// reference must point at an already-built entry, which doubles as the
/// acyclicity check — and terms re-intern into this process's arena via
/// the ordinary smart constructors.
struct Dec<'a> {
    table: &'a ResolveTable,
    /// Local ordinal → freshly minted symbol (one mint per ordinal).
    locals: HashMap<u32, Sym>,
    kinds: Vec<Kind>,
    cons: Vec<RCon>,
    exprs: Vec<RExpr>,
}

impl<'a> Dec<'a> {
    fn sym(&mut self, r: &mut ByteReader) -> Option<Sym> {
        match r.get_u8()? {
            0 => {
                let ord = r.get_u32()?;
                let name = r.get_str()?;
                Some(*self.locals.entry(ord).or_insert_with(|| Sym::fresh(name)))
            }
            1 => self.table.resolve(&LSym::BaseCon(r.get_u32()?)),
            2 => self.table.resolve(&LSym::BaseVal(r.get_u32()?)),
            3 => self.table.resolve(&LSym::DeclOf(r.get_u64()?)),
            4 => {
                let fp = r.get_u64()?;
                let ord = r.get_u32()?;
                self.table.resolve(&LSym::ExtraOf(fp, ord))
            }
            _ => None,
        }
    }

    fn kind_ref(&self, r: &mut ByteReader) -> Option<Kind> {
        self.kinds.get(r.get_u32()? as usize).cloned()
    }

    fn con_ref(&self, r: &mut ByteReader) -> Option<RCon> {
        self.cons.get(r.get_u32()? as usize).copied()
    }

    fn expr_ref(&self, r: &mut ByteReader) -> Option<RExpr> {
        self.exprs.get(r.get_u32()? as usize).copied()
    }

    fn kind_entry(&mut self, r: &mut ByteReader) -> Option<()> {
        let k = match r.get_u8()? {
            0 => Kind::Type,
            1 => Kind::Name,
            2 => Kind::arrow(self.kind_ref(r)?, self.kind_ref(r)?),
            3 => Kind::row(self.kind_ref(r)?),
            4 => Kind::pair(self.kind_ref(r)?, self.kind_ref(r)?),
            5 => Kind::Meta(KMetaId(r.get_u32()?)),
            _ => return None,
        };
        self.kinds.push(k);
        Some(())
    }

    fn prim(&self, r: &mut ByteReader) -> Option<PrimType> {
        Some(match r.get_u8()? {
            0 => PrimType::Int,
            1 => PrimType::Float,
            2 => PrimType::String,
            3 => PrimType::Bool,
            4 => PrimType::Unit,
            _ => return None,
        })
    }

    fn con_entry(&mut self, r: &mut ByteReader) -> Option<()> {
        let c = match r.get_u8()? {
            0 => Con::var(&self.sym(r)?),
            1 => Con::meta(MetaId(r.get_u32()?)),
            2 => Con::prim(self.prim(r)?),
            3 => Con::arrow(self.con_ref(r)?, self.con_ref(r)?),
            4 => Con::poly(self.sym(r)?, self.kind_ref(r)?, self.con_ref(r)?),
            5 => Con::guarded(self.con_ref(r)?, self.con_ref(r)?, self.con_ref(r)?),
            6 => Con::lam(self.sym(r)?, self.kind_ref(r)?, self.con_ref(r)?),
            7 => Con::app(self.con_ref(r)?, self.con_ref(r)?),
            8 => Con::name(r.get_str()?),
            9 => Con::record(self.con_ref(r)?),
            10 => Con::row_nil(self.kind_ref(r)?),
            11 => Con::row_one(self.con_ref(r)?, self.con_ref(r)?),
            12 => Con::row_cat(self.con_ref(r)?, self.con_ref(r)?),
            13 => Con::map_c(self.kind_ref(r)?, self.kind_ref(r)?),
            14 => Con::folder(self.kind_ref(r)?),
            15 => Con::pair(self.con_ref(r)?, self.con_ref(r)?),
            16 => Con::fst(self.con_ref(r)?),
            17 => Con::snd(self.con_ref(r)?),
            _ => return None,
        };
        self.cons.push(c);
        Some(())
    }

    fn lit(&self, r: &mut ByteReader) -> Option<Lit> {
        Some(match r.get_u8()? {
            0 => Lit::Int(r.get_i64()?),
            1 => Lit::Float(r.get_f64()?),
            2 => Lit::Str(r.get_str()?.into()),
            3 => Lit::Bool(r.get_bool()?),
            4 => Lit::Unit,
            _ => return None,
        })
    }

    fn expr_entry(&mut self, r: &mut ByteReader) -> Option<()> {
        let e = match r.get_u8()? {
            0 => Expr::var(&self.sym(r)?),
            1 => Expr::lit(self.lit(r)?),
            2 => Expr::app(self.expr_ref(r)?, self.expr_ref(r)?),
            3 => Expr::lam(self.sym(r)?, self.con_ref(r)?, self.expr_ref(r)?),
            4 => Expr::capp(self.expr_ref(r)?, self.con_ref(r)?),
            5 => Expr::clam(self.sym(r)?, self.kind_ref(r)?, self.expr_ref(r)?),
            6 => Expr::rec_nil(),
            7 => Expr::rec_one(self.con_ref(r)?, self.expr_ref(r)?),
            8 => Expr::rec_cat(self.expr_ref(r)?, self.expr_ref(r)?),
            9 => Expr::proj(self.expr_ref(r)?, self.con_ref(r)?),
            10 => Expr::cut(self.expr_ref(r)?, self.con_ref(r)?),
            11 => Expr::dlam(self.con_ref(r)?, self.con_ref(r)?, self.expr_ref(r)?),
            12 => Expr::dapp(self.expr_ref(r)?),
            13 => Expr::let_(
                self.sym(r)?,
                self.con_ref(r)?,
                self.expr_ref(r)?,
                self.expr_ref(r)?,
            ),
            14 => Expr::if_(self.expr_ref(r)?, self.expr_ref(r)?, self.expr_ref(r)?),
            _ => return None,
        };
        self.exprs.push(e);
        Some(())
    }

    fn opt_con(&self, r: &mut ByteReader) -> Option<Option<RCon>> {
        if r.get_bool()? {
            Some(Some(self.con_ref(r)?))
        } else {
            Some(None)
        }
    }

    fn outcome(&mut self, r: &mut ByteReader) -> Option<Outcome> {
        let decl = if r.get_bool()? {
            Some(match r.get_u8()? {
                0 => {
                    let name = r.get_str()?;
                    let sym = self.sym(r)?;
                    let kind = self.kind_ref(r)?;
                    let def = self.opt_con(r)?;
                    ElabDecl::Con { name, sym, kind, def }
                }
                1 => {
                    let name = r.get_str()?;
                    let sym = self.sym(r)?;
                    let ty = self.con_ref(r)?;
                    let body = if r.get_bool()? {
                        Some(self.expr_ref(r)?)
                    } else {
                        None
                    };
                    ElabDecl::Val { name, sym, ty, body }
                }
                _ => return None,
            })
        } else {
            None
        };
        let n = r.get_u32()?;
        // Sanity: each extra binding needs at least a few bytes; a corrupt
        // count must not drive a huge loop.
        if n as usize > r.remaining() {
            return None;
        }
        let mut extra_cons = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let sym = self.sym(r)?;
            let kind = self.kind_ref(r)?;
            let def = self.opt_con(r)?;
            extra_cons.push(ConBind { sym, kind, def });
        }
        Some(Outcome { decl, extra_cons })
    }

    /// Reads one framed node table: entry count, then a length-prefixed
    /// body that must contain exactly `count` entries.
    fn read_table(
        &mut self,
        r: &mut ByteReader,
        entry: fn(&mut Dec<'a>, &mut ByteReader) -> Option<()>,
    ) -> Option<()> {
        let count = r.get_u32()?;
        let body = r.get_bytes()?;
        // Every entry is at least one tag byte, so a corrupt count can
        // never drive a loop past the framed body.
        if count as usize > body.len() {
            return None;
        }
        let mut tr = ByteReader::new(body);
        for _ in 0..count {
            entry(self, &mut tr)?;
        }
        if !tr.is_empty() {
            return None; // trailing garbage inside the table
        }
        Some(())
    }
}

// ---------------- cache-entry payloads ----------------

/// A diagnostic in declaration-relative form: the primary span is stored
/// as a line delta from the declaration's own span, so the replayed
/// diagnostic lands correctly after unrelated edits shift the
/// declaration vertically. (A purely horizontal move of the declaration
/// within its line is not compensated — but such a move changes the
/// declaration's printed form only if its text changed, which makes it
/// red anyway.) Notes carry no spans, so they replay verbatim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelDiag {
    pub dline: i64,
    pub col: u32,
    pub code: String,
    pub message: String,
    pub notes: Vec<String>,
}

/// Encodes one cache entry: the linked outcome plus its (optional)
/// declaration-relative diagnostic. The flat tables impose no depth
/// limit, so every outcome encodes; the `Option` return survives for
/// API stability (the `Rc`-era codec refused terms past its depth cap).
pub fn encode_entry(
    outcome: &Outcome,
    diag: Option<&RelDiag>,
    table: &LinkTable,
) -> Option<Vec<u8>> {
    let mut enc = Enc::new(table);
    enc.outcome(outcome);
    match diag {
        Some(d) => {
            enc.dw.put_bool(true);
            enc.dw.put_i64(d.dline);
            enc.dw.put_u32(d.col);
            enc.dw.put_str(&d.code);
            enc.dw.put_str(&d.message);
            enc.dw.put_u32(d.notes.len() as u32);
            for n in &d.notes {
                enc.dw.put_str(n);
            }
        }
        None => enc.dw.put_bool(false),
    }
    let mut w = ByteWriter::new();
    w.put_u32(enc.kcount);
    w.put_bytes(&enc.kw.into_bytes());
    w.put_u32(enc.ccount);
    w.put_bytes(&enc.cw.into_bytes());
    w.put_u32(enc.ecount);
    w.put_bytes(&enc.ew.into_bytes());
    w.put_bytes(&enc.dw.into_bytes());
    Some(w.into_bytes())
}

/// Decodes a cache entry against the current process's resolve table.
/// `None` means the payload is corrupt or references a dependency the
/// table does not know — either way the declaration must recompute.
pub fn decode_entry(bytes: &[u8], table: &ResolveTable) -> Option<(Outcome, Option<RelDiag>)> {
    let mut r = ByteReader::new(bytes);
    let mut dec = Dec {
        table,
        locals: HashMap::new(),
        kinds: Vec::new(),
        cons: Vec::new(),
        exprs: Vec::new(),
    };
    dec.read_table(&mut r, Dec::kind_entry)?;
    dec.read_table(&mut r, Dec::con_entry)?;
    dec.read_table(&mut r, Dec::expr_entry)?;
    let body = r.get_bytes()?;
    if !r.is_empty() {
        return None; // trailing garbage
    }
    let mut dr = ByteReader::new(body);
    let outcome = dec.outcome(&mut dr)?;
    let diag = if dr.get_bool()? {
        let dline = dr.get_i64()?;
        let col = dr.get_u32()?;
        let code = dr.get_str()?;
        let message = dr.get_str()?;
        let n = dr.get_u32()?;
        if n as usize > dr.remaining() {
            return None;
        }
        let mut notes = Vec::with_capacity(n as usize);
        for _ in 0..n {
            notes.push(dr.get_str()?);
        }
        Some(RelDiag {
            dline,
            col,
            code,
            message,
            notes,
        })
    } else {
        None
    };
    if !dr.is_empty() {
        return None; // trailing garbage
    }
    Some((outcome, diag))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_outcome(own: Sym, base_int: Sym, dep: Sym) -> Outcome {
        // val own : base_int -> dep  (a type referencing one base and one
        // dependency symbol), with one extra local con binding.
        let local = Sym::fresh("t");
        Outcome {
            decl: Some(ElabDecl::Val {
                name: own.name().to_string(),
                sym: own,
                ty: Con::arrow(Con::var(&base_int), Con::var(&dep)),
                body: Some(Expr::lam(
                    Sym::fresh("x"),
                    Con::var(&base_int),
                    Expr::var(&local),
                )),
            }),
            extra_cons: vec![ConBind {
                sym: local,
                kind: Kind::Type,
                def: Some(Con::int()),
            }],
        }
    }

    fn con_decl_outcome(sym: Sym) -> Outcome {
        Outcome {
            decl: Some(ElabDecl::Con {
                name: sym.name().to_string(),
                sym,
                kind: Kind::Type,
                def: None,
            }),
            extra_cons: vec![],
        }
    }

    #[test]
    fn entry_round_trips_with_relinked_symbols() {
        let base_con = Sym::fresh("int_t");
        let base_val = Sym::fresh("plus");
        let dep_sym = Sym::fresh("helper");
        let own = Sym::fresh("f");
        let dep_fp = 0xfeed_beef_u64;

        // Store side: dep contributes its decl sym under dep_fp.
        let mut ltab = LinkTable::new(
            std::slice::from_ref(&base_con),
            std::slice::from_ref(&base_val),
        );
        ltab.add_decl(dep_fp, &con_decl_outcome(dep_sym));
        let outcome = sample_outcome(own, base_con, dep_sym);
        let diag = RelDiag {
            dline: 2,
            col: 5,
            code: "E0400".to_string(),
            message: "mismatch".to_string(),
            notes: vec!["note a".to_string()],
        };
        let bytes = encode_entry(&outcome, Some(&diag), &ltab).expect("encodes");

        // Load side in a "new process": different base sym ids, same
        // enumeration order.
        let new_base_con = Sym::fresh("int_t");
        let new_base_val = Sym::fresh("plus");
        let new_dep = Sym::fresh("helper");
        let mut rtab = ResolveTable::new(vec![new_base_con], vec![new_base_val]);
        rtab.add_decl(dep_fp, &con_decl_outcome(new_dep));
        let (back, rdiag) = decode_entry(&bytes, &rtab).expect("decodes");
        assert_eq!(rdiag, Some(diag));
        let Some(ElabDecl::Val { sym, ty, body, .. }) = &back.decl else {
            panic!("expected val decl");
        };
        // The decl's own sym was minted fresh (local)...
        assert_ne!(sym.id(), own.id());
        assert_eq!(sym.name(), "f");
        // ...base and dep references resolve to the *new* process's syms...
        let Con::Arrow(a, b) = &**ty else { panic!("arrow") };
        assert_eq!(*a, Con::var(&new_base_con));
        assert_eq!(*b, Con::var(&new_dep));
        // ...and the body's reference to the extra local con shares the
        // freshly minted sym recorded in extra_cons.
        assert_eq!(back.extra_cons.len(), 1);
        let Some(body) = body else { panic!("has body") };
        let Expr::Lam(_, lam_ty, lam_body) = &**body else {
            panic!("lam body")
        };
        assert_eq!(*lam_ty, Con::var(&new_base_con));
        assert_eq!(*lam_body, Expr::var(&back.extra_cons[0].sym));
    }

    #[test]
    fn unknown_dependency_reference_fails_decode() {
        let own = Sym::fresh("g");
        let dep = Sym::fresh("missing");
        let mut ltab = LinkTable::new(&[], &[]);
        ltab.add_decl(7, &con_decl_outcome(dep));
        let outcome = Outcome {
            decl: Some(ElabDecl::Val {
                name: own.name().to_string(),
                sym: own,
                ty: Con::var(&dep),
                body: None,
            }),
            extra_cons: vec![],
        };
        let bytes = encode_entry(&outcome, None, &ltab).expect("encodes");
        // A resolve table that never saw dependency 7 must reject.
        let rtab = ResolveTable::new(vec![], vec![]);
        assert!(decode_entry(&bytes, &rtab).is_none());
    }

    #[test]
    fn sharing_survives_the_round_trip() {
        // `int -> int` appears twice in the type; the arena deduplicates
        // it, so the codec must encode the shared node once and decode
        // back to the same handle.
        let own = Sym::fresh("twice");
        let ii = Con::arrow(Con::int(), Con::int());
        let outcome = Outcome {
            decl: Some(ElabDecl::Val {
                name: "twice".to_string(),
                sym: own,
                ty: Con::arrow(ii, ii),
                body: None,
            }),
            extra_cons: vec![],
        };
        let ltab = LinkTable::new(&[], &[]);
        let bytes = encode_entry(&outcome, None, &ltab).expect("encodes");
        let rtab = ResolveTable::new(vec![], vec![]);
        let (back, _) = decode_entry(&bytes, &rtab).expect("decodes");
        let Some(ElabDecl::Val { ty, .. }) = &back.decl else {
            panic!("val");
        };
        let Con::Arrow(a, b) = &**ty else { panic!("arrow") };
        assert_eq!(a, b, "shared subterm decodes to one handle");
        assert_eq!(*a, ii);
    }

    #[test]
    fn corrupt_payloads_are_rejected_not_panicking() {
        let own = Sym::fresh("h");
        let ltab = LinkTable::new(&[], &[]);
        let outcome = Outcome {
            decl: Some(ElabDecl::Val {
                name: own.name().to_string(),
                sym: own,
                ty: Con::int(),
                body: Some(Expr::lit(Lit::Int(3))),
            }),
            extra_cons: vec![],
        };
        let bytes = encode_entry(&outcome, None, &ltab).expect("encodes");
        let rtab = ResolveTable::new(vec![], vec![]);
        assert!(decode_entry(&bytes, &rtab).is_some(), "clean decodes");
        // Truncations at every length.
        for cut in 0..bytes.len() {
            let _ = decode_entry(&bytes[..cut], &rtab);
        }
        // Single-byte corruption at every position either decodes to
        // *something* or is rejected; it must never panic.
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let _ = decode_entry(&bad, &rtab);
        }
        // Trailing garbage is rejected outright.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_entry(&padded, &rtab).is_none());
    }

    #[test]
    fn deep_terms_encode_without_recursion() {
        // The Rc-era codec capped nesting at MAX_LINK_DEPTH = 200 and
        // refused to cache anything deeper. The flat table has no such
        // limit: a 5,000-deep term is 5,000 rows, and both codec
        // directions are loops, so neither overflows the stack.
        let mut ty = Con::int();
        for _ in 0..5_000 {
            ty = Con::record(ty);
        }
        let own = Sym::fresh("deep");
        let outcome = Outcome {
            decl: Some(ElabDecl::Val {
                name: "deep".to_string(),
                sym: own,
                ty,
                body: None,
            }),
            extra_cons: vec![],
        };
        let ltab = LinkTable::new(&[], &[]);
        let bytes = encode_entry(&outcome, None, &ltab).expect("deep terms encode");
        let rtab = ResolveTable::new(vec![], vec![]);
        let (back, _) = decode_entry(&bytes, &rtab).expect("deep terms decode");
        let Some(ElabDecl::Val { ty: back_ty, .. }) = &back.decl else {
            panic!("val");
        };
        let mut depth = 0u32;
        let mut cur = *back_ty;
        while let Con::Record(inner) = &*cur {
            depth += 1;
            cur = *inner;
        }
        assert_eq!(depth, 5_000);
        assert_eq!(cur, Con::int());
    }
}
