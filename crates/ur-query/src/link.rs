//! Symbol linking: process-independent encoding of elaboration outcomes.
//!
//! A cached outcome ([`ur_infer::POutcome`]) is full of [`Sym`] ids, and
//! sym ids come from a process-global counter — an id persisted by one
//! `urc` run aliases a completely unrelated symbol in the next. Before
//! an outcome can live in the on-disk cache (or even in the in-memory
//! cache across rebuilds, where the base environment is re-seeded), every
//! sym occurrence must be rewritten into a *linked* form ([`LSym`]) that
//! names symbols by role rather than by id:
//!
//! * [`LSym::BaseCon`]/[`LSym::BaseVal`] — the *ord*-th constructor/value
//!   binding of the base (post-prelude) environment, enumerated in sym-id
//!   order. Id order is creation order, so the enumeration is identical
//!   in every process that elaborated the same prelude (the cache's
//!   environment fingerprint guarantees exactly that).
//! * [`LSym::DeclOf`] — the declaration symbol of the dependency whose
//!   input fingerprint is `fp`.
//! * [`LSym::ExtraOf`] — the *ord*-th extra `con` binding (a `let`-local
//!   constructor that escaped into the global environment) of the
//!   dependency with input fingerprint `fp`.
//! * [`LSym::Local`] — a symbol minted during this declaration's own
//!   elaboration (its own decl sym, binders, escaped locals). Numbered by
//!   first appearance; decoding mints a fresh sym per number, which is
//!   exactly alpha-renaming and therefore invisible to every downstream
//!   consumer (sym equality is id-based and ids are never compared across
//!   declarations except through the environment, which the decoder
//!   rebuilds consistently).
//!
//! Soundness of the `Local` fallback: a free sym in an outcome can only
//! refer to something in the environment the declaration elaborated
//! against — the base environment plus its dependency closure's
//! contributions — and all of those are in the link table. Anything not
//! in the table was minted during the declaration's own elaboration, so
//! it is local by construction.
//!
//! Decoding is the mirror image and is total: any reference the
//! [`ResolveTable`] cannot satisfy makes the whole entry undecodable
//! (`None`), and the engine treats the declaration as red.

use std::collections::HashMap;
use ur_core::codec::{ByteReader, ByteWriter};
use ur_core::con::PrimType;
use ur_core::sym::Sym;
use ur_core::transfer::{PCon, PConBind, PExpr, PKind, PLit, PSym};
use ur_infer::{PElabDecl, POutcome};

/// Maximum nesting depth the codec will follow, on both directions.
/// Mirrors the parser's `MAX_PARSE_DEPTH`: real elaborated terms track
/// surface nesting closely, so anything deeper is either corrupt input
/// (decode: reject, the declaration recomputes) or a pathological term
/// not worth caching (encode: the entry is skipped). The cap keeps the
/// guarded recursion inside a default 8 MiB thread stack even with
/// debug-build frame sizes.
const MAX_LINK_DEPTH: u32 = 200;

/// A linked (process-independent) symbol reference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LSym {
    /// Minted during the owning declaration's elaboration; `ord` numbers
    /// locals by first appearance in the encoded payload.
    Local(u32),
    /// The `ord`-th constructor binding of the base environment (sym-id
    /// order).
    BaseCon(u32),
    /// The `ord`-th value binding of the base environment (sym-id order).
    BaseVal(u32),
    /// The declaration symbol of the dependency with input fingerprint
    /// `fp`.
    DeclOf(u64),
    /// The `ord`-th extra constructor binding of the dependency with
    /// input fingerprint `fp`.
    ExtraOf(u64, u32),
}

/// Store-direction context: sym id → linked reference, for everything
/// visible to a declaration from outside (base bindings and dependency
/// contributions). Ids absent from the table encode as [`LSym::Local`].
#[derive(Debug, Default)]
pub struct LinkTable {
    map: HashMap<u32, LSym>,
}

impl LinkTable {
    /// Builds the base layer from the base environment's bindings,
    /// pre-sorted by sym id (see [`ResolveTable::new`] for the mirror).
    pub fn new(base_cons: &[PSym], base_vals: &[PSym]) -> LinkTable {
        let mut map = HashMap::new();
        for (ord, s) in base_cons.iter().enumerate() {
            map.insert(s.id, LSym::BaseCon(ord as u32));
        }
        for (ord, s) in base_vals.iter().enumerate() {
            map.insert(s.id, LSym::BaseVal(ord as u32));
        }
        LinkTable { map }
    }

    /// Records one processed declaration's contributions so later
    /// declarations can reference them. Call in source order, *after*
    /// encoding the declaration itself (its own sym must encode as
    /// local, not as a reference to itself).
    pub fn add_decl(&mut self, fp: u64, outcome: &POutcome) {
        if let Some(d) = &outcome.decl {
            let sym = match d {
                PElabDecl::Con { sym, .. } | PElabDecl::Val { sym, .. } => sym,
            };
            self.map.insert(sym.id, LSym::DeclOf(fp));
        }
        for (ord, b) in outcome.extra_cons.iter().enumerate() {
            self.map.insert(b.sym.id, LSym::ExtraOf(fp, ord as u32));
        }
    }
}

/// Load-direction context: the inverse of [`LinkTable`], mapping linked
/// references back to live symbols of the current process.
#[derive(Debug, Default)]
pub struct ResolveTable {
    base_cons: Vec<PSym>,
    base_vals: Vec<PSym>,
    decls: HashMap<u64, (Option<PSym>, Vec<PSym>)>,
}

impl ResolveTable {
    /// Builds the base layer; the slices must enumerate the same
    /// bindings in the same (sym-id) order as the [`LinkTable`] that
    /// encoded the entries being resolved.
    pub fn new(base_cons: Vec<PSym>, base_vals: Vec<PSym>) -> ResolveTable {
        ResolveTable {
            base_cons,
            base_vals,
            decls: HashMap::new(),
        }
    }

    /// Records a green declaration's resolved contributions. Call in
    /// source order as seeds are accepted; red declarations contribute
    /// nothing (no green declaration can depend on them).
    pub fn add_decl(&mut self, fp: u64, outcome: &POutcome) {
        let sym = outcome.decl.as_ref().map(|d| match d {
            PElabDecl::Con { sym, .. } | PElabDecl::Val { sym, .. } => sym.clone(),
        });
        let extra = outcome.extra_cons.iter().map(|b| b.sym.clone()).collect();
        self.decls.insert(fp, (sym, extra));
    }

    fn resolve(&self, l: &LSym) -> Option<PSym> {
        match l {
            LSym::Local(_) => None, // handled by the decoder's mint table
            LSym::BaseCon(ord) => self.base_cons.get(*ord as usize).cloned(),
            LSym::BaseVal(ord) => self.base_vals.get(*ord as usize).cloned(),
            LSym::DeclOf(fp) => self.decls.get(fp).and_then(|(s, _)| s.clone()),
            LSym::ExtraOf(fp, ord) => self
                .decls
                .get(fp)
                .and_then(|(_, extra)| extra.get(*ord as usize).cloned()),
        }
    }
}

// ---------------- encoder ----------------

struct Enc<'a> {
    w: ByteWriter,
    table: &'a LinkTable,
    /// Sym id → local ordinal, assigned by first appearance.
    locals: HashMap<u32, u32>,
    depth: u32,
    /// Cleared when the term exceeds [`MAX_LINK_DEPTH`]; the entry is
    /// then discarded instead of cached.
    ok: bool,
}

impl<'a> Enc<'a> {
    fn enter(&mut self) -> bool {
        self.depth += 1;
        if self.depth > MAX_LINK_DEPTH {
            self.ok = false;
        }
        self.ok
    }

    fn leave(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    fn sym(&mut self, s: &PSym) {
        match self.table.map.get(&s.id) {
            Some(LSym::BaseCon(ord)) => {
                self.w.put_u8(1);
                self.w.put_u32(*ord);
            }
            Some(LSym::BaseVal(ord)) => {
                self.w.put_u8(2);
                self.w.put_u32(*ord);
            }
            Some(LSym::DeclOf(fp)) => {
                self.w.put_u8(3);
                self.w.put_u64(*fp);
            }
            Some(LSym::ExtraOf(fp, ord)) => {
                self.w.put_u8(4);
                self.w.put_u64(*fp);
                self.w.put_u32(*ord);
            }
            Some(LSym::Local(_)) | None => {
                let next = self.locals.len() as u32;
                let ord = *self.locals.entry(s.id).or_insert(next);
                self.w.put_u8(0);
                self.w.put_u32(ord);
                self.w.put_str(&s.name);
            }
        }
    }

    fn kind(&mut self, k: &PKind) {
        if !self.enter() {
            return;
        }
        match k {
            PKind::Type => self.w.put_u8(0),
            PKind::Name => self.w.put_u8(1),
            PKind::Arrow(a, b) => {
                self.w.put_u8(2);
                self.kind(a);
                self.kind(b);
            }
            PKind::Row(k) => {
                self.w.put_u8(3);
                self.kind(k);
            }
            PKind::Pair(a, b) => {
                self.w.put_u8(4);
                self.kind(a);
                self.kind(b);
            }
            PKind::Meta(n) => {
                self.w.put_u8(5);
                self.w.put_u32(*n);
            }
        }
        self.leave();
    }

    fn prim(&mut self, p: PrimType) {
        self.w.put_u8(match p {
            PrimType::Int => 0,
            PrimType::Float => 1,
            PrimType::String => 2,
            PrimType::Bool => 3,
            PrimType::Unit => 4,
        });
    }

    fn con(&mut self, c: &PCon) {
        if !self.enter() {
            return;
        }
        match c {
            PCon::Var(s) => {
                self.w.put_u8(0);
                self.sym(s);
            }
            PCon::Meta(n) => {
                self.w.put_u8(1);
                self.w.put_u32(*n);
            }
            PCon::Prim(p) => {
                self.w.put_u8(2);
                self.prim(*p);
            }
            PCon::Arrow(a, b) => {
                self.w.put_u8(3);
                self.con(a);
                self.con(b);
            }
            PCon::Poly(s, k, t) => {
                self.w.put_u8(4);
                self.sym(s);
                self.kind(k);
                self.con(t);
            }
            PCon::Guarded(c1, c2, t) => {
                self.w.put_u8(5);
                self.con(c1);
                self.con(c2);
                self.con(t);
            }
            PCon::Lam(s, k, b) => {
                self.w.put_u8(6);
                self.sym(s);
                self.kind(k);
                self.con(b);
            }
            PCon::App(f, a) => {
                self.w.put_u8(7);
                self.con(f);
                self.con(a);
            }
            PCon::Name(n) => {
                self.w.put_u8(8);
                self.w.put_str(n);
            }
            PCon::Record(r) => {
                self.w.put_u8(9);
                self.con(r);
            }
            PCon::RowNil(k) => {
                self.w.put_u8(10);
                self.kind(k);
            }
            PCon::RowOne(n, v) => {
                self.w.put_u8(11);
                self.con(n);
                self.con(v);
            }
            PCon::RowCat(a, b) => {
                self.w.put_u8(12);
                self.con(a);
                self.con(b);
            }
            PCon::Map(k1, k2) => {
                self.w.put_u8(13);
                self.kind(k1);
                self.kind(k2);
            }
            PCon::Folder(k) => {
                self.w.put_u8(14);
                self.kind(k);
            }
            PCon::Pair(a, b) => {
                self.w.put_u8(15);
                self.con(a);
                self.con(b);
            }
            PCon::Fst(c) => {
                self.w.put_u8(16);
                self.con(c);
            }
            PCon::Snd(c) => {
                self.w.put_u8(17);
                self.con(c);
            }
        }
        self.leave();
    }

    fn lit(&mut self, l: &PLit) {
        match l {
            PLit::Int(n) => {
                self.w.put_u8(0);
                self.w.put_i64(*n);
            }
            PLit::Float(x) => {
                self.w.put_u8(1);
                self.w.put_f64(*x);
            }
            PLit::Str(s) => {
                self.w.put_u8(2);
                self.w.put_str(s);
            }
            PLit::Bool(b) => {
                self.w.put_u8(3);
                self.w.put_bool(*b);
            }
            PLit::Unit => self.w.put_u8(4),
        }
    }

    fn expr(&mut self, e: &PExpr) {
        if !self.enter() {
            return;
        }
        match e {
            PExpr::Var(s) => {
                self.w.put_u8(0);
                self.sym(s);
            }
            PExpr::Lit(l) => {
                self.w.put_u8(1);
                self.lit(l);
            }
            PExpr::App(f, a) => {
                self.w.put_u8(2);
                self.expr(f);
                self.expr(a);
            }
            PExpr::Lam(x, t, b) => {
                self.w.put_u8(3);
                self.sym(x);
                self.con(t);
                self.expr(b);
            }
            PExpr::CApp(e, c) => {
                self.w.put_u8(4);
                self.expr(e);
                self.con(c);
            }
            PExpr::CLam(a, k, b) => {
                self.w.put_u8(5);
                self.sym(a);
                self.kind(k);
                self.expr(b);
            }
            PExpr::RecNil => self.w.put_u8(6),
            PExpr::RecOne(n, e) => {
                self.w.put_u8(7);
                self.con(n);
                self.expr(e);
            }
            PExpr::RecCat(a, b) => {
                self.w.put_u8(8);
                self.expr(a);
                self.expr(b);
            }
            PExpr::Proj(e, c) => {
                self.w.put_u8(9);
                self.expr(e);
                self.con(c);
            }
            PExpr::Cut(e, c) => {
                self.w.put_u8(10);
                self.expr(e);
                self.con(c);
            }
            PExpr::DLam(c1, c2, b) => {
                self.w.put_u8(11);
                self.con(c1);
                self.con(c2);
                self.expr(b);
            }
            PExpr::DApp(e) => {
                self.w.put_u8(12);
                self.expr(e);
            }
            PExpr::Let(x, t, bound, body) => {
                self.w.put_u8(13);
                self.sym(x);
                self.con(t);
                self.expr(bound);
                self.expr(body);
            }
            PExpr::If(c, t, e) => {
                self.w.put_u8(14);
                self.expr(c);
                self.expr(t);
                self.expr(e);
            }
        }
        self.leave();
    }

    fn opt_con(&mut self, c: &Option<PCon>) {
        match c {
            Some(c) => {
                self.w.put_bool(true);
                self.con(c);
            }
            None => self.w.put_bool(false),
        }
    }

    fn decl(&mut self, d: &PElabDecl) {
        match d {
            PElabDecl::Con { name, sym, kind, def } => {
                self.w.put_u8(0);
                self.w.put_str(name);
                self.sym(sym);
                self.kind(kind);
                self.opt_con(def);
            }
            PElabDecl::Val { name, sym, ty, body } => {
                self.w.put_u8(1);
                self.w.put_str(name);
                self.sym(sym);
                self.con(ty);
                match body {
                    Some(e) => {
                        self.w.put_bool(true);
                        self.expr(e);
                    }
                    None => self.w.put_bool(false),
                }
            }
        }
    }

    fn outcome(&mut self, o: &POutcome) {
        match &o.decl {
            Some(d) => {
                self.w.put_bool(true);
                self.decl(d);
            }
            None => self.w.put_bool(false),
        }
        self.w.put_u32(o.extra_cons.len() as u32);
        for b in &o.extra_cons {
            self.sym(&b.sym);
            self.kind(&b.kind);
            self.opt_con(&b.def);
        }
    }
}

// ---------------- decoder ----------------

struct Dec<'a, 'b> {
    r: ByteReader<'b>,
    table: &'a ResolveTable,
    /// Local ordinal → freshly minted symbol (one mint per ordinal).
    locals: HashMap<u32, PSym>,
    depth: u32,
}

impl<'a, 'b> Dec<'a, 'b> {
    fn enter(&mut self) -> Option<()> {
        self.depth += 1;
        (self.depth <= MAX_LINK_DEPTH).then_some(())
    }

    fn leave(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    fn sym(&mut self) -> Option<PSym> {
        match self.r.get_u8()? {
            0 => {
                let ord = self.r.get_u32()?;
                let name = self.r.get_str()?;
                Some(
                    self.locals
                        .entry(ord)
                        .or_insert_with(|| {
                            let s = Sym::fresh(name.as_str());
                            PSym { name, id: s.id() }
                        })
                        .clone(),
                )
            }
            1 => {
                let ord = self.r.get_u32()?;
                self.table.resolve(&LSym::BaseCon(ord))
            }
            2 => {
                let ord = self.r.get_u32()?;
                self.table.resolve(&LSym::BaseVal(ord))
            }
            3 => {
                let fp = self.r.get_u64()?;
                self.table.resolve(&LSym::DeclOf(fp))
            }
            4 => {
                let fp = self.r.get_u64()?;
                let ord = self.r.get_u32()?;
                self.table.resolve(&LSym::ExtraOf(fp, ord))
            }
            _ => None,
        }
    }

    fn kind(&mut self) -> Option<PKind> {
        self.enter()?;
        let k = match self.r.get_u8()? {
            0 => PKind::Type,
            1 => PKind::Name,
            2 => PKind::Arrow(Box::new(self.kind()?), Box::new(self.kind()?)),
            3 => PKind::Row(Box::new(self.kind()?)),
            4 => PKind::Pair(Box::new(self.kind()?), Box::new(self.kind()?)),
            5 => PKind::Meta(self.r.get_u32()?),
            _ => return None,
        };
        self.leave();
        Some(k)
    }

    fn prim(&mut self) -> Option<PrimType> {
        Some(match self.r.get_u8()? {
            0 => PrimType::Int,
            1 => PrimType::Float,
            2 => PrimType::String,
            3 => PrimType::Bool,
            4 => PrimType::Unit,
            _ => return None,
        })
    }

    fn con(&mut self) -> Option<PCon> {
        self.enter()?;
        let c = match self.r.get_u8()? {
            0 => PCon::Var(self.sym()?),
            1 => PCon::Meta(self.r.get_u32()?),
            2 => PCon::Prim(self.prim()?),
            3 => PCon::Arrow(Box::new(self.con()?), Box::new(self.con()?)),
            4 => PCon::Poly(self.sym()?, self.kind()?, Box::new(self.con()?)),
            5 => PCon::Guarded(
                Box::new(self.con()?),
                Box::new(self.con()?),
                Box::new(self.con()?),
            ),
            6 => PCon::Lam(self.sym()?, self.kind()?, Box::new(self.con()?)),
            7 => PCon::App(Box::new(self.con()?), Box::new(self.con()?)),
            8 => PCon::Name(self.r.get_str()?),
            9 => PCon::Record(Box::new(self.con()?)),
            10 => PCon::RowNil(self.kind()?),
            11 => PCon::RowOne(Box::new(self.con()?), Box::new(self.con()?)),
            12 => PCon::RowCat(Box::new(self.con()?), Box::new(self.con()?)),
            13 => PCon::Map(self.kind()?, self.kind()?),
            14 => PCon::Folder(self.kind()?),
            15 => PCon::Pair(Box::new(self.con()?), Box::new(self.con()?)),
            16 => PCon::Fst(Box::new(self.con()?)),
            17 => PCon::Snd(Box::new(self.con()?)),
            _ => return None,
        };
        self.leave();
        Some(c)
    }

    fn lit(&mut self) -> Option<PLit> {
        Some(match self.r.get_u8()? {
            0 => PLit::Int(self.r.get_i64()?),
            1 => PLit::Float(self.r.get_f64()?),
            2 => PLit::Str(self.r.get_str()?),
            3 => PLit::Bool(self.r.get_bool()?),
            4 => PLit::Unit,
            _ => return None,
        })
    }

    fn expr(&mut self) -> Option<PExpr> {
        self.enter()?;
        let e = match self.r.get_u8()? {
            0 => PExpr::Var(self.sym()?),
            1 => PExpr::Lit(self.lit()?),
            2 => PExpr::App(Box::new(self.expr()?), Box::new(self.expr()?)),
            3 => PExpr::Lam(self.sym()?, self.con()?, Box::new(self.expr()?)),
            4 => PExpr::CApp(Box::new(self.expr()?), self.con()?),
            5 => PExpr::CLam(self.sym()?, self.kind()?, Box::new(self.expr()?)),
            6 => PExpr::RecNil,
            7 => PExpr::RecOne(self.con()?, Box::new(self.expr()?)),
            8 => PExpr::RecCat(Box::new(self.expr()?), Box::new(self.expr()?)),
            9 => PExpr::Proj(Box::new(self.expr()?), self.con()?),
            10 => PExpr::Cut(Box::new(self.expr()?), self.con()?),
            11 => PExpr::DLam(self.con()?, self.con()?, Box::new(self.expr()?)),
            12 => PExpr::DApp(Box::new(self.expr()?)),
            13 => PExpr::Let(
                self.sym()?,
                self.con()?,
                Box::new(self.expr()?),
                Box::new(self.expr()?),
            ),
            14 => PExpr::If(
                Box::new(self.expr()?),
                Box::new(self.expr()?),
                Box::new(self.expr()?),
            ),
            _ => return None,
        };
        self.leave();
        Some(e)
    }

    fn opt_con(&mut self) -> Option<Option<PCon>> {
        if self.r.get_bool()? {
            Some(Some(self.con()?))
        } else {
            Some(None)
        }
    }

    fn decl(&mut self) -> Option<PElabDecl> {
        match self.r.get_u8()? {
            0 => {
                let name = self.r.get_str()?;
                let sym = self.sym()?;
                let kind = self.kind()?;
                let def = self.opt_con()?;
                Some(PElabDecl::Con { name, sym, kind, def })
            }
            1 => {
                let name = self.r.get_str()?;
                let sym = self.sym()?;
                let ty = self.con()?;
                let body = if self.r.get_bool()? {
                    Some(self.expr()?)
                } else {
                    None
                };
                Some(PElabDecl::Val { name, sym, ty, body })
            }
            _ => None,
        }
    }

    fn outcome(&mut self) -> Option<POutcome> {
        let decl = if self.r.get_bool()? {
            Some(self.decl()?)
        } else {
            None
        };
        let n = self.r.get_u32()?;
        // Sanity: each extra binding needs at least a few bytes; a corrupt
        // count must not drive a huge loop.
        if n as usize > self.r.remaining() {
            return None;
        }
        let mut extra_cons = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let sym = self.sym()?;
            let kind = self.kind()?;
            let def = self.opt_con()?;
            extra_cons.push(PConBind { sym, kind, def });
        }
        Some(POutcome { decl, extra_cons })
    }
}

// ---------------- cache-entry payloads ----------------

/// A diagnostic in declaration-relative form: the primary span is stored
/// as a line delta from the declaration's own span, so the replayed
/// diagnostic lands correctly after unrelated edits shift the
/// declaration vertically. (A purely horizontal move of the declaration
/// within its line is not compensated — but such a move changes the
/// declaration's printed form only if its text changed, which makes it
/// red anyway.) Notes carry no spans, so they replay verbatim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelDiag {
    pub dline: i64,
    pub col: u32,
    pub code: String,
    pub message: String,
    pub notes: Vec<String>,
}

/// Encodes one cache entry: the linked outcome plus its (optional)
/// declaration-relative diagnostic. `None` when the outcome nests
/// deeper than [`MAX_LINK_DEPTH`] — such a declaration is simply never
/// cached.
pub fn encode_entry(
    outcome: &POutcome,
    diag: Option<&RelDiag>,
    table: &LinkTable,
) -> Option<Vec<u8>> {
    let mut enc = Enc {
        w: ByteWriter::new(),
        table,
        locals: HashMap::new(),
        depth: 0,
        ok: true,
    };
    enc.outcome(outcome);
    if !enc.ok {
        return None;
    }
    match diag {
        Some(d) => {
            enc.w.put_bool(true);
            enc.w.put_i64(d.dline);
            enc.w.put_u32(d.col);
            enc.w.put_str(&d.code);
            enc.w.put_str(&d.message);
            enc.w.put_u32(d.notes.len() as u32);
            for n in &d.notes {
                enc.w.put_str(n);
            }
        }
        None => enc.w.put_bool(false),
    }
    Some(enc.w.into_bytes())
}

/// Decodes a cache entry against the current process's resolve table.
/// `None` means the payload is corrupt or references a dependency the
/// table does not know — either way the declaration must recompute.
pub fn decode_entry(bytes: &[u8], table: &ResolveTable) -> Option<(POutcome, Option<RelDiag>)> {
    let mut dec = Dec {
        r: ByteReader::new(bytes),
        table,
        locals: HashMap::new(),
        depth: 0,
    };
    let outcome = dec.outcome()?;
    let diag = if dec.r.get_bool()? {
        let dline = dec.r.get_i64()?;
        let col = dec.r.get_u32()?;
        let code = dec.r.get_str()?;
        let message = dec.r.get_str()?;
        let n = dec.r.get_u32()?;
        if n as usize > dec.r.remaining() {
            return None;
        }
        let mut notes = Vec::with_capacity(n as usize);
        for _ in 0..n {
            notes.push(dec.r.get_str()?);
        }
        Some(RelDiag {
            dline,
            col,
            code,
            message,
            notes,
        })
    } else {
        None
    };
    if !dec.r.is_empty() {
        return None; // trailing garbage
    }
    Some((outcome, diag))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn psym(name: &str) -> PSym {
        let s = Sym::fresh(name);
        PSym {
            name: name.to_string(),
            id: s.id(),
        }
    }

    fn sample_outcome(own: &PSym, base_int: &PSym, dep: &PSym) -> POutcome {
        // val own : base_int -> dep  (a type referencing one base and one
        // dependency symbol), with one extra local con binding.
        let local = psym("t");
        POutcome {
            decl: Some(PElabDecl::Val {
                name: own.name.clone(),
                sym: own.clone(),
                ty: PCon::Arrow(
                    Box::new(PCon::Var(base_int.clone())),
                    Box::new(PCon::Var(dep.clone())),
                ),
                body: Some(PExpr::Lam(
                    psym("x"),
                    PCon::Var(base_int.clone()),
                    Box::new(PExpr::Var(local.clone())),
                )),
            }),
            extra_cons: vec![PConBind {
                sym: local,
                kind: PKind::Type,
                def: Some(PCon::Prim(PrimType::Int)),
            }],
        }
    }

    #[test]
    fn entry_round_trips_with_relinked_symbols() {
        let base_con = psym("int_t");
        let base_val = psym("plus");
        let dep_sym = psym("helper");
        let own = psym("f");
        let dep_fp = 0xfeed_beef_u64;

        // Store side: dep contributes its decl sym under dep_fp.
        let mut ltab = LinkTable::new(
            std::slice::from_ref(&base_con),
            std::slice::from_ref(&base_val),
        );
        ltab.add_decl(
            dep_fp,
            &POutcome {
                decl: Some(PElabDecl::Con {
                    name: dep_sym.name.clone(),
                    sym: dep_sym.clone(),
                    kind: PKind::Type,
                    def: None,
                }),
                extra_cons: vec![],
            },
        );
        let outcome = sample_outcome(&own, &base_con, &dep_sym);
        let diag = RelDiag {
            dline: 2,
            col: 5,
            code: "E0400".to_string(),
            message: "mismatch".to_string(),
            notes: vec!["note a".to_string()],
        };
        let bytes = encode_entry(&outcome, Some(&diag), &ltab).expect("encodes");

        // Load side in a "new process": different base sym ids, same
        // enumeration order.
        let new_base_con = psym("int_t");
        let new_base_val = psym("plus");
        let new_dep = psym("helper");
        let mut rtab = ResolveTable::new(vec![new_base_con.clone()], vec![new_base_val.clone()]);
        rtab.add_decl(
            dep_fp,
            &POutcome {
                decl: Some(PElabDecl::Con {
                    name: new_dep.name.clone(),
                    sym: new_dep.clone(),
                    kind: PKind::Type,
                    def: None,
                }),
                extra_cons: vec![],
            },
        );
        let (back, rdiag) = decode_entry(&bytes, &rtab).expect("decodes");
        assert_eq!(rdiag, Some(diag));
        let Some(PElabDecl::Val { sym, ty, body, .. }) = &back.decl else {
            panic!("expected val decl");
        };
        // The decl's own sym was minted fresh (local)...
        assert_ne!(sym.id, own.id);
        assert_eq!(sym.name, "f");
        // ...base and dep references resolve to the *new* process's syms...
        let PCon::Arrow(a, b) = ty else { panic!("arrow") };
        assert_eq!(**a, PCon::Var(new_base_con.clone()));
        assert_eq!(**b, PCon::Var(new_dep));
        // ...and the body's reference to the extra local con shares the
        // freshly minted sym recorded in extra_cons.
        assert_eq!(back.extra_cons.len(), 1);
        let Some(PExpr::Lam(_, lam_ty, lam_body)) = body else {
            panic!("lam body")
        };
        assert_eq!(*lam_ty, PCon::Var(new_base_con));
        assert_eq!(**lam_body, PExpr::Var(back.extra_cons[0].sym.clone()));
    }

    #[test]
    fn unknown_dependency_reference_fails_decode() {
        let own = psym("g");
        let dep = psym("missing");
        let mut ltab = LinkTable::new(&[], &[]);
        ltab.add_decl(
            7,
            &POutcome {
                decl: Some(PElabDecl::Con {
                    name: dep.name.clone(),
                    sym: dep.clone(),
                    kind: PKind::Type,
                    def: None,
                }),
                extra_cons: vec![],
            },
        );
        let outcome = POutcome {
            decl: Some(PElabDecl::Val {
                name: own.name.clone(),
                sym: own,
                ty: PCon::Var(dep),
                body: None,
            }),
            extra_cons: vec![],
        };
        let bytes = encode_entry(&outcome, None, &ltab).expect("encodes");
        // A resolve table that never saw dependency 7 must reject.
        let rtab = ResolveTable::new(vec![], vec![]);
        assert!(decode_entry(&bytes, &rtab).is_none());
    }

    #[test]
    fn corrupt_payloads_are_rejected_not_panicking() {
        let own = psym("h");
        let ltab = LinkTable::new(&[], &[]);
        let outcome = POutcome {
            decl: Some(PElabDecl::Val {
                name: own.name.clone(),
                sym: own,
                ty: PCon::Prim(PrimType::Int),
                body: Some(PExpr::Lit(PLit::Int(3))),
            }),
            extra_cons: vec![],
        };
        let bytes = encode_entry(&outcome, None, &ltab).expect("encodes");
        let rtab = ResolveTable::new(vec![], vec![]);
        assert!(decode_entry(&bytes, &rtab).is_some(), "clean decodes");
        // Truncations at every length.
        for cut in 0..bytes.len() {
            let _ = decode_entry(&bytes[..cut], &rtab);
        }
        // Single-byte corruption at every position either decodes to
        // *something* or is rejected; it must never panic.
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            let _ = decode_entry(&bad, &rtab);
        }
        // Trailing garbage is rejected outright.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_entry(&padded, &rtab).is_none());
    }

    #[test]
    fn deep_nesting_is_bounded() {
        // A payload claiming thousands of nested Record constructors
        // trips the depth guard instead of overflowing the stack.
        let mut w = ur_core::codec::ByteWriter::new();
        w.put_bool(true); // has decl
        w.put_u8(0); // Con decl
        w.put_str("d");
        w.put_u8(0); // local sym
        w.put_u32(0);
        w.put_str("d");
        w.put_u8(0); // kind Type
        w.put_bool(true); // has def
        for _ in 0..5000 {
            w.put_u8(9); // Record(
        }
        let rtab = ResolveTable::new(vec![], vec![]);
        assert!(decode_entry(&w.into_bytes(), &rtab).is_none());
    }
}
