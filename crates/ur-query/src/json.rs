//! Minimal hand-rolled JSON support (the workspace takes no external
//! dependencies): an escaping encoder for machine-readable diagnostics
//! and a flat-object parser for the serve protocol.
//!
//! One encoder serves every consumer — `urc --emit-json`, serve-mode
//! responses, and the CI benchmark reports — so the wire format cannot
//! drift between them.

use std::collections::HashMap;
use ur_syntax::Diagnostic;

/// Escapes `s` for embedding in a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// One diagnostic as a JSON object:
/// `{"code":"E0400","line":3,"col":7,"message":"…","notes":["…"]}`.
pub fn diag_to_json(d: &Diagnostic) -> String {
    let notes: Vec<String> = d.notes.iter().map(|n| format!("\"{}\"", escape(n))).collect();
    format!(
        "{{\"code\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"notes\":[{}]}}",
        d.code.as_str(),
        d.span.line,
        d.span.col,
        escape(&d.message),
        notes.join(",")
    )
}

/// A batch of diagnostics as a JSON array.
pub fn diags_to_json(ds: &[Diagnostic]) -> String {
    let items: Vec<String> = ds.iter().map(diag_to_json).collect();
    format!("[{}]", items.join(","))
}

/// Parses one *flat* JSON object — string, integer, or boolean values
/// only, no nesting — into a string→string map (non-string scalars keep
/// their literal spelling). This is the entire grammar of serve-mode
/// requests, so a full JSON parser would be dead weight. Returns `None`
/// on anything malformed.
pub fn parse_flat_object(line: &str) -> Option<HashMap<String, String>> {
    let mut chars = line.trim().chars().peekable();
    let mut map = HashMap::new();
    if chars.next()? != '{' {
        return None;
    }
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
        skip_ws(&mut chars);
        return chars.next().is_none().then_some(map);
    }
    loop {
        skip_ws(&mut chars);
        let key = parse_string(&mut chars)?;
        skip_ws(&mut chars);
        if chars.next()? != ':' {
            return None;
        }
        skip_ws(&mut chars);
        let val = match chars.peek()? {
            '"' => parse_string(&mut chars)?,
            _ => {
                // Bare scalar: number / true / false / null.
                let mut tok = String::new();
                while let Some(&c) = chars.peek() {
                    if c == ',' || c == '}' || c.is_whitespace() {
                        break;
                    }
                    tok.push(c);
                    chars.next();
                }
                let numeric = !tok.is_empty()
                    && tok
                        .chars()
                        .all(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'));
                if !(numeric || matches!(tok.as_str(), "true" | "false" | "null")) {
                    return None;
                }
                tok
            }
        };
        map.insert(key, val);
        skip_ws(&mut chars);
        match chars.next()? {
            ',' => continue,
            '}' => break,
            _ => return None,
        }
    }
    skip_ws(&mut chars);
    chars.next().is_none().then_some(map)
}

fn skip_ws(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) {
    while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
        chars.next();
    }
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next()? != '"' {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let mut v = 0u32;
                    for _ in 0..4 {
                        v = v * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(v)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ur_syntax::{Code, Span};

    #[test]
    fn escaping_covers_quotes_backslashes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn diag_json_shape_is_stable() {
        let d = Diagnostic::new(
            Span { line: 3, col: 7 },
            Code::TypeMismatch,
            "expected \"int\"",
        )
        .with_note("hint");
        assert_eq!(
            diag_to_json(&d),
            "{\"code\":\"E0400\",\"line\":3,\"col\":7,\
             \"message\":\"expected \\\"int\\\"\",\"notes\":[\"hint\"]}"
        );
        assert_eq!(diags_to_json(&[]), "[]");
    }

    #[test]
    fn encoded_diag_parses_back_as_flat_object() {
        let d = Diagnostic::new(Span { line: 1, col: 2 }, Code::Unbound, "no \"x\"\nhere");
        let m = parse_flat_object(&diag_to_json(&d));
        // notes is an array, not flat — so full round-trip only holds
        // for a note-free diagnostic once we cut the notes field.
        assert!(m.is_none(), "nested arrays are out of the flat grammar");
        let flat = "{\"cmd\":\"edit\",\"line\":3,\"text\":\"val x = \\\"s\\\"\"}";
        let m = parse_flat_object(flat).expect("parses");
        assert_eq!(m.get("cmd").map(String::as_str), Some("edit"));
        assert_eq!(m.get("line").map(String::as_str), Some("3"));
        assert_eq!(m.get("text").map(String::as_str), Some("val x = \"s\""));
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "{",
            "}",
            "{\"a\"}",
            "{\"a\":}",
            "{\"a\":1,}",
            "{\"a\":bogus}",
            "{\"a\":\"unterminated}",
            "{\"a\":1} trailing",
            "[1,2]",
        ] {
            assert!(parse_flat_object(bad).is_none(), "accepted: {bad}");
        }
        assert_eq!(parse_flat_object("{}"), Some(Default::default()));
        assert_eq!(parse_flat_object("  { }  "), Some(Default::default()));
    }

    #[test]
    fn unicode_escapes_decode() {
        let m = parse_flat_object("{\"k\":\"\\u0041\\u00e9\"}").expect("parses");
        assert_eq!(m.get("k").map(String::as_str), Some("Aé"));
    }
}
