//! Persistent on-disk cache for linked elaboration outcomes.
//!
//! Layout: one file per query under the cache directory, named by the
//! query's input fingerprint (`{fp:016x}.urq`). Each file is
//!
//! ```text
//! magic "URQ1" | format version u32 | env fingerprint u64
//!   | payload (u64 length prefix) | integrity tag u64
//! ```
//!
//! The integrity tag is the FNV-64 hash of the payload xor a salt, so a
//! truncated or bit-flipped file is detected before the payload reaches
//! the decoder. Every check failure is a *rejection* (counted by the
//! engine in `Stats::disk_rejections`) and degrades to recomputation —
//! the cache can never make a build wrong, only cold.
//!
//! The cache directory defaults to `.ur-cache/` next to the current
//! working directory and can be redirected with the `UR_CACHE_DIR`
//! environment variable (an empty value disables the disk layer).
//! Writes go through a temporary file followed by a rename, so a crash
//! mid-write leaves either the old entry or none — never a torn one
//! that happens to carry a valid header.
//!
//! Under the `failpoints` feature the two cache sites fire here:
//! [`Site::CacheLoad`](ur_core::failpoint::Site) simulates a read of a
//! corrupt entry (the bytes are discarded and the load reports
//! `Rejected`), and `Site::CacheStore` corrupts the integrity tag of the
//! written file so a *later* load exercises the verification path.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use ur_core::codec::{ByteReader, ByteWriter};
use ur_core::fingerprint::hash_bytes;

/// File magic for cache entries.
const MAGIC: [u8; 4] = *b"URQ1";
/// Bumped whenever the entry encoding changes shape.
const FORMAT_VERSION: u32 = 1;
/// Salt mixed into the integrity tag so it cannot collide with a stored
/// payload hash used for some other purpose.
const INTEGRITY_SALT: u64 = 0x7571_6361_6368_6531; // "uqcache1"

/// Result of probing the disk cache for one query.
#[derive(Debug, PartialEq, Eq)]
pub enum LoadResult {
    /// No entry on disk (a plain cold miss).
    Miss,
    /// An entry exists but failed verification (bad magic, version or
    /// environment mismatch, torn payload, integrity failure).
    Rejected,
    /// A verified payload.
    Hit(Vec<u8>),
}

/// Resolves the cache directory: an explicit override wins, then
/// `UR_CACHE_DIR` (empty disables), then `.ur-cache` in the working
/// directory.
pub fn resolve_cache_dir(explicit: Option<PathBuf>) -> Option<PathBuf> {
    if let Some(dir) = explicit {
        return Some(dir);
    }
    match std::env::var("UR_CACHE_DIR") {
        Ok(v) if v.is_empty() => None,
        Ok(v) => Some(PathBuf::from(v)),
        Err(_) => Some(PathBuf::from(".ur-cache")),
    }
}

/// Path of the entry for input fingerprint `key`.
pub fn entry_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.urq"))
}

/// Loads and verifies the entry for `key`, if any.
pub fn load(dir: &Path, key: u64, env_fp: u64) -> LoadResult {
    let bytes = match fs::read(entry_path(dir, key)) {
        Ok(b) => b,
        Err(_) => return LoadResult::Miss,
    };
    #[cfg(feature = "failpoints")]
    if ur_core::failpoint::fire(ur_core::failpoint::Site::CacheLoad) {
        // Simulated corruption: the file was read but its contents are
        // treated as garbage.
        return LoadResult::Rejected;
    }
    let mut r = ByteReader::new(&bytes);
    let ok = (|| {
        let magic = [r.get_u8()?, r.get_u8()?, r.get_u8()?, r.get_u8()?];
        if magic != MAGIC {
            return None;
        }
        if r.get_u32()? != FORMAT_VERSION {
            return None;
        }
        if r.get_u64()? != env_fp {
            return None;
        }
        let payload = r.get_bytes()?;
        let tag = r.get_u64()?;
        if !r.is_empty() {
            return None;
        }
        if tag != hash_bytes(payload) ^ INTEGRITY_SALT {
            return None;
        }
        Some(payload)
    })();
    match ok {
        Some(payload) => LoadResult::Hit(payload.to_vec()),
        None => LoadResult::Rejected,
    }
}

/// Stores `payload` for `key`. Best-effort: I/O errors are swallowed (a
/// cache that cannot write is merely cold) and reported as `false` so
/// callers that care (tests, benches) can tell.
pub fn store(dir: &Path, key: u64, env_fp: u64, payload: &[u8]) -> bool {
    if fs::create_dir_all(dir).is_err() {
        return false;
    }
    let mut w = ByteWriter::new();
    for b in MAGIC {
        w.put_u8(b);
    }
    w.put_u32(FORMAT_VERSION);
    w.put_u64(env_fp);
    w.put_bytes(payload);
    let tag = hash_bytes(payload) ^ INTEGRITY_SALT;
    // Simulated torn write: flip the integrity tag so the next load of
    // this entry exercises the rejection path.
    #[cfg(feature = "failpoints")]
    let tag = if ur_core::failpoint::fire(ur_core::failpoint::Site::CacheStore) {
        tag ^ 1
    } else {
        tag
    };
    w.put_u64(tag);
    let bytes = w.into_bytes();
    let tmp = dir.join(format!("{key:016x}.tmp"));
    let write_ok = (|| {
        let mut f = fs::File::create(&tmp).ok()?;
        f.write_all(&bytes).ok()?;
        f.sync_all().ok()?;
        Some(())
    })()
    .is_some();
    if !write_ok {
        let _ = fs::remove_file(&tmp);
        return false;
    }
    fs::rename(&tmp, entry_path(dir, key)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "ur-query-disk-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmp_dir("rt");
        assert!(store(&dir, 42, 7, b"payload"));
        assert_eq!(load(&dir, 42, 7), LoadResult::Hit(b"payload".to_vec()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_entry_is_a_miss_not_a_rejection() {
        let dir = tmp_dir("miss");
        assert_eq!(load(&dir, 1, 0), LoadResult::Miss);
    }

    #[test]
    fn env_mismatch_rejects() {
        let dir = tmp_dir("env");
        assert!(store(&dir, 5, 100, b"x"));
        assert_eq!(load(&dir, 5, 101), LoadResult::Rejected);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_bit_flips_reject() {
        let dir = tmp_dir("corrupt");
        assert!(store(&dir, 9, 3, b"some cached outcome bytes"));
        let path = entry_path(&dir, 9);
        let clean = fs::read(&path).unwrap();
        for cut in 0..clean.len() {
            fs::write(&path, &clean[..cut]).unwrap();
            assert_eq!(load(&dir, 9, 3), LoadResult::Rejected, "cut at {cut}");
        }
        for pos in 0..clean.len() {
            let mut bad = clean.clone();
            bad[pos] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            assert_eq!(load(&dir, 9, 3), LoadResult::Rejected, "flip at {pos}");
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
