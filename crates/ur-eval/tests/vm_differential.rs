//! Differential tests: the bytecode VM against the tree-walking
//! interpreter on the core-term edge cases the compiler has to get
//! right — shadowing, capture-by-value closures, empty records, folds
//! over the empty row, and concatenation chains deep enough to smoke
//! out accidental recursion in the dispatch loop. Plus the chunk codec:
//! encode/decode round-trips and constant-pool behaviour, all through
//! the crate's public API.

use std::collections::HashMap;
use std::rc::Rc;
use ur_core::con::Con;
use ur_core::env::Env;
use ur_core::expr::{Expr, Lit, RExpr};
use ur_core::sym::Sym;
use ur_core::Cx;
use ur_eval::{
    compile, decode_chunk, encode_chunk, vm, Builtin, EvalError, EvalErrorKind, Interp, Value,
    VEnv, World,
};

/// Runs `e` on both engines with the given builtins and returns
/// (vm result, interpreter result).
fn run_both_with(
    e: &RExpr,
    builtins: &HashMap<Sym, Rc<Builtin>>,
) -> (Result<Value, EvalError>, Result<Value, EvalError>) {
    let genv = Env::new();
    let mut cx = Cx::new();
    let chunk = compile(&genv, &mut cx, e, "diff");
    let mut world = World::new();
    let mut interp = Interp::new(&mut world, &genv, builtins);
    let from_vm = vm::run(&mut interp, &chunk, &VEnv::new());
    let mut world2 = World::new();
    let mut interp2 = Interp::new(&mut world2, &genv, builtins);
    let from_tree = interp2.eval(&VEnv::new(), e);
    (from_vm, from_tree)
}

fn run_both(e: &RExpr) -> (Result<Value, EvalError>, Result<Value, EvalError>) {
    run_both_with(e, &HashMap::new())
}

/// Asserts the engines agree: same rendering on success, same error
/// kind on failure.
fn assert_agree(e: &RExpr) -> Result<Value, EvalError> {
    let (from_vm, from_tree) = run_both(e);
    match (&from_vm, &from_tree) {
        (Ok(a), Ok(b)) => assert_eq!(a.to_string(), b.to_string()),
        (Err(a), Err(b)) => assert_eq!(a.kind, b.kind, "vm {a:?} vs interp {b:?}"),
        other => panic!("engines disagree: {other:?}"),
    }
    from_vm
}

fn int(n: i64) -> RExpr {
    Expr::lit(Lit::Int(n))
}

#[test]
fn let_shadowing_inner_binding_wins() {
    // let x = 1 in let x = 2 in let x = 3 in x
    let (x1, x2, x3) = (Sym::fresh("x"), Sym::fresh("x"), Sym::fresh("x"));
    let e = Expr::let_(
        x1,
        Con::int(),
        int(1),
        Expr::let_(
            x2,
            Con::int(),
            int(2),
            Expr::let_(x3, Con::int(), int(3), Expr::var(&x3)),
        ),
    );
    let v = assert_agree(&e).unwrap();
    assert!(matches!(v, Value::Int(3)));
}

#[test]
fn parameter_shadowed_by_let_and_back() {
    // (fn x => let x2 = x + via-capture in x2) — the let shadows the
    // parameter; the bound expression still sees the parameter.
    let p = Sym::fresh("x");
    let inner = Sym::fresh("x");
    let body = Expr::let_(inner, Con::int(), Expr::var(&p), Expr::var(&inner));
    let e = Expr::app(Expr::lam(p, Con::int(), body), int(17));
    let v = assert_agree(&e).unwrap();
    assert!(matches!(v, Value::Int(17)));
}

#[test]
fn closures_capture_by_value_not_by_slot() {
    // let x = 1 in
    //   let f = fn _ => x in
    //     let x = 99 in f 0
    // Both engines must answer 1: the closure snapshots x at creation.
    let x1 = Sym::fresh("x");
    let f = Sym::fresh("f");
    let x2 = Sym::fresh("x");
    let dummy = Sym::fresh("d");
    let e = Expr::let_(
        x1,
        Con::int(),
        int(1),
        Expr::let_(
            f,
            Con::int(),
            Expr::lam(dummy, Con::int(), Expr::var(&x1)),
            Expr::let_(
                x2,
                Con::int(),
                int(99),
                Expr::app(Expr::var(&f), int(0)),
            ),
        ),
    );
    let v = assert_agree(&e).unwrap();
    assert!(matches!(v, Value::Int(1)));
}

#[test]
fn nested_closures_capture_transitively() {
    // (((fn a => fn b => fn c => a + picks only a) 5) 6) 7 — the inner
    // chunk reaches `a` through two closure hops.
    let (a, b, c) = (Sym::fresh("a"), Sym::fresh("b"), Sym::fresh("c"));
    let e = Expr::app(
        Expr::app(
            Expr::app(
                Expr::lam(
                    a,
                    Con::int(),
                    Expr::lam(b, Con::int(), Expr::lam(c, Con::int(), Expr::var(&a))),
                ),
                int(5),
            ),
            int(6),
        ),
        int(7),
    );
    let v = assert_agree(&e).unwrap();
    assert!(matches!(v, Value::Int(5)));
}

#[test]
fn empty_records_agree() {
    let empty = Expr::record(vec![]);
    // {} renders the same from both engines,
    let v = assert_agree(&empty).unwrap();
    assert!(matches!(&v, Value::Record(m) if m.is_empty()));
    // {} ++ {} is {},
    let _ = assert_agree(&Expr::rec_cat(empty, empty));
    // {} ++ {A = 1} is {A = 1},
    let one = Expr::record(vec![(Con::name("A"), int(1))]);
    let _ = assert_agree(&Expr::rec_cat(empty, one));
    let _ = assert_agree(&Expr::rec_cat(one, empty));
    // and projecting or cutting from {} is the same MissingField error.
    let (vm_p, tree_p) = run_both(&Expr::proj(empty, Con::name("A")));
    assert_eq!(vm_p.unwrap_err().kind, EvalErrorKind::MissingField);
    assert_eq!(tree_p.unwrap_err().kind, EvalErrorKind::MissingField);
    let (vm_c, tree_c) = run_both(&Expr::cut(empty, Con::name("A")));
    assert_eq!(vm_c.unwrap_err().kind, EvalErrorKind::MissingField);
    assert_eq!(tree_c.unwrap_err().kind, EvalErrorKind::MissingField);
}

/// A fold-over-record-fields builtin, standing in for the paper's fold
/// metaprograms: applies `f name value acc` over the fields in sorted
/// order. Over the empty row it must return `init` without ever
/// entering `f` — on either engine — and the closure it applies is a
/// *VM* closure when the VM compiled it, exercising the cross-engine
/// application path.
fn fold_fields_builtins() -> (HashMap<Sym, Rc<Builtin>>, Sym) {
    let sym = Sym::fresh("foldFields");
    let mut m = HashMap::new();
    m.insert(
        sym,
        Rc::new(Builtin {
            name: "foldFields".into(),
            con_arity: 0,
            arity: 3,
            run: Rc::new(|interp, _, args| {
                let f = args[0].clone();
                let mut acc = args[1].clone();
                for (name, v) in args[2].as_record()?.clone() {
                    let g = interp.apply(f.clone(), Value::Str(name))?;
                    let h = interp.apply(g, v.clone())?;
                    acc = interp.apply(h, acc)?;
                }
                Ok(acc)
            }),
        }),
    );
    (m, sym)
}

#[test]
fn fold_over_the_empty_row_returns_the_seed() {
    let (builtins, fold) = fold_fields_builtins();
    let (n, v, a) = (Sym::fresh("n"), Sym::fresh("v"), Sym::fresh("a"));
    let f = Expr::lam(
        n,
        Con::string(),
        Expr::lam(v, Con::int(), Expr::lam(a, Con::int(), Expr::var(&a))),
    );
    let e = Expr::app(
        Expr::app(Expr::app(Expr::var(&fold), f), int(42)),
        Expr::record(vec![]),
    );
    let (from_vm, from_tree) = run_both_with(&e, &builtins);
    let from_vm = from_vm.unwrap();
    assert!(matches!(from_vm, Value::Int(42)), "got {from_vm}");
    assert_eq!(from_vm.to_string(), from_tree.unwrap().to_string());
}

#[test]
fn fold_over_a_real_row_crosses_the_engine_boundary() {
    // f counts fields by returning acc + 1; the VM-compiled closure is
    // applied from inside the builtin (tree-interpreter territory).
    let (builtins, fold) = fold_fields_builtins();
    let (n, v, a) = (Sym::fresh("n"), Sym::fresh("v"), Sym::fresh("a"));
    let bump = Expr::lam(
        n,
        Con::string(),
        Expr::lam(
            v,
            Con::int(),
            Expr::lam(a, Con::int(), Expr::var(&a)),
        ),
    );
    let rec = Expr::record(vec![
        (Con::name("A"), int(1)),
        (Con::name("B"), int(2)),
        (Con::name("C"), int(3)),
    ]);
    let e = Expr::app(Expr::app(Expr::app(Expr::var(&fold), bump), int(0)), rec);
    let (from_vm, from_tree) = run_both_with(&e, &builtins);
    assert_eq!(
        from_vm.unwrap().to_string(),
        from_tree.unwrap().to_string()
    );
}

/// 300 singleton records concatenated left-nested:
/// `((r0 ++ r1) ++ r2) ++ …`. Field names are distinct so the result
/// has 300 fields; the chain stresses compile recursion and the
/// flat-loop dispatch equally on both engines.
#[test]
fn deep_left_nested_concatenation() {
    let mut e = Expr::record(vec![(Con::name("F000"), int(0))]);
    for i in 1..300 {
        let one = Expr::record(vec![(Con::name(format!("F{i:03}")), int(i))]);
        e = Expr::rec_cat(e, one);
    }
    let v = assert_agree(&e).unwrap();
    assert!(matches!(&v, Value::Record(m) if m.len() == 300));
}

/// The same 300 records nested to the right:
/// `r0 ++ (r1 ++ (r2 ++ …))`.
#[test]
fn deep_right_nested_concatenation() {
    let mut e = Expr::record(vec![(Con::name("F299"), int(299))]);
    for i in (0..299).rev() {
        let one = Expr::record(vec![(Con::name(format!("F{i:03}")), int(i))]);
        e = Expr::rec_cat(one, e);
    }
    let v = assert_agree(&e).unwrap();
    assert!(matches!(&v, Value::Record(m) if m.len() == 300));
}

/// 300 nested lets — the VM frame must size to the deepest chain
/// without the engines drifting on which binding is visible.
#[test]
fn deep_let_chains_agree() {
    let syms: Vec<Sym> = (0..300).map(|i| Sym::fresh(format!("v{i}"))).collect();
    let mut body = Expr::var(&syms[299]);
    for i in (0..300).rev() {
        let bound = if i == 0 {
            int(1)
        } else {
            Expr::var(&syms[i - 1])
        };
        body = Expr::let_(syms[i], Con::int(), bound, body);
    }
    let v = assert_agree(&body).unwrap();
    assert!(matches!(v, Value::Int(1)));
}

/// An arity-1 builtin that records its argument in the world's debug
/// log and returns it — the smallest observable first application.
fn note_builtins() -> (HashMap<Sym, Rc<Builtin>>, Sym) {
    let sym = Sym::fresh("note");
    let mut m = HashMap::new();
    m.insert(
        sym,
        Rc::new(Builtin {
            name: "note".into(),
            con_arity: 0,
            arity: 1,
            run: Rc::new(|interp, _, args| {
                interp.world.out.push(args[0].to_string());
                Ok(args[0].clone())
            }),
        }),
    );
    (m, sym)
}

/// Runs `e` on both engines, returning each engine's result *and* its
/// world's debug log, so effect ordering is comparable too.
#[allow(clippy::type_complexity)]
fn run_both_with_worlds(
    e: &RExpr,
    builtins: &HashMap<Sym, Rc<Builtin>>,
) -> (
    (Result<Value, EvalError>, Vec<String>),
    (Result<Value, EvalError>, Vec<String>),
) {
    let genv = Env::new();
    let mut cx = Cx::new();
    let chunk = compile(&genv, &mut cx, e, "order");
    let mut world = World::new();
    let mut interp = Interp::new(&mut world, &genv, builtins);
    let from_vm = vm::run(&mut interp, &chunk, &VEnv::new());
    drop(interp);
    let mut world2 = World::new();
    let mut interp2 = Interp::new(&mut world2, &genv, builtins);
    let from_tree = interp2.eval(&VEnv::new(), e);
    drop(interp2);
    ((from_vm, world.out), (from_tree, world2.out))
}

/// Regression: `(note 1) (note 2)` saturates the arity-1 builtin on the
/// *inner* application, so the interpreter logs "1" before it ever
/// evaluates the second argument. A `Call2` that hoisted the second
/// argument over that application logged "2" first — the compiler must
/// fall back to interpreter order when the argument is observable.
#[test]
fn observable_first_application_keeps_interpreter_effect_order() {
    let (builtins, note) = note_builtins();
    let e = Expr::app(
        Expr::app(Expr::var(&note), int(1)),
        Expr::app(Expr::var(&note), int(2)),
    );
    let ((from_vm, vm_out), (from_tree, tree_out)) = run_both_with_worlds(&e, &builtins);
    // Applying `1` to `2` is the same NotAFunction on both engines…
    assert_eq!(from_vm.unwrap_err().kind, EvalErrorKind::NotAFunction);
    assert_eq!(from_tree.unwrap_err().kind, EvalErrorKind::NotAFunction);
    // …and both logged the inner application's effect before the
    // argument's, in the interpreter's order.
    assert_eq!(tree_out, vec!["1".to_string(), "2".to_string()]);
    assert_eq!(vm_out, tree_out, "engines disagree on effect order");
}

/// Regression: effects of the inner application must land before an
/// error raised by the second argument, exactly as the interpreter
/// orders them.
#[test]
fn observable_first_application_keeps_interpreter_error_order() {
    let (builtins, note) = note_builtins();
    // The inner application logs and yields a non-function; the outer
    // argument is a projection that raises MissingField.
    let e = Expr::app(
        Expr::app(Expr::var(&note), int(7)),
        Expr::proj(Expr::record(vec![]), Con::name("Z")),
    );
    let ((from_vm, vm_out), (from_tree, tree_out)) = run_both_with_worlds(&e, &builtins);
    // The interpreter applies `note 7` (logging "7"), then evaluates
    // the argument, which raises MissingField before the outer apply.
    assert_eq!(from_tree.unwrap_err().kind, EvalErrorKind::MissingField);
    assert_eq!(from_vm.unwrap_err().kind, EvalErrorKind::MissingField);
    assert_eq!(tree_out, vec!["7".to_string()]);
    assert_eq!(vm_out, tree_out, "engines disagree on effects before the error");
}

/// Regression: when the inner application itself errors, both engines
/// must raise *that* error — the second argument (which would raise a
/// different kind) is never evaluated by the interpreter.
#[test]
fn erroring_first_application_wins_over_the_second_argument() {
    let boom = Sym::fresh("boom");
    let mut builtins = HashMap::new();
    builtins.insert(
        boom,
        Rc::new(Builtin {
            name: "boom".into(),
            con_arity: 0,
            arity: 1,
            run: Rc::new(|_, _, _| {
                Err(EvalError::of_kind(EvalErrorKind::TypeMismatch, "boom"))
            }),
        }),
    );
    // `boom 1` errors on the inner application; the argument would
    // raise MissingField if it were (wrongly) evaluated first.
    let e = Expr::app(
        Expr::app(Expr::var(&boom), int(1)),
        Expr::proj(Expr::record(vec![]), Con::name("Z")),
    );
    let (from_vm, from_tree) = run_both_with(&e, &builtins);
    assert_eq!(from_tree.unwrap_err().kind, EvalErrorKind::TypeMismatch);
    assert_eq!(
        from_vm.unwrap_err().kind,
        EvalErrorKind::TypeMismatch,
        "vm evaluated the second argument before the erroring application"
    );
}

#[test]
fn chunk_round_trips_through_the_codec() {
    // A chunk with everything: constants, locals, a capturing
    // sub-chunk, record ops, and a conditional.
    let x = Sym::fresh("x");
    let y = Sym::fresh("y");
    let e = Expr::let_(
        x,
        Con::int(),
        int(7),
        Expr::if_(
            Expr::lit(Lit::Bool(true)),
            Expr::app(
                Expr::lam(
                    y,
                    Con::int(),
                    Expr::proj(
                        Expr::record(vec![
                            (Con::name("A"), Expr::var(&x)),
                            (Con::name("B"), Expr::var(&y)),
                        ]),
                        Con::name("A"),
                    ),
                ),
                int(9),
            ),
            int(0),
        ),
    );
    let genv = Env::new();
    let mut cx = Cx::new();
    let chunk = compile(&genv, &mut cx, &e, "codec");
    let bytes = encode_chunk(&chunk);
    let decoded = decode_chunk(&bytes).expect("decode");
    assert_eq!(*chunk, *decoded, "codec must round-trip exactly");

    // And the decoded chunk runs to the same value as the original.
    let builtins = HashMap::new();
    let mut world = World::new();
    let mut interp = Interp::new(&mut world, &genv, &builtins);
    let a = vm::run(&mut interp, &chunk, &VEnv::new()).unwrap();
    let b = vm::run(&mut interp, &decoded, &VEnv::new()).unwrap();
    assert_eq!(a.to_string(), b.to_string());
}

#[test]
fn deep_chunks_round_trip_too() {
    let mut e = Expr::record(vec![(Con::name("F000"), int(0))]);
    for i in 1..300 {
        let one = Expr::record(vec![(Con::name(format!("F{i:03}")), int(i))]);
        e = Expr::rec_cat(e, one);
    }
    let genv = Env::new();
    let mut cx = Cx::new();
    let chunk = compile(&genv, &mut cx, &e, "deep");
    let decoded = decode_chunk(&encode_chunk(&chunk)).expect("decode");
    assert_eq!(*chunk, *decoded);
}

#[test]
fn constant_pool_dedups_across_the_whole_chunk() {
    // The same literal in four places lands in the pool once; distinct
    // literals get distinct entries.
    let e = Expr::rec_cat(
        Expr::record(vec![
            (Con::name("A"), int(5)),
            (Con::name("B"), int(5)),
        ]),
        Expr::record(vec![
            (Con::name("C"), int(5)),
            (Con::name("D"), Expr::rec_cat(
                Expr::record(vec![(Con::name("X"), int(5))]),
                Expr::record(vec![(Con::name("Y"), int(6))]),
            )),
        ]),
    );
    let genv = Env::new();
    let mut cx = Cx::new();
    let chunk = compile(&genv, &mut cx, &e, "pool");
    let fives = chunk
        .consts
        .iter()
        .filter(|l| matches!(l, Lit::Int(5)))
        .count();
    assert_eq!(fives, 1, "repeated literal must intern once: {:?}", chunk.consts);
    assert!(chunk.consts.contains(&Lit::Int(6)));
}

#[test]
fn truncated_chunks_are_rejected_not_misread() {
    let e = Expr::record(vec![(Con::name("A"), int(1))]);
    let genv = Env::new();
    let mut cx = Cx::new();
    let chunk = compile(&genv, &mut cx, &e, "trunc");
    let bytes = encode_chunk(&chunk);
    for cut in 0..bytes.len() {
        assert!(
            decode_chunk(&bytes[..cut]).is_none(),
            "truncation at {cut} must not decode"
        );
    }
    // Trailing garbage is rejected too: decode demands exact length.
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(decode_chunk(&padded).is_none());
}
