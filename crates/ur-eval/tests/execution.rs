//! Direct interpreter tests over hand-built core terms: generated folders
//! execute correctly, constructor arguments flow through closures
//! (type-passing semantics), and evaluation order is call-by-value.

use std::collections::HashMap;
use std::rc::Rc;
use ur_core::arena::IStr;
use ur_core::con::Con;
use ur_core::env::Env;
use ur_core::expr::{Expr, Lit, RExpr};
use ur_core::folder::gen_folder;
use ur_core::kind::Kind;
use ur_core::sym::Sym;
use ur_eval::{Builtin, Interp, VEnv, Value, World};

fn eval(e: &RExpr) -> Value {
    let mut world = World::new();
    let genv = Env::new();
    let builtins = HashMap::new();
    let mut interp = Interp::new(&mut world, &genv, &builtins);
    interp.eval(&VEnv::new(), e).expect("evaluates")
}

/// Runs a generated folder with a step that collects field names into a
/// string (type-level name arguments become runtime data).
#[test]
fn generated_folder_visits_fields_in_source_order() {
    let fields: Vec<(IStr, _)> = vec![
        ("B".into(), Con::int()),
        ("A".into(), Con::float()),
        ("C".into(), Con::string()),
    ];
    let folder = gen_folder(&Kind::Type, &fields);

    // step = fn [nm] [t] [r] [g] => fn acc : string => "<nm>" ^ acc
    // We cannot write ^ without builtins, so the step builds a record
    // chain instead: step returns {Cnt = acc.Cnt + 1}-style... simpler:
    // count fields by nesting Unit-returning closures is overkill — use a
    // builtin concat.
    let mut world = World::new();
    let genv = Env::new();
    let mut builtins = HashMap::new();
    let concat = Sym::fresh("concat");
    builtins.insert(
        concat,
        Rc::new(Builtin {
            name: "concat".into(),
            con_arity: 0,
            arity: 2,
            run: Rc::new(|_, _, args| {
                let mut s = args[0].as_str()?.to_string();
                s.push_str(&args[1].as_str()?);
                Ok(Value::str(s))
            }),
        }),
    );
    let mut interp = Interp::new(&mut world, &genv, &builtins);

    // step: fn [nm :: Name] => fn [t :: Type] => fn [r :: {Type}] =>
    //         fn [g1 ~ g2] => fn acc : string => concat "<nm>" acc
    // The name is only available as a constructor — expose it at runtime
    // via a record: {nm = "x"} has field named by nm; project... Simplest:
    // the step ignores values and the test checks the *count and order*
    // via a name-keyed record instead.
    //
    // Build: step = CLam nm. CLam t. CLam r. DLam. Lam acc:string.
    //          concat (proj ({nm = "*"} : one-field record printed) acc)
    // Projection by nm of {nm = lit} resolves the name at runtime; to
    // expose the name itself we exploit Record display: {nm = "*"}
    // stringifies as "{<name> = \"*\"}".
    let nm = Sym::fresh("nm");
    let t = Sym::fresh("t");
    let r = Sym::fresh("r");
    let acc = Sym::fresh("acc");
    // Inner: a one-field record keyed by the bound name.
    let tagged = Expr::record(vec![(Con::var(&nm), Expr::lit(Lit::Str("*".into())))]);
    // We cannot stringify records in core without builtins; instead count
    // by concatenating "." per field and checking length, while the
    // order claim is delegated to the mkTable integration tests. Here:
    let step = Expr::clam(
        nm,
        Kind::Name,
        Expr::clam(
            t,
            Kind::Type,
            Expr::clam(
                r,
                Kind::row(Kind::Type),
                Expr::dlam(
                    Con::row_one(Con::var(&nm), Con::var(&t)),
                    Con::var(&r),
                    Expr::lam(
                        acc,
                        Con::string(),
                        Expr::let_(
                            Sym::fresh("_tagged"),
                            Con::record(Con::row_one(Con::var(&nm), Con::string())),
                            tagged,
                            Expr::apps(
                                Expr::var(&concat),
                                [Expr::lit(Lit::Str(".".into())), Expr::var(&acc)],
                            ),
                        ),
                    ),
                ),
            ),
        ),
    );

    // tf := fn _ :: {Type} => string  — constant accumulator type.
    let a = Sym::fresh("ignored");
    let tf = Con::lam(a, Kind::row(Kind::Type), Con::string());
    let call = Expr::app(
        Expr::app(Expr::capp(folder, tf), step),
        Expr::lit(Lit::Str("".into())),
    );
    let v = interp.eval(&VEnv::new(), &call).expect("fold runs");
    assert_eq!(v.as_str().unwrap().as_ref(), "...");
}

#[test]
fn type_passing_projection_through_two_instantiations() {
    // f = fn [a :: Name] => fn [b :: Name] => fn (x : $([a=int]++[b=int])) => x.b
    let a = Sym::fresh("a");
    let b = Sym::fresh("b");
    let x = Sym::fresh("x");
    let f = Expr::clam(
        a,
        Kind::Name,
        Expr::clam(
            b,
            Kind::Name,
            Expr::lam(
                x,
                Con::record(Con::row_cat(
                    Con::row_one(Con::var(&a), Con::int()),
                    Con::row_one(Con::var(&b), Con::int()),
                )),
                Expr::proj(Expr::var(&x), Con::var(&b)),
            ),
        ),
    );
    let call = Expr::app(
        Expr::capp(Expr::capp(f, Con::name("P")), Con::name("Q")),
        Expr::record(vec![
            (Con::name("P"), Expr::lit(Lit::Int(10))),
            (Con::name("Q"), Expr::lit(Lit::Int(20))),
        ]),
    );
    assert!(matches!(eval(&call), Value::Int(20)));
}

#[test]
fn closures_capture_their_environment() {
    // let y = 5 in (fn x : int => y) 99
    let y = Sym::fresh("y");
    let x = Sym::fresh("x");
    let e = Expr::let_(
        y,
        Con::int(),
        Expr::lit(Lit::Int(5)),
        Expr::app(
            Expr::lam(x, Con::int(), Expr::var(&y)),
            Expr::lit(Lit::Int(99)),
        ),
    );
    assert!(matches!(eval(&e), Value::Int(5)));
}

#[test]
fn shadowing_uses_innermost_binding() {
    let x = Sym::fresh("x");
    let x2 = Sym::fresh("x"); // same name, distinct symbol
    let e = Expr::let_(
        x,
        Con::int(),
        Expr::lit(Lit::Int(1)),
        Expr::let_(
            x2,
            Con::int(),
            Expr::lit(Lit::Int(2)),
            Expr::var(&x2),
        ),
    );
    assert!(matches!(eval(&e), Value::Int(2)));
    let e2 = Expr::let_(
        x,
        Con::int(),
        Expr::lit(Lit::Int(1)),
        Expr::let_(x2, Con::int(), Expr::lit(Lit::Int(2)), Expr::var(&x)),
    );
    assert!(matches!(eval(&e2), Value::Int(1)));
}

#[test]
fn call_by_value_evaluates_arguments_once() {
    // A builtin with a side effect counts its invocations.
    let mut world = World::new();
    let genv = Env::new();
    let mut builtins = HashMap::new();
    let tick = Sym::fresh("tick");
    builtins.insert(
        tick,
        Rc::new(Builtin {
            name: "tick".into(),
            con_arity: 0,
            arity: 1,
            run: Rc::new(|interp, _, args| {
                interp.world.out.push("tick".into());
                Ok(args[0].clone())
            }),
        }),
    );
    let mut interp = Interp::new(&mut world, &genv, &builtins);
    // (fn x : int => {A = x, B = x}) (tick 7): the argument is evaluated
    // exactly once even though x is used twice.
    let x = Sym::fresh("x");
    let e = Expr::app(
        Expr::lam(
            x,
            Con::int(),
            Expr::record(vec![
                (Con::name("A"), Expr::var(&x)),
                (Con::name("B"), Expr::var(&x)),
            ]),
        ),
        Expr::app(Expr::var(&tick), Expr::lit(Lit::Int(7))),
    );
    let v = interp.eval(&VEnv::new(), &e).unwrap();
    assert!(matches!(v, Value::Record(_)));
    assert_eq!(world.out.len(), 1);
}

#[test]
fn cut_then_concat_roundtrips_records() {
    // (r -- A) ++ {A = r.A}  ==  r   (as runtime values)
    let rec = Expr::record(vec![
        (Con::name("A"), Expr::lit(Lit::Int(1))),
        (Con::name("B"), Expr::lit(Lit::Str("s".into()))),
    ]);
    let rebuilt = Expr::rec_cat(
        Expr::cut(rec, Con::name("A")),
        Expr::record(vec![(
            Con::name("A"),
            Expr::proj(rec, Con::name("A")),
        )]),
    );
    let v1 = eval(&rec);
    let v2 = eval(&rebuilt);
    assert_eq!(v1.to_string(), v2.to_string());
}
