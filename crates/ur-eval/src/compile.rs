//! Lowering elaborated core terms to flat bytecode.
//!
//! A [`Chunk`] is the unit of compilation: one flat `Vec<Op>` per function
//! body (and one for the top-level expression), with side tables for
//! literals (deduplicated constant pool), static field names (interned
//! [`IStr`]s — record construction, projection, and cut on a closed name
//! skip all runtime constructor normalization), runtime constructors
//! (anything mentioning a constructor variable still resolves through the
//! type-passing machinery, exactly like the interpreter), referenced
//! globals, and nested sub-chunks.
//!
//! Variables become direct frame-slot indices at compile time: parameters,
//! captured values, and `let` bindings each own a slot, so the VM never
//! performs a name lookup for locals and never clones an environment when
//! it enters a binder — the two costs that dominate the tree-walking
//! interpreter. Free variables of a function are *captured by value* when
//! the closure is created (the same semantics as the interpreter's
//! environment clone); variables free at the top of the compilation unit
//! are resolved against the runtime global environment and the builtin
//! registry, in that order, exactly as `Expr::Var` does.
//!
//! Chunks contain only `Copy + Send` data (`IStr`/`ConId`/`ExprId` arena
//! handles from PR 7), so a compiled declaration can be cached and shared
//! across threads. [`encode_chunk`]/[`decode_chunk`] give chunks a compact
//! byte form (same-process: constructor handles are raw arena ids).

use std::collections::HashMap;
use std::sync::Arc;
use ur_core::arena::{istr, IStr};
use ur_core::con::{Con, ConId, RCon};
use ur_core::env::Env;
use ur_core::expr::{Expr, Lit, RExpr};
use ur_core::hnf::hnf;
use ur_core::sym::Sym;
use ur_core::Cx;

/// One bytecode instruction. Operands index the owning chunk's side
/// tables ([`Chunk::consts`], [`Chunk::names`], [`Chunk::cons`],
/// [`Chunk::syms`], [`Chunk::subs`]) or name frame slots / jump targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Push `consts[i]`.
    Const(u32),
    /// Push a clone of frame slot `i`.
    Local(u32),
    /// Pop into frame slot `i`.
    SetLocal(u32),
    /// Pop and discard.
    Pop,
    /// Push the value of global `syms[i]`: the runtime global
    /// environment first, then the builtin registry (a nullary builtin
    /// runs immediately, like `Expr::Var`).
    Global(u32),
    /// Pop `arg` then `f`; push `f arg`.
    Call,
    /// Pop `b`, then `a`, then `f`; push `(f a) b`. Emitted for a
    /// two-argument application spine so a saturated two-argument
    /// builtin runs directly, without materializing the partial
    /// application `f a` — but only when evaluating `b` is statically
    /// unobservable (a literal, a binder, or a local variable). The
    /// interpreter performs the inner application *before* evaluating
    /// `b`, and `f a` can itself be observable (an arity-1 builtin
    /// saturating, a closure body with effects between binders), so
    /// hoisting `b` across it is only sound for arguments that cannot
    /// error, effect, or diverge. Every other spine compiles as two
    /// [`Op::Call`]s in interpreter order.
    Call2,
    /// Make a value closure from `subs[i]`, capturing frame slots.
    Closure(u32),
    /// Make a constructor closure from `subs[i]`.
    CClosure(u32),
    /// Make a suspended guard body from `subs[i]`.
    Susp(u32),
    /// Pop `f`; push `f [cons[i]]` where `cons[i]` is already closed and
    /// head-normal (resolved at compile time).
    CApplyStatic(u32),
    /// Pop `f`; resolve `cons[i]` against the runtime constructor
    /// bindings, then push `f [c]`.
    CApplyDyn(u32),
    /// Pop a suspended guard and run it (`e !`); other values pass
    /// through (builtins erase guards).
    Force,
    /// Push the empty record.
    RecNil,
    /// Pop `v`; push the singleton record `{names[i] = v}`.
    RecOneStatic(u32),
    /// Resolve `cons[i]` to a literal field name and push it as a
    /// string. Emitted *before* the value/record operand so effects and
    /// errors keep the interpreter's order.
    NameDyn(u32),
    /// Pop `v` then a name pushed by [`Op::NameDyn`]; push `{name = v}`.
    RecOneDynTop,
    /// Pop `b` then `a`; push `a ++ b` (duplicate fields are a runtime
    /// error, as in the interpreter).
    RecCat,
    /// Pop a record; push its `names[i]` field.
    ProjStatic(u32),
    /// Pop a record then a [`Op::NameDyn`] name; push the named field.
    ProjDynTop,
    /// Pop a record; push it minus its `names[i]` field.
    CutStatic(u32),
    /// Pop a record then a [`Op::NameDyn`] name; push it minus the field.
    CutDynTop,
    /// Jump to op index `t`.
    Jump(u32),
    /// Pop a bool; jump to `t` when false.
    JumpIfFalse(u32),
    /// Pop the result and return it.
    Ret,
}

/// A compiled function body (or top-level expression).
#[derive(Clone, Debug, PartialEq)]
pub struct Chunk {
    /// Debug label (declaration name, or a position inside it).
    pub label: String,
    /// Whether slot 0 is a value parameter (`Lam` bodies).
    pub has_param: bool,
    /// The constructor parameter bound at constructor application
    /// (`CLam` bodies).
    pub cparam: Option<Sym>,
    /// Frame size in slots.
    pub n_slots: u32,
    /// Captures: `(parent_slot, self_slot)` — the creating frame copies
    /// its `parent_slot` into the closure, and a call copies captured
    /// value `i` into `self_slot`.
    pub caps: Vec<(u32, u32)>,
    pub ops: Vec<Op>,
    /// Deduplicated literal pool.
    pub consts: Vec<Lit>,
    /// Static field names (closed constructors pre-reduced to `#name`).
    pub names: Vec<IStr>,
    /// Constructors that still need runtime resolution.
    pub cons: Vec<RCon>,
    /// Globals referenced by [`Op::Global`].
    pub syms: Vec<Sym>,
    /// Nested function bodies.
    pub subs: Vec<Arc<Chunk>>,
}

impl Chunk {
    /// Total instructions including sub-chunks (reporting/debugging).
    pub fn total_ops(&self) -> usize {
        self.ops.len() + self.subs.iter().map(|s| s.total_ops()).sum::<usize>()
    }
}

/// Constant-pool key: literals hashed by shape ([`Lit`] itself has no
/// `Eq`/`Hash` because of floats, which are keyed by their bits here).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum ConstKey {
    Int(i64),
    Float(u64),
    Str(u32),
    Bool(bool),
    Unit,
}

fn const_key(l: &Lit) -> ConstKey {
    match l {
        Lit::Int(n) => ConstKey::Int(*n),
        Lit::Float(x) => ConstKey::Float(x.to_bits()),
        Lit::Str(s) => ConstKey::Str(s.raw()),
        Lit::Bool(b) => ConstKey::Bool(*b),
        Lit::Unit => ConstKey::Unit,
    }
}

/// Per-function compile state (one per nesting level).
#[derive(Default)]
struct Frame {
    label: String,
    has_param: bool,
    cparam: Option<Sym>,
    /// Lexical value binders currently in scope: `(sym, slot)`,
    /// innermost last (searched from the back, so shadowing works).
    scope: Vec<(Sym, u32)>,
    next_slot: u32,
    n_slots: u32,
    caps: Vec<(u32, u32)>,
    /// Captured syms already assigned a slot in this frame.
    cap_map: HashMap<Sym, u32>,
    ops: Vec<Op>,
    consts: Vec<Lit>,
    const_map: HashMap<ConstKey, u32>,
    names: Vec<IStr>,
    name_map: HashMap<u32, u32>,
    cons: Vec<RCon>,
    con_map: HashMap<RCon, u32>,
    syms: Vec<Sym>,
    sym_map: HashMap<Sym, u32>,
    subs: Vec<Arc<Chunk>>,
}

impl Frame {
    fn new(label: String) -> Frame {
        Frame {
            label,
            ..Frame::default()
        }
    }

    fn alloc_slot(&mut self) -> u32 {
        let s = self.next_slot;
        self.next_slot += 1;
        self.n_slots = self.n_slots.max(self.next_slot);
        s
    }

    fn emit(&mut self, op: Op) -> u32 {
        self.ops.push(op);
        (self.ops.len() - 1) as u32
    }

    fn const_idx(&mut self, l: &Lit) -> u32 {
        let key = const_key(l);
        if let Some(i) = self.const_map.get(&key) {
            return *i;
        }
        let i = self.consts.len() as u32;
        self.consts.push(l.clone());
        self.const_map.insert(key, i);
        i
    }

    fn name_idx(&mut self, is: IStr) -> u32 {
        if let Some(i) = self.name_map.get(&is.raw()) {
            return *i;
        }
        let i = self.names.len() as u32;
        self.names.push(is);
        self.name_map.insert(is.raw(), i);
        i
    }

    fn con_idx(&mut self, c: RCon) -> u32 {
        if let Some(i) = self.con_map.get(&c) {
            return *i;
        }
        let i = self.cons.len() as u32;
        self.cons.push(c);
        self.con_map.insert(c, i);
        i
    }

    fn sym_idx(&mut self, x: Sym) -> u32 {
        if let Some(i) = self.sym_map.get(&x) {
            return *i;
        }
        let i = self.syms.len() as u32;
        self.syms.push(x);
        self.sym_map.insert(x, i);
        i
    }

    fn finish(self) -> Arc<Chunk> {
        Arc::new(Chunk {
            label: self.label,
            has_param: self.has_param,
            cparam: self.cparam,
            n_slots: self.n_slots,
            caps: self.caps,
            ops: self.ops,
            consts: self.consts,
            names: self.names,
            cons: self.cons,
            syms: self.syms,
            subs: self.subs,
        })
    }
}

struct Compiler<'a> {
    genv: &'a Env,
    cx: &'a mut Cx,
    frames: Vec<Frame>,
}

/// Compiles an elaborated core expression to a chunk. Infallible: any
/// well-formed core term lowers (constructs the interpreter cannot
/// pre-resolve fall back to runtime resolution ops).
pub fn compile(genv: &Env, cx: &mut Cx, e: &RExpr, label: &str) -> Arc<Chunk> {
    let mut c = Compiler {
        genv,
        cx,
        frames: vec![Frame::new(label.to_string())],
    };
    c.expr(0, e);
    c.frames[0].emit(Op::Ret);
    let frame = c.frames.remove(0);
    frame.finish()
}

impl Compiler<'_> {
    /// The frame slot of `x` in frame `fi`, threading captures through
    /// every intermediate function. `None` means "free at the root":
    /// resolved at runtime against globals + builtins.
    fn var_loc(&mut self, fi: usize, x: Sym) -> Option<u32> {
        if let Some(slot) = self.frames[fi]
            .scope
            .iter()
            .rev()
            .find(|(s, _)| *s == x)
            .map(|(_, slot)| *slot)
        {
            return Some(slot);
        }
        if let Some(slot) = self.frames[fi].cap_map.get(&x) {
            return Some(*slot);
        }
        if fi == 0 {
            return None;
        }
        let parent_slot = self.var_loc(fi - 1, x)?;
        let f = &mut self.frames[fi];
        let self_slot = f.alloc_slot();
        f.caps.push((parent_slot, self_slot));
        f.cap_map.insert(x, self_slot);
        Some(self_slot)
    }

    /// A constructor with no variables or metavariables reduces at
    /// compile time; the result is the same head-normal form the
    /// interpreter would compute at every execution.
    fn static_con(&mut self, c: &RCon) -> Option<RCon> {
        let fl = c.flags();
        if fl.has_var() || fl.has_meta() || fl.has_kmeta() {
            return None;
        }
        Some(hnf(self.genv, self.cx, c))
    }

    /// A closed constructor in field-name position, pre-reduced to its
    /// literal name.
    fn static_name(&mut self, c: &RCon) -> Option<IStr> {
        match &*self.static_con(c)? {
            Con::Name(is) => Some(*is),
            _ => None,
        }
    }

    /// Compiles a nested function body as a sub-chunk of frame `fi`.
    fn sub_fn(
        &mut self,
        fi: usize,
        label: &str,
        param: Option<Sym>,
        cparam: Option<Sym>,
        body: &RExpr,
    ) -> u32 {
        let mut f = Frame::new(format!("{}.{label}", self.frames[fi].label));
        f.has_param = param.is_some();
        f.cparam = cparam;
        if let Some(x) = param {
            let slot = f.alloc_slot();
            f.scope.push((x, slot));
        }
        self.frames.push(f);
        let child = self.frames.len() - 1;
        self.expr(child, body);
        self.frames[child].emit(Op::Ret);
        let done = match self.frames.pop() {
            Some(frame) => frame.finish(),
            // Unreachable: we pushed just above.
            None => Frame::new(String::new()).finish(),
        };
        let parent = &mut self.frames[fi];
        parent.subs.push(done);
        (parent.subs.len() - 1) as u32
    }

    /// Whether `x` is bound by an enclosing binder (parameter, `let`,
    /// or an already-threaded capture) rather than free at the root.
    /// Read-only: unlike [`Compiler::var_loc`] it threads no captures.
    fn is_local(&self, fi: usize, x: Sym) -> bool {
        (0..=fi).rev().any(|i| {
            let f = &self.frames[i];
            f.scope.iter().any(|(s, _)| *s == x) || f.cap_map.contains_key(&x)
        })
    }

    /// Whether evaluating `e` is statically unobservable: no effects, no
    /// errors, no divergence. Only such expressions may move across an
    /// application in [`Op::Call2`] (see its doc). Global variables are
    /// excluded — resolution can raise `UnboundVar` and runs nullary
    /// builtins; record/projection forms are excluded — they can error.
    fn pure_operand(&self, fi: usize, e: &RExpr) -> bool {
        match &**e {
            Expr::Lit(_)
            | Expr::Lam(..)
            | Expr::CLam(..)
            | Expr::DLam(..)
            | Expr::RecNil => true,
            Expr::Var(x) => self.is_local(fi, *x),
            _ => false,
        }
    }

    /// Emits code that resolves a field-name constructor: static names
    /// become a table index, everything else becomes a [`Op::NameDyn`]
    /// push (before the operand, preserving interpreter effect order).
    /// Returns the static index when the fast path applies.
    fn name_or_push(&mut self, fi: usize, c: &RCon) -> Option<u32> {
        if let Some(is) = self.static_name(c) {
            return Some(self.frames[fi].name_idx(is));
        }
        let i = self.frames[fi].con_idx(*c);
        self.frames[fi].emit(Op::NameDyn(i));
        None
    }

    fn expr(&mut self, fi: usize, e: &RExpr) {
        match &**e {
            Expr::Var(x) => {
                if let Some(slot) = self.var_loc(fi, *x) {
                    self.frames[fi].emit(Op::Local(slot));
                } else {
                    let i = self.frames[fi].sym_idx(*x);
                    self.frames[fi].emit(Op::Global(i));
                }
            }
            Expr::Lit(l) => {
                let i = self.frames[fi].const_idx(l);
                self.frames[fi].emit(Op::Const(i));
            }
            Expr::App(f, a) => match &**f {
                // Two-argument spine `g a1 a` whose outer argument is
                // statically pure: evaluate `g`, `a1`, `a`, then apply
                // both at once so saturated binary builtins skip the
                // intermediate partial application. The interpreter
                // applies `g a1` *before* evaluating `a`; hoisting `a`
                // across that application is unobservable only because
                // `pure_operand` guarantees `a` cannot error or effect.
                Expr::App(g, a1) if self.pure_operand(fi, a) => {
                    self.expr(fi, g);
                    self.expr(fi, a1);
                    self.expr(fi, a);
                    self.frames[fi].emit(Op::Call2);
                }
                _ => {
                    self.expr(fi, f);
                    self.expr(fi, a);
                    self.frames[fi].emit(Op::Call);
                }
            },
            Expr::Lam(x, _, body) => {
                let sub = self.sub_fn(fi, "fn", Some(*x), None, body);
                self.frames[fi].emit(Op::Closure(sub));
            }
            Expr::CApp(f, c) => {
                self.expr(fi, f);
                match self.static_con(c) {
                    Some(norm) => {
                        let i = self.frames[fi].con_idx(norm);
                        self.frames[fi].emit(Op::CApplyStatic(i));
                    }
                    None => {
                        let i = self.frames[fi].con_idx(*c);
                        self.frames[fi].emit(Op::CApplyDyn(i));
                    }
                }
            }
            Expr::CLam(a, _, body) => {
                let sub = self.sub_fn(fi, "cfn", None, Some(*a), body);
                self.frames[fi].emit(Op::CClosure(sub));
            }
            Expr::RecNil => {
                self.frames[fi].emit(Op::RecNil);
            }
            Expr::RecOne(n, v) => match self.name_or_push(fi, n) {
                Some(i) => {
                    self.expr(fi, v);
                    self.frames[fi].emit(Op::RecOneStatic(i));
                }
                None => {
                    self.expr(fi, v);
                    self.frames[fi].emit(Op::RecOneDynTop);
                }
            },
            Expr::RecCat(a, b) => {
                self.expr(fi, a);
                self.expr(fi, b);
                self.frames[fi].emit(Op::RecCat);
            }
            Expr::Proj(r, c) => match self.name_or_push(fi, c) {
                Some(i) => {
                    self.expr(fi, r);
                    self.frames[fi].emit(Op::ProjStatic(i));
                }
                None => {
                    self.expr(fi, r);
                    self.frames[fi].emit(Op::ProjDynTop);
                }
            },
            Expr::Cut(r, c) => match self.name_or_push(fi, c) {
                Some(i) => {
                    self.expr(fi, r);
                    self.frames[fi].emit(Op::CutStatic(i));
                }
                None => {
                    self.expr(fi, r);
                    self.frames[fi].emit(Op::CutDynTop);
                }
            },
            Expr::DLam(_, _, body) => {
                let sub = self.sub_fn(fi, "guard", None, None, body);
                self.frames[fi].emit(Op::Susp(sub));
            }
            Expr::DApp(e) => {
                self.expr(fi, e);
                self.frames[fi].emit(Op::Force);
            }
            Expr::Let(x, _, bound, body) => {
                self.expr(fi, bound);
                let slot = self.frames[fi].alloc_slot();
                self.frames[fi].emit(Op::SetLocal(slot));
                self.frames[fi].scope.push((*x, slot));
                self.expr(fi, body);
                self.frames[fi].scope.pop();
            }
            Expr::If(c, t, el) => {
                self.expr(fi, c);
                let jf = self.frames[fi].emit(Op::JumpIfFalse(0));
                self.expr(fi, t);
                let jend = self.frames[fi].emit(Op::Jump(0));
                let else_at = self.frames[fi].ops.len() as u32;
                self.frames[fi].ops[jf as usize] = Op::JumpIfFalse(else_at);
                self.expr(fi, el);
                let end_at = self.frames[fi].ops.len() as u32;
                self.frames[fi].ops[jend as usize] = Op::Jump(end_at);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Chunk codec: a compact byte form for chunks. Strings (labels, names,
// symbol names, string literals) are content-encoded and re-interned on
// decode; constructor handles are raw arena ids, so decoding is only
// valid in the process (and arena generation) that encoded the chunk.
// The stream is stamped with the arena generation, and every
// constructor handle travels with its intern-time node hash, so a
// stale, forged, or cross-process handle fails decode instead of
// producing a chunk that misbehaves at dispatch time.
// ---------------------------------------------------------------------

const CHUNK_MAGIC: u32 = 0x5552_434B; // "URCK"

fn op_parts(op: Op) -> (u8, u32) {
    match op {
        Op::Const(i) => (0, i),
        Op::Local(i) => (1, i),
        Op::SetLocal(i) => (2, i),
        Op::Pop => (3, 0),
        Op::Global(i) => (4, i),
        Op::Call => (5, 0),
        Op::Closure(i) => (6, i),
        Op::CClosure(i) => (7, i),
        Op::Susp(i) => (8, i),
        Op::CApplyStatic(i) => (9, i),
        Op::CApplyDyn(i) => (10, i),
        Op::Force => (11, 0),
        Op::RecNil => (12, 0),
        Op::RecOneStatic(i) => (13, i),
        Op::NameDyn(i) => (14, i),
        Op::RecOneDynTop => (15, 0),
        Op::RecCat => (16, 0),
        Op::ProjStatic(i) => (17, i),
        Op::ProjDynTop => (18, 0),
        Op::CutStatic(i) => (19, i),
        Op::CutDynTop => (20, 0),
        Op::Jump(i) => (21, i),
        Op::JumpIfFalse(i) => (22, i),
        Op::Ret => (23, 0),
        Op::Call2 => (24, 0),
    }
}

fn op_from(tag: u8, i: u32) -> Option<Op> {
    Some(match tag {
        0 => Op::Const(i),
        1 => Op::Local(i),
        2 => Op::SetLocal(i),
        3 => Op::Pop,
        4 => Op::Global(i),
        5 => Op::Call,
        6 => Op::Closure(i),
        7 => Op::CClosure(i),
        8 => Op::Susp(i),
        9 => Op::CApplyStatic(i),
        10 => Op::CApplyDyn(i),
        11 => Op::Force,
        12 => Op::RecNil,
        13 => Op::RecOneStatic(i),
        14 => Op::NameDyn(i),
        15 => Op::RecOneDynTop,
        16 => Op::RecCat,
        17 => Op::ProjStatic(i),
        18 => Op::ProjDynTop,
        19 => Op::CutStatic(i),
        20 => Op::CutDynTop,
        21 => Op::Jump(i),
        22 => Op::JumpIfFalse(i),
        23 => Op::Ret,
        24 => Op::Call2,
        _ => return None,
    })
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn encode_into(c: &Chunk, out: &mut Vec<u8>) {
    put_u32(out, CHUNK_MAGIC);
    put_str(out, &c.label);
    out.push(u8::from(c.has_param));
    match c.cparam {
        Some(s) => {
            out.push(1);
            put_str(out, s.name());
            put_u32(out, s.id());
        }
        None => out.push(0),
    }
    put_u32(out, c.n_slots);
    put_u32(out, c.caps.len() as u32);
    for (p, s) in &c.caps {
        put_u32(out, *p);
        put_u32(out, *s);
    }
    put_u32(out, c.ops.len() as u32);
    for op in &c.ops {
        let (tag, operand) = op_parts(*op);
        out.push(tag);
        put_u32(out, operand);
    }
    put_u32(out, c.consts.len() as u32);
    for l in &c.consts {
        match l {
            Lit::Int(n) => {
                out.push(0);
                out.extend_from_slice(&n.to_le_bytes());
            }
            Lit::Float(x) => {
                out.push(1);
                out.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Lit::Str(s) => {
                out.push(2);
                put_str(out, s.as_str());
            }
            Lit::Bool(b) => out.push(3 + u8::from(*b)),
            Lit::Unit => out.push(5),
        }
    }
    put_u32(out, c.names.len() as u32);
    for n in &c.names {
        put_str(out, n.as_str());
    }
    put_u32(out, c.cons.len() as u32);
    for con in &c.cons {
        put_u32(out, con.0);
        out.extend_from_slice(&con.node_hash().to_le_bytes());
    }
    put_u32(out, c.syms.len() as u32);
    for s in &c.syms {
        put_str(out, s.name());
        put_u32(out, s.id());
    }
    put_u32(out, c.subs.len() as u32);
    for sub in &c.subs {
        encode_into(sub, out);
    }
}

/// Serializes a chunk (recursively, including sub-chunks). The stream
/// opens with the current arena generation so a decode after an arena
/// reset fails fast rather than resurrecting dangling handles.
pub fn encode_chunk(c: &Chunk) -> Vec<u8> {
    let mut out = Vec::with_capacity(256);
    out.extend_from_slice(&ur_core::arena::generation().to_le_bytes());
    encode_into(c, &mut out);
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u32(&mut self) -> Option<u32> {
        let end = self.pos.checked_add(4)?;
        let raw: [u8; 4] = self.bytes.get(self.pos..end)?.try_into().ok()?;
        self.pos = end;
        Some(u32::from_le_bytes(raw))
    }

    fn u64(&mut self) -> Option<u64> {
        let end = self.pos.checked_add(8)?;
        let raw: [u8; 8] = self.bytes.get(self.pos..end)?.try_into().ok()?;
        self.pos = end;
        Some(u64::from_le_bytes(raw))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let end = self.pos.checked_add(len)?;
        let raw = self.bytes.get(self.pos..end)?;
        self.pos = end;
        String::from_utf8(raw.to_vec()).ok()
    }

    /// A count that cannot possibly be honest for the bytes remaining
    /// (every element needs at least one byte) is rejected up front, so
    /// hostile input cannot force huge pre-allocations.
    fn count(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        if n > self.bytes.len().saturating_sub(self.pos) {
            return None;
        }
        Some(n)
    }
}

fn decode_one(r: &mut Reader<'_>) -> Option<Chunk> {
    if r.u32()? != CHUNK_MAGIC {
        return None;
    }
    let label = r.str()?;
    let has_param = r.u8()? != 0;
    let cparam = match r.u8()? {
        0 => None,
        1 => {
            let name = r.str()?;
            let id = r.u32()?;
            Some(Sym::from_raw(istr(&name), id))
        }
        _ => return None,
    };
    let n_slots = r.u32()?;
    let n_caps = r.count()?;
    let mut caps = Vec::with_capacity(n_caps);
    for _ in 0..n_caps {
        caps.push((r.u32()?, r.u32()?));
    }
    let n_ops = r.count()?;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let tag = r.u8()?;
        let operand = r.u32()?;
        ops.push(op_from(tag, operand)?);
    }
    let n_consts = r.count()?;
    let mut consts = Vec::with_capacity(n_consts);
    for _ in 0..n_consts {
        consts.push(match r.u8()? {
            0 => Lit::Int(i64::from_le_bytes(r.u64()?.to_le_bytes())),
            1 => Lit::Float(f64::from_bits(r.u64()?)),
            2 => Lit::Str(istr(&r.str()?)),
            3 => Lit::Bool(false),
            4 => Lit::Bool(true),
            5 => Lit::Unit,
            _ => return None,
        });
    }
    let n_names = r.count()?;
    let mut names = Vec::with_capacity(n_names);
    for _ in 0..n_names {
        names.push(istr(&r.str()?));
    }
    let n_cons = r.count()?;
    let mut cons = Vec::with_capacity(n_cons);
    for _ in 0..n_cons {
        // A raw arena handle is only honest if it names a live slot
        // whose intern-time hash matches the one recorded at encode
        // time; anything else (truncated id, cross-process stream, a
        // slot that means something different now) fails decode here
        // instead of panicking or dispatching on the wrong constructor.
        let id = ConId(r.u32()?);
        let hash = r.u64()?;
        if !id.is_valid() || id.node_hash() != hash {
            return None;
        }
        cons.push(id);
    }
    let n_syms = r.count()?;
    let mut syms = Vec::with_capacity(n_syms);
    for _ in 0..n_syms {
        let name = r.str()?;
        let id = r.u32()?;
        syms.push(Sym::from_raw(istr(&name), id));
    }
    let n_subs = r.count()?;
    let mut subs = Vec::with_capacity(n_subs);
    for _ in 0..n_subs {
        subs.push(Arc::new(decode_one(r)?));
    }
    Some(Chunk {
        label,
        has_param,
        cparam,
        n_slots,
        caps,
        ops,
        consts,
        names,
        cons,
        syms,
        subs,
    })
}

/// Deserializes a chunk encoded by [`encode_chunk`]. Returns `None` on
/// any malformed input: truncation, bad tags, invalid UTF-8, an arena
/// generation other than the current one, or a constructor handle that
/// does not name a live arena slot with the recorded node hash. Only
/// valid in the process (and arena generation) that encoded it:
/// constructor handles are raw arena ids.
pub fn decode_chunk(bytes: &[u8]) -> Option<Arc<Chunk>> {
    let mut r = Reader { bytes, pos: 0 };
    if r.u64()? != ur_core::arena::generation() {
        return None;
    }
    let c = decode_one(&mut r)?;
    if r.pos != bytes.len() {
        return None;
    }
    Some(Arc::new(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ur_core::con::Con;
    use ur_core::kind::Kind;

    fn compile_simple(e: &RExpr) -> Arc<Chunk> {
        let genv = Env::new();
        let mut cx = Cx::new();
        compile(&genv, &mut cx, e, "test")
    }

    #[test]
    fn chunks_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Chunk>();
    }

    #[test]
    fn literal_compiles_to_const_ret() {
        let c = compile_simple(&Expr::lit(Lit::Int(7)));
        assert_eq!(c.ops, vec![Op::Const(0), Op::Ret]);
        assert_eq!(c.consts, vec![Lit::Int(7)]);
    }

    #[test]
    fn constant_pool_dedups_repeated_literals() {
        // (1 + 1) shape without builtins: if true then 1 else 1, plus a
        // repeated string in both branches.
        let one = Expr::lit(Lit::Int(1));
        let e = Expr::if_(Expr::lit(Lit::Bool(true)), one, one);
        let c = compile_simple(&e);
        assert_eq!(c.consts.len(), 2, "true + a single 1: {:?}", c.consts);
    }

    #[test]
    fn floats_dedup_by_bits() {
        let x = Expr::lit(Lit::Float(1.5));
        let e = Expr::if_(Expr::lit(Lit::Bool(false)), x, x);
        let c = compile_simple(&e);
        assert_eq!(c.consts.len(), 2);
    }

    #[test]
    fn static_field_names_use_the_name_table() {
        let rec = Expr::record(vec![
            (Con::name("A"), Expr::lit(Lit::Int(1))),
            (Con::name("B"), Expr::lit(Lit::Int(2))),
        ]);
        let c = compile_simple(&Expr::proj(rec, Con::name("B")));
        assert!(c.cons.is_empty(), "closed names must not need runtime cons");
        assert_eq!(c.names.len(), 2);
        assert!(c.ops.iter().any(|o| matches!(o, Op::ProjStatic(_))));
    }

    #[test]
    fn variable_field_names_stay_dynamic() {
        let nm = Sym::fresh("nm");
        let x = Sym::fresh("x");
        let body = Expr::lam(
            x,
            Con::record(Con::row_one(Con::var(&nm), Con::int())),
            Expr::proj(Expr::var(&x), Con::var(&nm)),
        );
        let c = compile_simple(&Expr::clam(nm, Kind::Name, body));
        let lam = &c.subs[0].subs[0];
        assert_eq!(lam.cons.len(), 1, "projection under a name variable");
        assert!(lam.ops.iter().any(|o| matches!(o, Op::NameDyn(_))));
    }

    #[test]
    fn let_binds_a_slot() {
        let x = Sym::fresh("x");
        let e = Expr::let_(x, Con::int(), Expr::lit(Lit::Int(5)), Expr::var(&x));
        let c = compile_simple(&e);
        assert_eq!(
            c.ops,
            vec![Op::Const(0), Op::SetLocal(0), Op::Local(0), Op::Ret]
        );
        assert_eq!(c.n_slots, 1);
    }

    #[test]
    fn free_variables_capture_through_nested_functions() {
        // fn a => fn b => a  — inner chunk captures a from the outer.
        let a = Sym::fresh("a");
        let b = Sym::fresh("b");
        let e = Expr::lam(a, Con::int(), Expr::lam(b, Con::int(), Expr::var(&a)));
        let c = compile_simple(&e);
        let outer = &c.subs[0];
        let inner = &outer.subs[0];
        assert_eq!(inner.caps, vec![(0, 1)], "capture a from outer slot 0");
        assert!(inner.ops.contains(&Op::Local(1)));
    }

    #[test]
    fn root_free_variables_become_globals() {
        let g = Sym::fresh("g");
        let c = compile_simple(&Expr::var(&g));
        assert_eq!(c.syms, vec![g]);
        assert_eq!(c.ops, vec![Op::Global(0), Op::Ret]);
    }

    #[test]
    fn if_jumps_are_patched() {
        let e = Expr::if_(
            Expr::lit(Lit::Bool(true)),
            Expr::lit(Lit::Int(1)),
            Expr::lit(Lit::Int(2)),
        );
        let c = compile_simple(&e);
        // const(true) jf const(1) jmp const(2) ret
        assert_eq!(c.ops[1], Op::JumpIfFalse(4));
        assert_eq!(c.ops[3], Op::Jump(5));
        assert_eq!(c.ops[5], Op::Ret);
    }

    #[test]
    fn call2_only_fires_on_pure_second_arguments() {
        let g = Sym::fresh("g");
        let h = Sym::fresh("h");
        // Literal second argument: superinstruction.
        let pure = Expr::app(
            Expr::app(Expr::var(&g), Expr::lit(Lit::Int(1))),
            Expr::lit(Lit::Int(2)),
        );
        let c = compile_simple(&pure);
        assert!(c.ops.contains(&Op::Call2), "{:?}", c.ops);

        // An application as the second argument can error or effect
        // before the inner application the interpreter performs first:
        // two ordinary calls in interpreter order.
        let impure = Expr::app(
            Expr::app(Expr::var(&g), Expr::lit(Lit::Int(1))),
            Expr::app(Expr::var(&h), Expr::lit(Lit::Int(3))),
        );
        let c = compile_simple(&impure);
        assert!(!c.ops.contains(&Op::Call2), "{:?}", c.ops);
        assert_eq!(
            c.ops.iter().filter(|o| matches!(o, Op::Call)).count(),
            3,
            "{:?}",
            c.ops
        );

        // A global second argument resolves at runtime (may raise
        // UnboundVar or run a nullary builtin): not pure either.
        let global_arg = Expr::app(
            Expr::app(Expr::var(&g), Expr::lit(Lit::Int(1))),
            Expr::var(&h),
        );
        let c = compile_simple(&global_arg);
        assert!(!c.ops.contains(&Op::Call2), "{:?}", c.ops);

        // A local second argument is pure: superinstruction.
        let x = Sym::fresh("x");
        let local_arg = Expr::lam(
            x,
            Con::int(),
            Expr::app(
                Expr::app(Expr::var(&g), Expr::lit(Lit::Int(1))),
                Expr::var(&x),
            ),
        );
        let c = compile_simple(&local_arg);
        assert!(c.subs[0].ops.contains(&Op::Call2), "{:?}", c.subs[0].ops);
    }

    #[test]
    fn encode_decode_round_trips() {
        let x = Sym::fresh("x");
        let e = Expr::let_(
            x,
            Con::int(),
            Expr::lit(Lit::Int(5)),
            Expr::lam(
                Sym::fresh("y"),
                Con::int(),
                Expr::proj(
                    Expr::record(vec![(Con::name("A"), Expr::var(&x))]),
                    Con::name("A"),
                ),
            ),
        );
        let c = compile_simple(&e);
        let bytes = encode_chunk(&c);
        let back = decode_chunk(&bytes).expect("decodes");
        assert_eq!(*back, *c);
    }

    #[test]
    fn decode_rejects_malformed_input() {
        let c = compile_simple(&Expr::lit(Lit::Int(1)));
        let bytes = encode_chunk(&c);
        assert!(decode_chunk(&bytes[..bytes.len() - 1]).is_none(), "truncated");
        // Bytes 0..8 are the arena generation stamp; the magic follows.
        let mut stale = bytes.clone();
        stale[0] ^= 0xFF;
        assert!(decode_chunk(&stale).is_none(), "wrong arena generation");
        let mut bad = bytes.clone();
        bad[8] ^= 0xFF;
        assert!(decode_chunk(&bad).is_none(), "bad magic");
        assert!(decode_chunk(&[]).is_none(), "empty");
    }

    #[test]
    fn decode_rejects_forged_con_handles() {
        // Projection under a name variable keeps a runtime constructor
        // in the chunk's con table — the raw arena handle the codec has
        // to guard.
        let nm = Sym::fresh("nm");
        let x = Sym::fresh("x");
        let body = Expr::lam(
            x,
            Con::record(Con::row_one(Con::var(&nm), Con::int())),
            Expr::proj(Expr::var(&x), Con::var(&nm)),
        );
        let c = compile_simple(&Expr::clam(nm, Kind::Name, body));
        let bytes = encode_chunk(&c);
        assert!(decode_chunk(&bytes).is_some(), "clean stream decodes");

        let id = c.subs[0].subs[0].cons[0];
        let mut entry = id.0.to_le_bytes().to_vec();
        entry.extend_from_slice(&id.node_hash().to_le_bytes());
        let pos = bytes
            .windows(entry.len())
            .position(|w| w == entry.as_slice())
            .expect("con entry present in the stream");

        // An id that names no live slot fails decode...
        let mut forged = bytes.clone();
        forged[pos..pos + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_chunk(&forged).is_none(), "dangling con id decoded");

        // ...and so does a live id whose recorded hash disagrees (a
        // cross-process or reused slot).
        let mut mismatched = bytes;
        mismatched[pos + 4] ^= 0xFF;
        assert!(
            decode_chunk(&mismatched).is_none(),
            "node-hash mismatch decoded"
        );
    }
}
