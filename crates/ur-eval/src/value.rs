//! Runtime values of the Ur interpreter.
//!
//! The interpreter is *type-passing*: constructor abstractions are real
//! closures and constructor arguments are carried at runtime, so that
//! first-class names (`e.nm` under a name variable) resolve to concrete
//! field names. (The real Ur/Web compiler instead erases all polymorphism
//! by whole-program monomorphization, §5 — a performance technique we
//! substitute with interpretation; see DESIGN.md.)

use crate::error::{EvalError, EvalErrorKind};
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use ur_core::con::RCon;
use ur_core::expr::RExpr;
use ur_core::sym::Sym;
use ur_db::{ColTy, SqlExpr};

/// Runtime environments: value and constructor bindings. Cloned on
/// closure capture.
#[derive(Clone, Debug, Default)]
pub struct VEnv {
    pub vals: HashMap<Sym, Value>,
    pub cons: HashMap<Sym, RCon>,
}

impl VEnv {
    pub fn new() -> VEnv {
        VEnv::default()
    }

    pub fn with_val(&self, x: Sym, v: Value) -> VEnv {
        let mut out = self.clone();
        out.vals.insert(x, v);
        out
    }

    pub fn with_con(&self, a: Sym, c: RCon) -> VEnv {
        let mut out = self.clone();
        out.cons.insert(a, c);
        out
    }
}

/// A value-level closure `fn x : t => e`.
#[derive(Clone, Debug)]
pub struct Closure {
    pub env: VEnv,
    pub param: Sym,
    pub body: RExpr,
}

/// A constructor-level closure `fn [a :: k] => e`.
#[derive(Clone, Debug)]
pub struct CClosure {
    pub env: VEnv,
    pub param: Sym,
    pub body: RExpr,
}

/// A suspended guard abstraction `fn [c1 ~ c2] => e`, forced by `!`.
#[derive(Clone, Debug)]
pub struct DSusp {
    pub env: VEnv,
    pub body: RExpr,
}

/// A library primitive: `arity` counts *value* arguments and `con_arity`
/// counts constructor arguments; the implementation runs once both are
/// saturated (guard applications `!` are erased).
pub struct Builtin {
    pub name: String,
    pub con_arity: usize,
    pub arity: usize,
    #[allow(clippy::type_complexity)]
    pub run: Rc<
        dyn Fn(&mut crate::interp::Interp<'_>, &[RCon], &[Value]) -> Result<Value, EvalError>,
    >,
}

impl fmt::Debug for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<builtin {} / {}>", self.name, self.arity)
    }
}

/// A (possibly partially applied) builtin.
#[derive(Clone, Debug)]
pub struct BuiltinApp {
    pub spec: Rc<Builtin>,
    pub cons: Vec<RCon>,
    pub args: Vec<Value>,
}

/// A document tree — the runtime form of the typed `xml ctx` family.
/// Strings enter only through `Text`, which is escaped at render time, so
/// a constructed tree can never inject markup.
#[derive(Clone, Debug, PartialEq)]
pub enum XmlVal {
    /// The empty document.
    Empty,
    /// Raw text, escaped when rendered.
    Text(String),
    /// An element with attributes and children.
    Tag {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<XmlVal>,
    },
    /// Concatenation.
    Seq(Vec<XmlVal>),
}

impl XmlVal {
    /// Renders to HTML text with all text nodes and attribute values
    /// escaped.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            XmlVal::Empty => {}
            XmlVal::Text(t) => out.push_str(&escape_text(t)),
            XmlVal::Tag {
                name,
                attrs,
                children,
            } => {
                out.push('<');
                out.push_str(name);
                for (k, v) in attrs {
                    out.push(' ');
                    out.push_str(k);
                    out.push_str("=\"");
                    out.push_str(&escape_attr(v));
                    out.push('"');
                }
                out.push('>');
                for c in children {
                    c.render_into(out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
            XmlVal::Seq(items) => {
                for i in items {
                    i.render_into(out);
                }
            }
        }
    }
}

/// Escapes character data.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes attribute values (additionally quotes).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

/// A runtime value.
#[derive(Clone, Debug)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(Rc<str>),
    Bool(bool),
    Unit,
    /// A record; field names are concrete at runtime. The map is
    /// behind an `Rc` so pushing, capturing, or passing a record is a
    /// reference bump, not a deep clone — only the record *operations*
    /// (`++`, `--`) copy, and only when the map is shared.
    Record(Rc<BTreeMap<Rc<str>, Value>>),
    Closure(Rc<Closure>),
    CClosure(Rc<CClosure>),
    DSusp(Rc<DSusp>),
    /// A compiled closure `fn x : t => e` (see `crate::vm`). Displays
    /// like [`Value::Closure`]; the two engines' results stay
    /// observationally identical.
    VmClosure(Rc<crate::vm::VmFn>),
    /// A compiled constructor closure `fn [a :: k] => e`.
    VmCClosure(Rc<crate::vm::VmFn>),
    /// A compiled suspended guard abstraction, forced by `!`.
    VmDSusp(Rc<crate::vm::VmFn>),
    Builtin(Rc<BuiltinApp>),
    /// A homogeneous list (`list t`).
    List(Rc<Vec<Value>>),
    /// An optional value (`option t`).
    Opt(Option<Rc<Value>>),
    /// A typed document tree (`xml ctx`).
    Xml(Rc<XmlVal>),
    /// A SQL expression (`sql_exp r t`).
    SqlExp(Rc<SqlExpr>),
    /// A handle to a database table (`sql_table r`).
    SqlTable(Rc<str>),
    /// A column-type witness (`sql_type t`).
    SqlType(ColTy),
}

impl Value {
    pub fn str(s: impl Into<Rc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Extracts an `i64`, or errors.
    pub fn as_int(&self) -> Result<i64, EvalError> {
        match self {
            Value::Int(n) => Ok(*n),
            other => Err(Value::mismatch("int", other)),
        }
    }

    pub fn as_float(&self) -> Result<f64, EvalError> {
        match self {
            Value::Float(x) => Ok(*x),
            other => Err(Value::mismatch("float", other)),
        }
    }

    pub fn as_str(&self) -> Result<Rc<str>, EvalError> {
        match self {
            Value::Str(s) => Ok(Rc::clone(s)),
            other => Err(Value::mismatch("string", other)),
        }
    }

    pub fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(Value::mismatch("bool", other)),
        }
    }

    pub fn as_record(&self) -> Result<&BTreeMap<Rc<str>, Value>, EvalError> {
        match self {
            Value::Record(r) => Ok(&**r),
            other => Err(Value::mismatch("record", other)),
        }
    }

    /// Builds a record value from an owned field map.
    pub fn record(map: BTreeMap<Rc<str>, Value>) -> Value {
        Value::Record(Rc::new(map))
    }

    pub fn as_list(&self) -> Result<&[Value], EvalError> {
        match self {
            Value::List(l) => Ok(l),
            other => Err(Value::mismatch("list", other)),
        }
    }

    pub fn as_xml(&self) -> Result<&XmlVal, EvalError> {
        match self {
            Value::Xml(x) => Ok(x),
            other => Err(Value::mismatch("xml", other)),
        }
    }

    pub fn as_sql_exp(&self) -> Result<&SqlExpr, EvalError> {
        match self {
            Value::SqlExp(e) => Ok(e),
            other => Err(Value::mismatch("SQL expression", other)),
        }
    }

    fn mismatch(wanted: &str, got: &Value) -> EvalError {
        EvalError::of_kind(
            EvalErrorKind::TypeMismatch,
            format!("expected {wanted}, got {got}"),
        )
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => write!(f, "{x:?}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{}", if *b { "True" } else { "False" }),
            Value::Unit => write!(f, "()"),
            Value::Record(r) => {
                write!(f, "{{")?;
                for (i, (k, v)) in r.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} = {v}")?;
                }
                write!(f, "}}")
            }
            Value::Closure(_) | Value::VmClosure(_) => write!(f, "<fn>"),
            Value::CClosure(_) | Value::VmCClosure(_) => write!(f, "<polyfn>"),
            Value::DSusp(_) | Value::VmDSusp(_) => write!(f, "<guarded>"),
            Value::Builtin(b) => write!(f, "<builtin {}>", b.spec.name),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Opt(None) => write!(f, "None"),
            Value::Opt(Some(v)) => write!(f, "Some {v}"),
            Value::Xml(x) => write!(f, "{}", x.render()),
            Value::SqlExp(e) => write!(f, "{e}"),
            Value::SqlTable(t) => write!(f, "<table {t}>"),
            Value::SqlType(t) => write!(f, "<sql_type {t}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_text() {
        assert_eq!(
            escape_text("<script>alert('x') & more</script>"),
            "&lt;script&gt;alert('x') &amp; more&lt;/script&gt;"
        );
    }

    #[test]
    fn escaping_attrs() {
        assert_eq!(escape_attr("a\"b'c"), "a&quot;b&#39;c");
    }

    #[test]
    fn xml_render_escapes_nested_text() {
        let x = XmlVal::Tag {
            name: "td".into(),
            attrs: vec![],
            children: vec![XmlVal::Text("<b>bold?</b>".into())],
        };
        assert_eq!(x.render(), "<td>&lt;b&gt;bold?&lt;/b&gt;</td>");
    }

    #[test]
    fn xml_render_attrs() {
        let x = XmlVal::Tag {
            name: "input".into(),
            attrs: vec![("name".into(), "a\"b".into())],
            children: vec![],
        };
        assert_eq!(x.render(), "<input name=\"a&quot;b\"></input>");
    }

    #[test]
    fn xml_seq_and_empty() {
        let x = XmlVal::Seq(vec![
            XmlVal::Text("a".into()),
            XmlVal::Empty,
            XmlVal::Text("b".into()),
        ]);
        assert_eq!(x.render(), "ab");
    }

    #[test]
    fn value_display() {
        let mut r = BTreeMap::new();
        r.insert(Rc::from("A"), Value::Int(1));
        assert_eq!(Value::record(r).to_string(), "{A = 1}");
        assert_eq!(Value::List(Rc::new(vec![Value::Int(1)])).to_string(), "[1]");
        assert_eq!(Value::Opt(None).to_string(), "None");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert!(Value::Int(3).as_str().is_err());
        assert!(Value::Bool(true).as_bool().unwrap());
    }

    #[test]
    fn accessor_errors_are_type_mismatches() {
        use crate::error::EvalErrorKind;
        assert_eq!(Value::Unit.as_int().unwrap_err().kind, EvalErrorKind::TypeMismatch);
        assert_eq!(Value::Int(1).as_float().unwrap_err().kind, EvalErrorKind::TypeMismatch);
        assert_eq!(Value::Int(1).as_str().unwrap_err().kind, EvalErrorKind::TypeMismatch);
        assert_eq!(Value::Int(1).as_bool().unwrap_err().kind, EvalErrorKind::TypeMismatch);
        assert_eq!(Value::Int(1).as_record().unwrap_err().kind, EvalErrorKind::TypeMismatch);
        assert_eq!(Value::Int(1).as_list().unwrap_err().kind, EvalErrorKind::TypeMismatch);
        assert_eq!(Value::Int(1).as_xml().unwrap_err().kind, EvalErrorKind::TypeMismatch);
        assert_eq!(Value::Int(1).as_sql_exp().unwrap_err().kind, EvalErrorKind::TypeMismatch);
    }

    #[test]
    fn display_covers_every_scalar_shape() {
        assert_eq!(Value::Int(-7).to_string(), "-7");
        assert_eq!(Value::Float(1.5).to_string(), "1.5");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Bool(false).to_string(), "False");
        assert_eq!(Value::Unit.to_string(), "()");
        assert_eq!(Value::Opt(Some(Rc::new(Value::Int(2)))).to_string(), "Some 2");
        assert_eq!(Value::SqlTable(Rc::from("t")).to_string(), "<table t>");
    }

    #[test]
    fn record_display_is_sorted_by_field_name() {
        // BTreeMap keys iterate sorted, so insertion order never leaks
        // into the rendered value — the invariant the differential
        // suites rely on when comparing engines by display.
        let mut r = BTreeMap::new();
        r.insert(Rc::from("B"), Value::Int(2));
        r.insert(Rc::from("A"), Value::Int(1));
        r.insert(Rc::from("C"), Value::Int(3));
        assert_eq!(Value::record(r).to_string(), "{A = 1, B = 2, C = 3}");
    }

    #[test]
    fn record_accessor_returns_ordered_map() {
        let mut r = BTreeMap::new();
        r.insert(Rc::from("Z"), Value::Int(26));
        r.insert(Rc::from("A"), Value::Int(1));
        let v = Value::record(r);
        let keys: Vec<&str> = v.as_record().unwrap().keys().map(|k| k.as_ref()).collect();
        assert_eq!(keys, vec!["A", "Z"]);
    }

    #[test]
    fn nested_record_display() {
        let mut inner = BTreeMap::new();
        inner.insert(Rc::from("X"), Value::str("s"));
        let mut outer = BTreeMap::new();
        outer.insert(Rc::from("R"), Value::record(inner));
        outer.insert(Rc::from("N"), Value::Int(0));
        assert_eq!(Value::record(outer).to_string(), "{N = 0, R = {X = \"s\"}}");
    }
}
