//! Runtime values of the Ur interpreter.
//!
//! The interpreter is *type-passing*: constructor abstractions are real
//! closures and constructor arguments are carried at runtime, so that
//! first-class names (`e.nm` under a name variable) resolve to concrete
//! field names. (The real Ur/Web compiler instead erases all polymorphism
//! by whole-program monomorphization, §5 — a performance technique we
//! substitute with interpretation; see DESIGN.md.)

use crate::error::EvalError;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use ur_core::con::RCon;
use ur_core::expr::RExpr;
use ur_core::sym::Sym;
use ur_db::{ColTy, SqlExpr};

/// Runtime environments: value and constructor bindings. Cloned on
/// closure capture.
#[derive(Clone, Debug, Default)]
pub struct VEnv {
    pub vals: HashMap<Sym, Value>,
    pub cons: HashMap<Sym, RCon>,
}

impl VEnv {
    pub fn new() -> VEnv {
        VEnv::default()
    }

    pub fn with_val(&self, x: Sym, v: Value) -> VEnv {
        let mut out = self.clone();
        out.vals.insert(x, v);
        out
    }

    pub fn with_con(&self, a: Sym, c: RCon) -> VEnv {
        let mut out = self.clone();
        out.cons.insert(a, c);
        out
    }
}

/// A value-level closure `fn x : t => e`.
#[derive(Clone, Debug)]
pub struct Closure {
    pub env: VEnv,
    pub param: Sym,
    pub body: RExpr,
}

/// A constructor-level closure `fn [a :: k] => e`.
#[derive(Clone, Debug)]
pub struct CClosure {
    pub env: VEnv,
    pub param: Sym,
    pub body: RExpr,
}

/// A suspended guard abstraction `fn [c1 ~ c2] => e`, forced by `!`.
#[derive(Clone, Debug)]
pub struct DSusp {
    pub env: VEnv,
    pub body: RExpr,
}

/// A library primitive: `arity` counts *value* arguments and `con_arity`
/// counts constructor arguments; the implementation runs once both are
/// saturated (guard applications `!` are erased).
pub struct Builtin {
    pub name: String,
    pub con_arity: usize,
    pub arity: usize,
    #[allow(clippy::type_complexity)]
    pub run: Rc<
        dyn Fn(&mut crate::interp::Interp<'_>, &[RCon], &[Value]) -> Result<Value, EvalError>,
    >,
}

impl fmt::Debug for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<builtin {} / {}>", self.name, self.arity)
    }
}

/// A (possibly partially applied) builtin.
#[derive(Clone, Debug)]
pub struct BuiltinApp {
    pub spec: Rc<Builtin>,
    pub cons: Vec<RCon>,
    pub args: Vec<Value>,
}

/// A document tree — the runtime form of the typed `xml ctx` family.
/// Strings enter only through `Text`, which is escaped at render time, so
/// a constructed tree can never inject markup.
#[derive(Clone, Debug, PartialEq)]
pub enum XmlVal {
    /// The empty document.
    Empty,
    /// Raw text, escaped when rendered.
    Text(String),
    /// An element with attributes and children.
    Tag {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<XmlVal>,
    },
    /// Concatenation.
    Seq(Vec<XmlVal>),
}

impl XmlVal {
    /// Renders to HTML text with all text nodes and attribute values
    /// escaped.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            XmlVal::Empty => {}
            XmlVal::Text(t) => out.push_str(&escape_text(t)),
            XmlVal::Tag {
                name,
                attrs,
                children,
            } => {
                out.push('<');
                out.push_str(name);
                for (k, v) in attrs {
                    out.push(' ');
                    out.push_str(k);
                    out.push_str("=\"");
                    out.push_str(&escape_attr(v));
                    out.push('"');
                }
                out.push('>');
                for c in children {
                    c.render_into(out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
            XmlVal::Seq(items) => {
                for i in items {
                    i.render_into(out);
                }
            }
        }
    }
}

/// Escapes character data.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes attribute values (additionally quotes).
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            other => out.push(other),
        }
    }
    out
}

/// A runtime value.
#[derive(Clone, Debug)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(Rc<str>),
    Bool(bool),
    Unit,
    /// A record; field names are concrete at runtime.
    Record(BTreeMap<Rc<str>, Value>),
    Closure(Rc<Closure>),
    CClosure(Rc<CClosure>),
    DSusp(Rc<DSusp>),
    Builtin(Rc<BuiltinApp>),
    /// A homogeneous list (`list t`).
    List(Rc<Vec<Value>>),
    /// An optional value (`option t`).
    Opt(Option<Rc<Value>>),
    /// A typed document tree (`xml ctx`).
    Xml(Rc<XmlVal>),
    /// A SQL expression (`sql_exp r t`).
    SqlExp(Rc<SqlExpr>),
    /// A handle to a database table (`sql_table r`).
    SqlTable(Rc<str>),
    /// A column-type witness (`sql_type t`).
    SqlType(ColTy),
}

impl Value {
    pub fn str(s: impl Into<Rc<str>>) -> Value {
        Value::Str(s.into())
    }

    /// Extracts an `i64`, or errors.
    pub fn as_int(&self) -> Result<i64, EvalError> {
        match self {
            Value::Int(n) => Ok(*n),
            other => Err(EvalError::new(format!("expected int, got {other}"))),
        }
    }

    pub fn as_float(&self) -> Result<f64, EvalError> {
        match self {
            Value::Float(x) => Ok(*x),
            other => Err(EvalError::new(format!("expected float, got {other}"))),
        }
    }

    pub fn as_str(&self) -> Result<Rc<str>, EvalError> {
        match self {
            Value::Str(s) => Ok(Rc::clone(s)),
            other => Err(EvalError::new(format!("expected string, got {other}"))),
        }
    }

    pub fn as_bool(&self) -> Result<bool, EvalError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EvalError::new(format!("expected bool, got {other}"))),
        }
    }

    pub fn as_record(&self) -> Result<&BTreeMap<Rc<str>, Value>, EvalError> {
        match self {
            Value::Record(r) => Ok(r),
            other => Err(EvalError::new(format!("expected record, got {other}"))),
        }
    }

    pub fn as_list(&self) -> Result<&[Value], EvalError> {
        match self {
            Value::List(l) => Ok(l),
            other => Err(EvalError::new(format!("expected list, got {other}"))),
        }
    }

    pub fn as_xml(&self) -> Result<&XmlVal, EvalError> {
        match self {
            Value::Xml(x) => Ok(x),
            other => Err(EvalError::new(format!("expected xml, got {other}"))),
        }
    }

    pub fn as_sql_exp(&self) -> Result<&SqlExpr, EvalError> {
        match self {
            Value::SqlExp(e) => Ok(e),
            other => Err(EvalError::new(format!(
                "expected SQL expression, got {other}"
            ))),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Float(x) => write!(f, "{x:?}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{}", if *b { "True" } else { "False" }),
            Value::Unit => write!(f, "()"),
            Value::Record(r) => {
                write!(f, "{{")?;
                for (i, (k, v)) in r.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} = {v}")?;
                }
                write!(f, "}}")
            }
            Value::Closure(_) => write!(f, "<fn>"),
            Value::CClosure(_) => write!(f, "<polyfn>"),
            Value::DSusp(_) => write!(f, "<guarded>"),
            Value::Builtin(b) => write!(f, "<builtin {}>", b.spec.name),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Opt(None) => write!(f, "None"),
            Value::Opt(Some(v)) => write!(f, "Some {v}"),
            Value::Xml(x) => write!(f, "{}", x.render()),
            Value::SqlExp(e) => write!(f, "{e}"),
            Value::SqlTable(t) => write!(f, "<table {t}>"),
            Value::SqlType(t) => write!(f, "<sql_type {t}>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_text() {
        assert_eq!(
            escape_text("<script>alert('x') & more</script>"),
            "&lt;script&gt;alert('x') &amp; more&lt;/script&gt;"
        );
    }

    #[test]
    fn escaping_attrs() {
        assert_eq!(escape_attr("a\"b'c"), "a&quot;b&#39;c");
    }

    #[test]
    fn xml_render_escapes_nested_text() {
        let x = XmlVal::Tag {
            name: "td".into(),
            attrs: vec![],
            children: vec![XmlVal::Text("<b>bold?</b>".into())],
        };
        assert_eq!(x.render(), "<td>&lt;b&gt;bold?&lt;/b&gt;</td>");
    }

    #[test]
    fn xml_render_attrs() {
        let x = XmlVal::Tag {
            name: "input".into(),
            attrs: vec![("name".into(), "a\"b".into())],
            children: vec![],
        };
        assert_eq!(x.render(), "<input name=\"a&quot;b\"></input>");
    }

    #[test]
    fn xml_seq_and_empty() {
        let x = XmlVal::Seq(vec![
            XmlVal::Text("a".into()),
            XmlVal::Empty,
            XmlVal::Text("b".into()),
        ]);
        assert_eq!(x.render(), "ab");
    }

    #[test]
    fn value_display() {
        let mut r = BTreeMap::new();
        r.insert(Rc::from("A"), Value::Int(1));
        assert_eq!(Value::Record(r).to_string(), "{A = 1}");
        assert_eq!(Value::List(Rc::new(vec![Value::Int(1)])).to_string(), "[1]");
        assert_eq!(Value::Opt(None).to_string(), "None");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int().unwrap(), 3);
        assert!(Value::Int(3).as_str().is_err());
        assert!(Value::Bool(true).as_bool().unwrap());
    }
}
