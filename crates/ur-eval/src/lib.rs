// Library code must be panic-free: unwrap/expect/panic are denied
// outside cfg(test) (see docs/ROBUSTNESS.md).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! # ur-eval — call-by-value interpreter for elaborated Ur
//!
//! The paper specifies Ur's dynamic semantics by elaboration into the
//! Calculus of Inductive Constructions (§3.3) and implements it with a
//! whole-program monomorphizing compiler (§5). This crate substitutes a
//! *type-passing* interpreter: constructor abstraction/application are
//! runtime closures, so first-class names resolve to concrete record
//! fields at projection time. Observable behaviour of every paper example
//! is preserved (see DESIGN.md §3).
//!
//! Builtins (the Ur/Web standard library primitives, supplied by `ur-web`)
//! receive the accumulated constructor arguments, the evaluated value
//! arguments, and mutable access to the [`interp::World`] (database +
//! debug output).

pub mod error;
pub mod interp;
pub mod value;

pub use error::EvalError;
pub use interp::{Interp, World};
pub use value::{Builtin, BuiltinApp, VEnv, Value, XmlVal};
