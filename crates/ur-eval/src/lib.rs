// Library code must be panic-free: unwrap/expect/panic are denied
// outside cfg(test) (see docs/ROBUSTNESS.md).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! # ur-eval — call-by-value interpreter for elaborated Ur
//!
//! The paper specifies Ur's dynamic semantics by elaboration into the
//! Calculus of Inductive Constructions (§3.3) and implements it with a
//! whole-program monomorphizing compiler (§5). This crate substitutes a
//! *type-passing* interpreter: constructor abstraction/application are
//! runtime closures, so first-class names resolve to concrete record
//! fields at projection time. Observable behaviour of every paper example
//! is preserved (see DESIGN.md §3).
//!
//! Builtins (the Ur/Web standard library primitives, supplied by `ur-web`)
//! receive the accumulated constructor arguments, the evaluated value
//! arguments, and mutable access to the [`interp::World`] (database +
//! debug output).
//!
//! Two execution engines share that machinery (DESIGN.md §7): the
//! tree-walking interpreter in [`interp`] — the semantic reference — and
//! a bytecode VM ([`compile`] lowers core terms to flat [`compile::Chunk`]s,
//! [`vm`] executes them) that is the default in `ur-web` sessions. The
//! differential test suites run both and require identical observable
//! results; [`EvalEngine`] selects an engine at the embedder level.

pub mod compile;
pub mod error;
pub mod interp;
pub mod value;
pub mod vm;

pub use compile::{compile, decode_chunk, encode_chunk, Chunk, Op};
pub use error::{EvalError, EvalErrorKind};
pub use interp::{Interp, World};
pub use value::{Builtin, BuiltinApp, VEnv, Value, XmlVal};
pub use vm::EvalStats;

/// Which execution engine an embedder runs elaborated declarations on.
/// The VM is the default; the interpreter remains as the differential
/// oracle and as an escape hatch (`--eval=interp`, `UR_EVAL=interp`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalEngine {
    /// Compile to bytecode and run on [`vm`] (default).
    #[default]
    Vm,
    /// Walk the core term directly with [`interp::Interp`].
    Interp,
}

impl EvalEngine {
    /// Parses a `--eval=` / `UR_EVAL=` engine name.
    pub fn parse(s: &str) -> Option<EvalEngine> {
        match s {
            "vm" => Some(EvalEngine::Vm),
            "interp" => Some(EvalEngine::Interp),
            _ => None,
        }
    }

    /// The flag-value name (`vm` / `interp`).
    pub fn name(self) -> &'static str {
        match self {
            EvalEngine::Vm => "vm",
            EvalEngine::Interp => "interp",
        }
    }
}

#[cfg(test)]
mod engine_tests {
    use super::EvalEngine;

    #[test]
    fn parse_round_trips() {
        for e in [EvalEngine::Vm, EvalEngine::Interp] {
            assert_eq!(EvalEngine::parse(e.name()), Some(e));
        }
        assert_eq!(EvalEngine::parse("jit"), None);
    }

    #[test]
    fn default_is_vm() {
        assert_eq!(EvalEngine::default(), EvalEngine::Vm);
    }
}
