//! The bytecode VM: a stack machine over [`crate::compile::Chunk`]s.
//!
//! Execution reuses the interpreter's value representation
//! ([`crate::value::Value`]) and its [`Interp`] for everything effectful
//! — builtins, constructor normalization, world state — so the two
//! engines agree observationally by construction wherever they share
//! code, and the differential suites check everything else.
//!
//! Locals live in a flat frame (`Vec<Value>`), indexed directly by slots
//! assigned at compile time; entering a binder never clones an
//! environment. Compiled closures capture *by value* exactly like the
//! interpreter's environment clone, but copy only the slots the body
//! actually mentions. Values from the two engines mix freely: `Op::Call`
//! on a tree closure drops into [`Interp::apply`], and the interpreter
//! applying a [`Value::VmClosure`] re-enters [`call`] here, so
//! higher-order builtins (`foldList` and friends) work across engines.
//!
//! Constructor bindings (from constructor application of compiled
//! `CLam`s) are a persistent linked list — they are rare and shallow,
//! unlike value bindings — and dynamic field-name resolution mirrors
//! [`Interp::resolve_con`] against that list.

use crate::compile::{Chunk, Op};
use crate::error::{EvalError, EvalErrorKind};
use crate::interp::Interp;
use crate::value::{VEnv, Value};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;
use ur_core::arena::IStr;
use ur_core::con::{Con, RCon};
use ur_core::expr::Lit;
use ur_core::hnf::hnf;
use ur_core::subst::{fv, subst};
use ur_core::sym::Sym;

/// Counters a VM dispatch loop accumulates on its [`Interp`]; the
/// embedder folds them into session-wide [`ur_core::stats::Stats`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalStats {
    /// Bytecode instructions executed.
    pub vm_ops: u64,
    /// Wall-clock nanoseconds inside top-level [`run`] calls.
    pub dispatch_ns: u64,
}

/// One runtime constructor binding (introduced by constructor
/// application of a compiled `CLam`).
#[derive(Debug)]
pub struct ConsFrame {
    pub sym: Sym,
    pub con: RCon,
    pub next: ConsEnv,
}

/// A persistent stack of constructor bindings. `None` is empty.
pub type ConsEnv = Option<Rc<ConsFrame>>;

fn cons_lookup(env: &ConsEnv, x: Sym) -> Option<RCon> {
    let mut cur = env;
    while let Some(f) = cur {
        if f.sym == x {
            return Some(f.con);
        }
        cur = &f.next;
    }
    None
}

/// A compiled function value: a chunk plus everything its body needs
/// from the creation site. One struct serves value closures, constructor
/// closures, and guard suspensions (the chunk's `has_param`/`cparam`
/// say which entry protocol applies).
pub struct VmFn {
    pub chunk: Arc<Chunk>,
    /// Captured values, in `chunk.caps` order.
    pub captured: Box<[Value]>,
    /// Constructor bindings visible at the creation site.
    pub cons: ConsEnv,
    /// The global environment of the enclosing top-level run.
    pub globals: Rc<VEnv>,
    /// Lazily materialized `Rc<str>` forms of `chunk.names` — one
    /// allocation per name per closure instead of per record operation.
    name_cache: RefCell<Box<[Option<Rc<str>>]>>,
    /// The last constructor-application frame, reused when the same
    /// constructor argument arrives again. Metaprograms instantiated in
    /// a loop pass identical arguments every iteration; reusing the
    /// frame keeps the extended environment pointer-stable, which is
    /// what lets [`Interp::resolve_memo`] hit across iterations.
    last_capply: RefCell<Option<(RCon, ConsEnv)>>,
    /// Precomputed shortcut for the curried two-argument shape
    /// `fn x => fn y => e`: when the body is exactly `[Closure(0), Ret]`,
    /// [`Op::Call2`] can run the inner chunk directly, skipping both the
    /// outer frame and the intermediate closure allocation.
    curried: Option<CurriedInner>,
}

/// Where an inner capture of a curried function comes from when the
/// outer frame is skipped: the outer argument, or one of the outer
/// function's own captures.
#[derive(Clone, Copy)]
enum CapSrc {
    Arg,
    Cap(usize),
}

/// The precomputed inner-chunk entry for a curried two-argument
/// function (see [`VmFn::curried`]).
struct CurriedInner {
    chunk: Arc<Chunk>,
    /// One source per `chunk.caps` entry.
    srcs: Box<[CapSrc]>,
    name_cache: RefCell<Box<[Option<Rc<str>>]>>,
}

/// Detects the `fn x => fn y => e` shape: a value-parameter chunk whose
/// whole body makes closure 0 and returns it, where every capture of the
/// inner chunk is either the outer argument or an outer capture. (A
/// capture of another slot cannot arise from that shape, but a corrupt
/// decoded chunk could claim one — then the shortcut simply stays off.)
fn curried_inner(chunk: &Chunk) -> Option<CurriedInner> {
    if !(chunk.has_param && chunk.cparam.is_none()) {
        return None;
    }
    if chunk.ops.as_slice() != [Op::Closure(0), Op::Ret] {
        return None;
    }
    let sub = chunk.subs.first()?;
    if !(sub.has_param && sub.cparam.is_none()) {
        return None;
    }
    let mut srcs = Vec::with_capacity(sub.caps.len());
    for (parent_slot, _) in &sub.caps {
        if *parent_slot == 0 {
            srcs.push(CapSrc::Arg);
        } else {
            let j = chunk.caps.iter().position(|(_, self_slot)| self_slot == parent_slot)?;
            srcs.push(CapSrc::Cap(j));
        }
    }
    Some(CurriedInner {
        chunk: Arc::clone(sub),
        srcs: srcs.into_boxed_slice(),
        name_cache: RefCell::new(vec![None; sub.names.len()].into_boxed_slice()),
    })
}

impl VmFn {
    fn new(chunk: Arc<Chunk>, captured: Box<[Value]>, cons: ConsEnv, globals: Rc<VEnv>) -> VmFn {
        let name_cache = RefCell::new(vec![None; chunk.names.len()].into_boxed_slice());
        let curried = curried_inner(&chunk);
        VmFn {
            chunk,
            captured,
            cons,
            globals,
            name_cache,
            last_capply: RefCell::new(None),
            curried,
        }
    }
}

impl fmt::Debug for VmFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<vmfn {}>", self.chunk.label)
    }
}

fn corrupt(chunk: &Chunk, what: &str) -> EvalError {
    EvalError::new(format!("corrupt chunk {}: {what}", chunk.label))
}

/// Applies `f` to two arguments at once ([`Op::Call2`]). A builtin that
/// exactly these two arguments saturate runs directly — no intermediate
/// partial-application value is built — which is where curried
/// arithmetic spends its time. Everything else (closures, unsaturated
/// or over-applied builtins) falls back to two ordinary applications.
pub(crate) fn call2(
    interp: &mut Interp<'_>,
    f: Value,
    a: Value,
    b: Value,
) -> Result<Value, EvalError> {
    if let Value::VmClosure(vf) = &f {
        if let Some(inner) = &vf.curried {
            // `fn x => fn y => e` applied to both arguments at once: run
            // the inner chunk directly. The outer body would only have
            // built the intermediate closure, so skipping it is
            // unobservable — and the per-call closure allocation is
            // exactly what row-at-a-time loops spend their time on.
            let mut cap = interp.take_vec();
            for s in &inner.srcs {
                cap.push(match s {
                    CapSrc::Arg => a.clone(),
                    CapSrc::Cap(j) => vf.captured[*j].clone(),
                });
            }
            let r = exec(
                interp,
                &inner.chunk,
                Some(b),
                &cap,
                &vf.cons,
                &vf.globals,
                &inner.name_cache,
            );
            interp.give_vec(cap);
            return r;
        }
    }
    if let Value::Builtin(app) = &f {
        if app.cons.len() >= app.spec.con_arity && app.args.len() + 2 == app.spec.arity {
            let spec = Rc::clone(&app.spec);
            if app.args.is_empty() {
                return (spec.run)(interp, &app.cons, &[a, b]);
            }
            let mut args = interp.take_vec();
            args.extend_from_slice(&app.args);
            args.push(a);
            args.push(b);
            let r = (spec.run)(interp, &app.cons, &args);
            interp.give_vec(args);
            return r;
        }
    }
    let g = interp.apply(f, a)?;
    interp.apply(g, b)
}

/// Resolves runtime constructor bindings into `c` and head-normalizes —
/// the VM-side mirror of [`Interp::resolve_con`].
///
/// Memoized on the interpreter by `(c, head pointer of cons)`: the
/// binding list is immutable and the memo entry pins its head `Rc`, so
/// a pointer match proves the environment is the same one the result
/// was computed under. Render loops re-resolve the same names under the
/// same environments every iteration; after the first, resolution is
/// one hash lookup instead of a substitution + normalization pass.
fn resolve_con(interp: &mut Interp<'_>, cons: &ConsEnv, c: RCon) -> RCon {
    let key = (c, cons.as_ref().map_or(0, |rc| Rc::as_ptr(rc) as usize));
    if let Some((_, out)) = interp.resolve_memo.get(&key) {
        return *out;
    }
    let mut out = c;
    loop {
        let vars = fv(&out);
        let mut changed = false;
        for v in vars {
            if let Some(repl) = cons_lookup(cons, v) {
                out = subst(&out, &v, &repl);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    out = hnf(interp.genv, &mut interp.cx, &out);
    interp.memo_resolution(key, cons.clone(), out);
    out
}

fn resolve_name(interp: &mut Interp<'_>, cons: &ConsEnv, c: RCon) -> Result<Rc<str>, EvalError> {
    let c = resolve_con(interp, cons, c);
    match &*c {
        Con::Name(n) => Ok(Rc::from(n.as_str())),
        other => Err(EvalError::of_kind(
            EvalErrorKind::UnresolvedName,
            format!("field name did not reduce to a literal: {other}"),
        )),
    }
}

fn lit_value(l: &Lit) -> Value {
    match l {
        Lit::Int(n) => Value::Int(*n),
        Lit::Float(x) => Value::Float(*x),
        Lit::Str(s) => Value::Str(Rc::from(s.as_str())),
        Lit::Bool(b) => Value::Bool(*b),
        Lit::Unit => Value::Unit,
    }
}

/// The static field name at `names[i]`, as a shared `Rc<str>` cached on
/// the function instance.
fn static_name(
    chunk: &Chunk,
    cache: &RefCell<Box<[Option<Rc<str>>]>>,
    i: u32,
) -> Result<Rc<str>, EvalError> {
    let mut slots = cache.borrow_mut();
    match slots.get_mut(i as usize) {
        Some(Some(rc)) => Ok(Rc::clone(rc)),
        Some(slot) => {
            let is: IStr = *chunk
                .names
                .get(i as usize)
                .ok_or_else(|| corrupt(chunk, "name index out of range"))?;
            let rc: Rc<str> = Rc::from(is.as_str());
            *slot = Some(Rc::clone(&rc));
            Ok(rc)
        }
        None => Err(corrupt(chunk, "name cache out of range")),
    }
}

/// Runs a chunk as a top-level expression against the global value
/// environment (the session's accumulated `val` bindings). Times the
/// whole dispatch into [`EvalStats::dispatch_ns`].
///
/// # Errors
///
/// Exactly the failures the interpreter reports: builtin errors and
/// invariant violations — plus corrupt-chunk errors, which only
/// hand-crafted or truncated chunks can trigger.
pub fn run(
    interp: &mut Interp<'_>,
    chunk: &Arc<Chunk>,
    globals: &VEnv,
) -> Result<Value, EvalError> {
    let (g, cons) = share_globals(globals);
    run_shared(interp, chunk, &g, &cons)
}

/// Builds the shared form [`run_shared`] consumes: the globals behind
/// an `Rc` plus the root constructor-binding list. Embedders that
/// evaluate many bodies against the same globals (a session, a render
/// loop) should build this once and reuse it — [`run`] rebuilds it per
/// call, which clones every top-level value.
pub fn share_globals(globals: &VEnv) -> (Rc<VEnv>, ConsEnv) {
    let mut cons: ConsEnv = None;
    for (sym, con) in &globals.cons {
        cons = Some(Rc::new(ConsFrame {
            sym: *sym,
            con: *con,
            next: cons,
        }));
    }
    (Rc::new(globals.clone()), cons)
}

/// [`run`] against a pre-shared global environment — the fast path:
/// no per-run clone of the top-level bindings.
///
/// # Errors
///
/// As [`run`].
pub fn run_shared(
    interp: &mut Interp<'_>,
    chunk: &Arc<Chunk>,
    globals: &Rc<VEnv>,
    cons: &ConsEnv,
) -> Result<Value, EvalError> {
    let t0 = std::time::Instant::now();
    let cache = RefCell::new(vec![None; chunk.names.len()].into_boxed_slice());
    let r = exec(interp, chunk, None, &[], cons, globals, &cache);
    let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    interp.eval_stats.dispatch_ns = interp.eval_stats.dispatch_ns.saturating_add(ns);
    r
}

/// Applies a compiled value closure. (Entry point for [`Interp::apply`].)
pub fn call(interp: &mut Interp<'_>, f: &VmFn, arg: Value) -> Result<Value, EvalError> {
    exec(
        interp,
        &f.chunk,
        Some(arg),
        &f.captured,
        &f.cons,
        &f.globals,
        &f.name_cache,
    )
}

/// Applies a compiled constructor closure to a constructor argument.
/// (Entry point for [`Interp::capply`].)
pub fn capply(interp: &mut Interp<'_>, f: &VmFn, c: RCon) -> Result<Value, EvalError> {
    let cons = match f.chunk.cparam {
        Some(a) => {
            let mut memo = f.last_capply.borrow_mut();
            match &*memo {
                Some((prev, env)) if *prev == c => env.clone(),
                _ => {
                    let env = Some(Rc::new(ConsFrame {
                        sym: a,
                        con: c,
                        next: f.cons.clone(),
                    }));
                    *memo = Some((c, env.clone()));
                    env
                }
            }
        }
        None => f.cons.clone(),
    };
    exec(
        interp,
        &f.chunk,
        None,
        &f.captured,
        &cons,
        &f.globals,
        &f.name_cache,
    )
}

/// Forces a compiled guard suspension (`e !`). (Entry point for the
/// interpreter's `DApp` case.)
pub fn force(interp: &mut Interp<'_>, f: &VmFn) -> Result<Value, EvalError> {
    exec(
        interp,
        &f.chunk,
        None,
        &f.captured,
        &f.cons,
        &f.globals,
        &f.name_cache,
    )
}

fn exec(
    interp: &mut Interp<'_>,
    chunk: &Arc<Chunk>,
    arg: Option<Value>,
    captured: &[Value],
    cons: &ConsEnv,
    globals: &Rc<VEnv>,
    name_cache: &RefCell<Box<[Option<Rc<str>>]>>,
) -> Result<Value, EvalError> {
    let mut ops_run = 0u64;
    let mut frame = interp.take_vec();
    let mut stack = interp.take_vec();
    let r = dispatch(
        interp, chunk, arg, captured, cons, globals, name_cache, &mut frame, &mut stack,
        &mut ops_run,
    );
    interp.give_vec(frame);
    interp.give_vec(stack);
    interp.eval_stats.vm_ops = interp.eval_stats.vm_ops.saturating_add(ops_run);
    r
}

#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn dispatch(
    interp: &mut Interp<'_>,
    chunk: &Arc<Chunk>,
    arg: Option<Value>,
    captured: &[Value],
    cons: &ConsEnv,
    globals: &Rc<VEnv>,
    name_cache: &RefCell<Box<[Option<Rc<str>>]>>,
    frame: &mut Vec<Value>,
    stack: &mut Vec<Value>,
    ops_run: &mut u64,
) -> Result<Value, EvalError> {
    frame.resize(chunk.n_slots as usize, Value::Unit);
    if chunk.has_param {
        match (arg, frame.first_mut()) {
            (Some(v), Some(slot)) => *slot = v,
            _ => return Err(corrupt(chunk, "missing parameter")),
        }
    }
    for (i, (_, self_slot)) in chunk.caps.iter().enumerate() {
        let v = captured
            .get(i)
            .ok_or_else(|| corrupt(chunk, "missing capture"))?
            .clone();
        match frame.get_mut(*self_slot as usize) {
            Some(slot) => *slot = v,
            None => return Err(corrupt(chunk, "capture slot out of range")),
        }
    }

    let mut pc = 0usize;

    macro_rules! pop {
        () => {
            stack
                .pop()
                .ok_or_else(|| corrupt(chunk, "operand stack underflow"))?
        };
    }
    macro_rules! sub_chunk {
        ($i:expr) => {
            chunk
                .subs
                .get($i as usize)
                .ok_or_else(|| corrupt(chunk, "sub-chunk index out of range"))?
        };
    }
    macro_rules! con_at {
        ($i:expr) => {
            chunk
                .cons
                .get($i as usize)
                .copied()
                .ok_or_else(|| corrupt(chunk, "con index out of range"))?
        };
    }

    // Creates a VmFn for `subs[i]`, capturing the listed frame slots.
    macro_rules! make_fn {
        ($i:expr) => {{
            let sub = sub_chunk!($i);
            let mut cap = Vec::with_capacity(sub.caps.len());
            for (parent_slot, _) in &sub.caps {
                cap.push(
                    frame
                        .get(*parent_slot as usize)
                        .ok_or_else(|| corrupt(chunk, "capture source out of range"))?
                        .clone(),
                );
            }
            Rc::new(VmFn::new(
                Arc::clone(sub),
                cap.into_boxed_slice(),
                cons.clone(),
                Rc::clone(globals),
            ))
        }};
    }

    loop {
        let Some(op) = chunk.ops.get(pc).copied() else {
            return Err(corrupt(chunk, "fell off the end of the code"));
        };
        *ops_run += 1;
        pc += 1;
        match op {
            Op::Const(i) => {
                let l = chunk
                    .consts
                    .get(i as usize)
                    .ok_or_else(|| corrupt(chunk, "constant index out of range"))?;
                stack.push(lit_value(l));
            }
            Op::Local(i) => {
                let v = frame
                    .get(i as usize)
                    .ok_or_else(|| corrupt(chunk, "local slot out of range"))?
                    .clone();
                stack.push(v);
            }
            Op::SetLocal(i) => {
                let v = pop!();
                match frame.get_mut(i as usize) {
                    Some(slot) => *slot = v,
                    None => return Err(corrupt(chunk, "local slot out of range")),
                }
            }
            Op::Pop => {
                let _ = pop!();
            }
            Op::Global(i) => {
                let x = chunk
                    .syms
                    .get(i as usize)
                    .copied()
                    .ok_or_else(|| corrupt(chunk, "global index out of range"))?;
                if let Some(v) = globals.vals.get(&x) {
                    stack.push(v.clone());
                } else if let Some(r) = interp.global_builtin(x) {
                    stack.push(r?);
                } else {
                    return Err(EvalError::of_kind(
                        EvalErrorKind::UnboundVar,
                        format!("unbound variable {x:?} at runtime"),
                    ));
                }
            }
            Op::Call => {
                let a = pop!();
                let f = pop!();
                let v = interp.apply(f, a)?;
                stack.push(v);
            }
            Op::Call2 => {
                let b = pop!();
                let a = pop!();
                let f = pop!();
                let v = call2(interp, f, a, b)?;
                stack.push(v);
            }
            Op::Closure(i) => stack.push(Value::VmClosure(make_fn!(i))),
            Op::CClosure(i) => stack.push(Value::VmCClosure(make_fn!(i))),
            Op::Susp(i) => stack.push(Value::VmDSusp(make_fn!(i))),
            Op::CApplyStatic(i) => {
                let c = con_at!(i);
                let f = pop!();
                let v = interp.capply(f, c)?;
                stack.push(v);
            }
            Op::CApplyDyn(i) => {
                let c = resolve_con(interp, cons, con_at!(i));
                let f = pop!();
                let v = interp.capply(f, c)?;
                stack.push(v);
            }
            Op::Force => {
                let v = pop!();
                let forced = match v {
                    Value::VmDSusp(s) => force(interp, &s)?,
                    Value::DSusp(s) => {
                        let env = s.env.clone();
                        interp.eval(&env, &s.body)?
                    }
                    // Builtins erase guards.
                    other => other,
                };
                stack.push(forced);
            }
            Op::RecNil => stack.push(Value::record(BTreeMap::new())),
            Op::RecOneStatic(i) => {
                let name = static_name(chunk, name_cache, i)?;
                let v = pop!();
                let mut map = BTreeMap::new();
                map.insert(name, v);
                stack.push(Value::record(map));
            }
            Op::NameDyn(i) => {
                let name = resolve_name(interp, cons, con_at!(i))?;
                stack.push(Value::Str(name));
            }
            Op::RecOneDynTop => {
                let v = pop!();
                let name = pop!().as_str()?;
                let mut map = BTreeMap::new();
                map.insert(name, v);
                stack.push(Value::record(map));
            }
            Op::RecCat => {
                let vb = pop!();
                let va = pop!();
                match (va, vb) {
                    (Value::Record(ra), Value::Record(rb)) => {
                        stack.push(Interp::rec_cat(ra, rb)?);
                    }
                    (a, b) => {
                        return Err(EvalError::of_kind(
                            EvalErrorKind::TypeMismatch,
                            format!("record concatenation of non-records {a} and {b}"),
                        ))
                    }
                }
            }
            Op::ProjStatic(i) => {
                let name = static_name(chunk, name_cache, i)?;
                let rv = pop!();
                let rec = rv.as_record()?;
                let v = rec.get(&name).cloned().ok_or_else(|| {
                    EvalError::of_kind(
                        EvalErrorKind::MissingField,
                        format!("record {rv} has no field {name}"),
                    )
                })?;
                stack.push(v);
            }
            Op::ProjDynTop => {
                let rv = pop!();
                let name = pop!().as_str()?;
                let rec = rv.as_record()?;
                let v = rec.get(&name).cloned().ok_or_else(|| {
                    EvalError::of_kind(
                        EvalErrorKind::MissingField,
                        format!("record {rv} has no field {name}"),
                    )
                })?;
                stack.push(v);
            }
            Op::CutStatic(i) => {
                let name = static_name(chunk, name_cache, i)?;
                let rv = pop!();
                let mut rec = rv.as_record()?.clone();
                if rec.remove(&name).is_none() {
                    return Err(EvalError::of_kind(
                        EvalErrorKind::MissingField,
                        format!("record {rv} has no field {name} to remove"),
                    ));
                }
                stack.push(Value::record(rec));
            }
            Op::CutDynTop => {
                let rv = pop!();
                let name = pop!().as_str()?;
                let mut rec = rv.as_record()?.clone();
                if rec.remove(&name).is_none() {
                    return Err(EvalError::of_kind(
                        EvalErrorKind::MissingField,
                        format!("record {rv} has no field {name} to remove"),
                    ));
                }
                stack.push(Value::record(rec));
            }
            Op::Jump(t) => pc = t as usize,
            Op::JumpIfFalse(t) => {
                if !pop!().as_bool()? {
                    pc = t as usize;
                }
            }
            Op::Ret => return Ok(pop!()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::interp::World;
    use crate::value::Builtin;
    use std::collections::HashMap;
    use ur_core::env::Env;
    use ur_core::expr::{Expr, RExpr};
    use ur_core::kind::Kind;
    use ur_core::Cx;

    fn run_vm(e: &RExpr) -> Result<Value, EvalError> {
        let genv = Env::new();
        let mut cx = Cx::new();
        let chunk = compile(&genv, &mut cx, e, "test");
        let mut world = World::new();
        let builtins = HashMap::new();
        let mut interp = Interp::new(&mut world, &genv, &builtins);
        run(&mut interp, &chunk, &VEnv::new())
    }

    fn run_both(e: &RExpr) -> (Result<Value, EvalError>, Result<Value, EvalError>) {
        let genv = Env::new();
        let builtins = HashMap::new();
        let mut world = World::new();
        let mut interp = Interp::new(&mut world, &genv, &builtins);
        let tree = interp.eval(&VEnv::new(), e);
        (run_vm(e), tree)
    }

    fn assert_agree(e: &RExpr) {
        let (vm, tree) = run_both(e);
        match (&vm, &tree) {
            (Ok(a), Ok(b)) => assert_eq!(a.to_string(), b.to_string()),
            (Err(a), Err(b)) => assert_eq!(a.kind, b.kind, "vm {a:?} vs interp {b:?}"),
            other => panic!("engines disagree: {other:?}"),
        }
    }

    #[test]
    fn literals_and_if() {
        let e = Expr::if_(
            Expr::lit(Lit::Bool(false)),
            Expr::lit(Lit::Int(1)),
            Expr::lit(Lit::Int(2)),
        );
        assert!(matches!(run_vm(&e), Ok(Value::Int(2))));
        assert_agree(&e);
    }

    #[test]
    fn lambda_application_and_capture() {
        // (fn x => fn y => x) 41 1  ==>  41, via a real capture.
        let x = Sym::fresh("x");
        let y = Sym::fresh("y");
        let f = Expr::lam(
            x,
            Con::int(),
            Expr::lam(y, Con::int(), Expr::var(&x)),
        );
        let e = Expr::app(
            Expr::app(f, Expr::lit(Lit::Int(41))),
            Expr::lit(Lit::Int(1)),
        );
        assert!(matches!(run_vm(&e), Ok(Value::Int(41))));
        assert_agree(&e);
    }

    #[test]
    fn records_project_cut_concat() {
        let rec = Expr::record(vec![
            (Con::name("A"), Expr::lit(Lit::Int(1))),
            (Con::name("B"), Expr::lit(Lit::Int(2))),
            (Con::name("C"), Expr::lit(Lit::Int(3))),
        ]);
        assert_agree(&Expr::proj(rec, Con::name("B")));
        assert_agree(&Expr::cut(rec, Con::name("A")));
        assert_agree(&rec);
    }

    #[test]
    fn projection_by_constructor_variable() {
        // (fn [nm :: Name] => fn (x : $[nm = int]) => x.nm) [#A] {A = 7}
        let nm = Sym::fresh("nm");
        let x = Sym::fresh("x");
        let f = Expr::clam(
            nm,
            Kind::Name,
            Expr::lam(
                x,
                Con::record(Con::row_one(Con::var(&nm), Con::int())),
                Expr::proj(Expr::var(&x), Con::var(&nm)),
            ),
        );
        let e = Expr::app(
            Expr::capp(f, Con::name("A")),
            Expr::record(vec![(Con::name("A"), Expr::lit(Lit::Int(7)))]),
        );
        assert!(matches!(run_vm(&e), Ok(Value::Int(7))));
        assert_agree(&e);
    }

    #[test]
    fn guard_suspends_and_forces() {
        let g = Expr::dlam(
            Con::row_nil(Kind::Type),
            Con::row_nil(Kind::Type),
            Expr::lit(Lit::Int(9)),
        );
        assert_agree(&Expr::dapp(g));
    }

    #[test]
    fn let_shadowing() {
        let x = Sym::fresh("x");
        let x2 = Sym::fresh("x");
        let e = Expr::let_(
            x,
            Con::int(),
            Expr::lit(Lit::Int(1)),
            Expr::let_(x2, Con::int(), Expr::lit(Lit::Int(2)), Expr::var(&x2)),
        );
        assert!(matches!(run_vm(&e), Ok(Value::Int(2))));
        assert_agree(&e);
    }

    #[test]
    fn missing_field_errors_match_kinds() {
        let rec = Expr::record(vec![(Con::name("A"), Expr::lit(Lit::Int(1)))]);
        let (vm, tree) = run_both(&Expr::proj(rec, Con::name("Z")));
        assert_eq!(vm.unwrap_err().kind, EvalErrorKind::MissingField);
        assert_eq!(tree.unwrap_err().kind, EvalErrorKind::MissingField);
    }

    #[test]
    fn duplicate_field_concat_errors_match_kinds() {
        let r1 = Expr::record(vec![(Con::name("A"), Expr::lit(Lit::Int(1)))]);
        let r2 = Expr::record(vec![(Con::name("A"), Expr::lit(Lit::Int(2)))]);
        let (vm, tree) = run_both(&Expr::rec_cat(r1, r2));
        assert_eq!(vm.unwrap_err().kind, EvalErrorKind::DuplicateField);
        assert_eq!(tree.unwrap_err().kind, EvalErrorKind::DuplicateField);
    }

    #[test]
    fn globals_resolve_lazily_through_builtins() {
        let genv = Env::new();
        let mut cx = Cx::new();
        let mut builtins = HashMap::new();
        let plus = Sym::fresh("add");
        builtins.insert(
            plus,
            Rc::new(Builtin {
                name: "add".into(),
                con_arity: 0,
                arity: 2,
                run: Rc::new(|_, _, args| {
                    Ok(Value::Int(args[0].as_int()? + args[1].as_int()?))
                }),
            }),
        );
        let e = Expr::app(
            Expr::app(Expr::var(&plus), Expr::lit(Lit::Int(2))),
            Expr::lit(Lit::Int(3)),
        );
        let chunk = compile(&genv, &mut cx, &e, "test");
        let mut world = World::new();
        let mut interp = Interp::new(&mut world, &genv, &builtins);
        let v = run(&mut interp, &chunk, &VEnv::new()).unwrap();
        assert!(matches!(v, Value::Int(5)));
        assert!(interp.eval_stats.vm_ops > 0, "dispatch loop counted ops");
    }

    #[test]
    fn globals_come_from_the_session_environment() {
        let genv = Env::new();
        let mut cx = Cx::new();
        let g = Sym::fresh("g");
        let chunk = compile(&genv, &mut cx, &Expr::var(&g), "test");
        let mut world = World::new();
        let builtins = HashMap::new();
        let mut interp = Interp::new(&mut world, &genv, &builtins);
        let globals = VEnv::new().with_val(g, Value::Int(77));
        let v = run(&mut interp, &chunk, &globals).unwrap();
        assert!(matches!(v, Value::Int(77)));
        // And an unbound global is the interpreter's error, kind and all.
        let err = run(&mut interp, &chunk, &VEnv::new()).unwrap_err();
        assert_eq!(err.kind, EvalErrorKind::UnboundVar);
    }

    #[test]
    fn vm_closures_flow_through_tree_interpreter_application() {
        // Compile `fn x => x`, then apply it FROM the interpreter.
        let x = Sym::fresh("x");
        let genv = Env::new();
        let mut cx = Cx::new();
        let chunk = compile(
            &genv,
            &mut cx,
            &Expr::lam(x, Con::int(), Expr::var(&x)),
            "id",
        );
        let mut world = World::new();
        let builtins = HashMap::new();
        let mut interp = Interp::new(&mut world, &genv, &builtins);
        let f = run(&mut interp, &chunk, &VEnv::new()).unwrap();
        assert!(matches!(f, Value::VmClosure(_)));
        let v = interp.apply(f, Value::Int(13)).unwrap();
        assert!(matches!(v, Value::Int(13)));
    }
}
