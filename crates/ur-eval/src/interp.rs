//! The call-by-value interpreter over elaborated core terms.

use crate::error::EvalError;
use crate::value::{Builtin, BuiltinApp, CClosure, Closure, DSusp, VEnv, Value};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use ur_core::con::{Con, RCon};
use ur_core::env::Env;
use ur_core::expr::{Expr, Lit, RExpr};
use ur_core::hnf::hnf;
use ur_core::subst::{fv, subst};
use ur_core::sym::Sym;
use ur_core::Cx;

/// Mutable world state visible to effectful builtins. `Clone` backs
/// `Session::snapshot`/`rollback`: a chaos-aborted batch restores the
/// whole world (database, sequences, SQL log, debug output) bit for bit.
#[derive(Clone, Default)]
pub struct World {
    /// The database backing the SQL builtins.
    pub db: ur_db::Db,
    /// Debug output collected by the `debug` builtin.
    pub out: Vec<String>,
}

impl World {
    pub fn new() -> World {
        World::default()
    }
}

/// The interpreter: world state, the global constructor environment (for
/// resolving type-level names at runtime), and the builtin registry.
pub struct Interp<'a> {
    pub world: &'a mut World,
    pub genv: &'a Env,
    pub builtins: &'a HashMap<Sym, Rc<Builtin>>,
    /// Scratch context for constructor normalization.
    pub cx: Cx,
}

impl<'a> Interp<'a> {
    pub fn new(
        world: &'a mut World,
        genv: &'a Env,
        builtins: &'a HashMap<Sym, Rc<Builtin>>,
    ) -> Interp<'a> {
        Interp {
            world,
            genv,
            builtins,
            cx: Cx::new(),
        }
    }

    /// Substitutes the runtime constructor bindings of `venv` into `c` and
    /// head-normalizes.
    pub fn resolve_con(&mut self, venv: &VEnv, c: &RCon) -> RCon {
        let mut out = *c;
        loop {
            let vars = fv(&out);
            let mut changed = false;
            for v in vars {
                if let Some(repl) = venv.cons.get(&v) {
                    out = subst(&out, &v, repl);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        hnf(self.genv, &mut self.cx, &out)
    }

    /// Resolves a constructor expected to be a field name to the literal
    /// name string.
    pub fn resolve_name(&mut self, venv: &VEnv, c: &RCon) -> Result<Rc<str>, EvalError> {
        let c = self.resolve_con(venv, c);
        match &*c {
            Con::Name(n) => Ok(Rc::from(n.as_str())),
            other => Err(EvalError::new(format!(
                "field name did not reduce to a literal: {other}"
            ))),
        }
    }

    /// Evaluates an expression in an environment.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on builtin failures or interpreter
    /// invariant violations (the latter indicate elaborator bugs).
    pub fn eval(&mut self, venv: &VEnv, e: &RExpr) -> Result<Value, EvalError> {
        match &**e {
            Expr::Var(x) => {
                if let Some(v) = venv.vals.get(x) {
                    return Ok(v.clone());
                }
                if let Some(spec) = self.builtins.get(x) {
                    let app = BuiltinApp {
                        spec: Rc::clone(spec),
                        cons: Vec::new(),
                        args: Vec::new(),
                    };
                    return self.maybe_run_builtin(app);
                }
                Err(EvalError::new(format!("unbound variable {x:?} at runtime")))
            }
            Expr::Lit(l) => Ok(match l {
                Lit::Int(n) => Value::Int(*n),
                Lit::Float(x) => Value::Float(*x),
                Lit::Str(s) => Value::Str(Rc::from(s.as_str())),
                Lit::Bool(b) => Value::Bool(*b),
                Lit::Unit => Value::Unit,
            }),
            Expr::App(f, a) => {
                let fv_ = self.eval(venv, f)?;
                let av = self.eval(venv, a)?;
                self.apply(fv_, av)
            }
            Expr::Lam(x, _, body) => Ok(Value::Closure(Rc::new(Closure {
                env: venv.clone(),
                param: *x,
                body: (*body),
            }))),
            Expr::CApp(f, c) => {
                let fv_ = self.eval(venv, f)?;
                let c = self.resolve_con(venv, c);
                self.capply(fv_, c)
            }
            Expr::CLam(a, _, body) => Ok(Value::CClosure(Rc::new(CClosure {
                env: venv.clone(),
                param: *a,
                body: (*body),
            }))),
            Expr::RecNil => Ok(Value::Record(BTreeMap::new())),
            Expr::RecOne(n, v) => {
                let name = self.resolve_name(venv, n)?;
                let val = self.eval(venv, v)?;
                let mut map = BTreeMap::new();
                map.insert(name, val);
                Ok(Value::Record(map))
            }
            Expr::RecCat(a, b) => {
                let va = self.eval(venv, a)?;
                let vb = self.eval(venv, b)?;
                match (va, vb) {
                    (Value::Record(mut ra), Value::Record(rb)) => {
                        for (k, v) in rb {
                            if ra.insert(k.clone(), v).is_some() {
                                return Err(EvalError::new(format!(
                                    "duplicate field {k} in record concatenation \
                                     (type system should prevent this)"
                                )));
                            }
                        }
                        Ok(Value::Record(ra))
                    }
                    (a, b) => Err(EvalError::new(format!(
                        "record concatenation of non-records {a} and {b}"
                    ))),
                }
            }
            Expr::Proj(r, c) => {
                let name = self.resolve_name(venv, c)?;
                let rv = self.eval(venv, r)?;
                let rec = rv.as_record()?;
                rec.get(&name).cloned().ok_or_else(|| {
                    EvalError::new(format!("record {rv} has no field {name}"))
                })
            }
            Expr::Cut(r, c) => {
                let name = self.resolve_name(venv, c)?;
                let rv = self.eval(venv, r)?;
                let mut rec = rv.as_record()?.clone();
                if rec.remove(&name).is_none() {
                    return Err(EvalError::new(format!(
                        "record {rv} has no field {name} to remove"
                    )));
                }
                Ok(Value::Record(rec))
            }
            Expr::DLam(_, _, body) => Ok(Value::DSusp(Rc::new(DSusp {
                env: venv.clone(),
                body: (*body),
            }))),
            Expr::DApp(e) => {
                let v = self.eval(venv, e)?;
                match v {
                    Value::DSusp(s) => {
                        let env = s.env.clone();
                        self.eval(&env, &s.body)
                    }
                    // Builtins erase guards.
                    other => Ok(other),
                }
            }
            Expr::Let(x, _, bound, body) => {
                let bv = self.eval(venv, bound)?;
                let env2 = venv.with_val(*x, bv);
                self.eval(&env2, body)
            }
            Expr::If(c, t, el) => {
                if self.eval(venv, c)?.as_bool()? {
                    self.eval(venv, t)
                } else {
                    self.eval(venv, el)
                }
            }
        }
    }

    /// Applies a function value to an argument.
    pub fn apply(&mut self, f: Value, arg: Value) -> Result<Value, EvalError> {
        match f {
            Value::Closure(c) => {
                let env2 = c.env.with_val(c.param, arg);
                self.eval(&env2, &c.body)
            }
            Value::Builtin(b) => {
                let mut app = (*b).clone();
                app.args.push(arg);
                self.maybe_run_builtin(app)
            }
            other => Err(EvalError::new(format!(
                "application of non-function {other}"
            ))),
        }
    }

    /// Applies a value to a constructor argument.
    pub fn capply(&mut self, f: Value, c: RCon) -> Result<Value, EvalError> {
        match f {
            Value::CClosure(cl) => {
                let env2 = cl.env.with_con(cl.param, c);
                self.eval(&env2, &cl.body)
            }
            Value::Builtin(b) => {
                let mut app = (*b).clone();
                app.cons.push(c);
                self.maybe_run_builtin(app)
            }
            // Constructor application is erased on other values (a
            // monomorphic builtin result being instantiated).
            other => Ok(other),
        }
    }

    fn maybe_run_builtin(&mut self, app: BuiltinApp) -> Result<Value, EvalError> {
        if app.args.len() >= app.spec.arity && app.cons.len() >= app.spec.con_arity {
            let spec = app.spec;
            (spec.run)(self, &app.cons, &app.args)
        } else {
            Ok(Value::Builtin(Rc::new(app)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ur_core::kind::Kind;

    fn run(e: &RExpr) -> Value {
        let mut world = World::new();
        let genv = Env::new();
        let builtins = HashMap::new();
        let mut interp = Interp::new(&mut world, &genv, &builtins);
        interp.eval(&VEnv::new(), e).unwrap()
    }

    #[test]
    fn literals_and_if() {
        let e = Expr::if_(
            Expr::lit(Lit::Bool(true)),
            Expr::lit(Lit::Int(1)),
            Expr::lit(Lit::Int(2)),
        );
        assert!(matches!(run(&e), Value::Int(1)));
    }

    #[test]
    fn lambda_application() {
        let x = Sym::fresh("x");
        let f = Expr::lam(x, Con::int(), Expr::var(&x));
        let e = Expr::app(f, Expr::lit(Lit::Int(42)));
        assert!(matches!(run(&e), Value::Int(42)));
    }

    #[test]
    fn records_project_and_cut() {
        let rec = Expr::record(vec![
            (Con::name("A"), Expr::lit(Lit::Int(1))),
            (Con::name("B"), Expr::lit(Lit::Int(2))),
        ]);
        let proj = Expr::proj(rec, Con::name("B"));
        assert!(matches!(run(&proj), Value::Int(2)));
        let cut = Expr::cut(rec, Con::name("A"));
        match run(&cut) {
            Value::Record(r) => {
                assert_eq!(r.len(), 1);
                assert!(r.contains_key("B"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn projection_by_constructor_variable() {
        // (fn [nm :: Name] => fn (x : $[nm = int]) => x.nm) [#A] {A = 7}
        let nm = Sym::fresh("nm");
        let x = Sym::fresh("x");
        let f = Expr::clam(
            nm,
            Kind::Name,
            Expr::lam(
                x,
                Con::record(Con::row_one(Con::var(&nm), Con::int())),
                Expr::proj(Expr::var(&x), Con::var(&nm)),
            ),
        );
        let e = Expr::app(
            Expr::capp(f, Con::name("A")),
            Expr::record(vec![(Con::name("A"), Expr::lit(Lit::Int(7)))]),
        );
        assert!(matches!(run(&e), Value::Int(7)));
    }

    #[test]
    fn guard_suspends_and_forces() {
        let body = Expr::lit(Lit::Int(9));
        let g = Expr::dlam(
            Con::row_nil(Kind::Type),
            Con::row_nil(Kind::Type),
            body,
        );
        let forced = Expr::dapp(g);
        assert!(matches!(run(&forced), Value::Int(9)));
    }

    #[test]
    fn let_binds() {
        let x = Sym::fresh("x");
        let e = Expr::let_(
            x,
            Con::int(),
            Expr::lit(Lit::Int(5)),
            Expr::var(&x),
        );
        assert!(matches!(run(&e), Value::Int(5)));
    }

    #[test]
    fn builtin_partial_application() {
        let mut world = World::new();
        let genv = Env::new();
        let mut builtins = HashMap::new();
        let plus = Sym::fresh("add");
        builtins.insert(
            plus,
            Rc::new(Builtin {
                name: "add".into(),
                con_arity: 0,
                arity: 2,
                run: Rc::new(|_, _, args| {
                    Ok(Value::Int(args[0].as_int()? + args[1].as_int()?))
                }),
            }),
        );
        let mut interp = Interp::new(&mut world, &genv, &builtins);
        let e = Expr::app(
            Expr::app(Expr::var(&plus), Expr::lit(Lit::Int(2))),
            Expr::lit(Lit::Int(3)),
        );
        let v = interp.eval(&VEnv::new(), &e).unwrap();
        assert!(matches!(v, Value::Int(5)));
        // Partial application yields a builtin value.
        let partial = interp
            .eval(&VEnv::new(), &Expr::app(Expr::var(&plus), Expr::lit(Lit::Int(1))))
            .unwrap();
        assert!(matches!(partial, Value::Builtin(_)));
    }

    #[test]
    fn duplicate_field_concat_is_runtime_error() {
        // Can only be reached by bypassing the type system.
        let r1 = Expr::record(vec![(Con::name("A"), Expr::lit(Lit::Int(1)))]);
        let r2 = Expr::record(vec![(Con::name("A"), Expr::lit(Lit::Int(2)))]);
        let mut world = World::new();
        let genv = Env::new();
        let builtins = HashMap::new();
        let mut interp = Interp::new(&mut world, &genv, &builtins);
        let err = interp
            .eval(&VEnv::new(), &Expr::rec_cat(r1, r2))
            .unwrap_err();
        assert!(err.message.contains("duplicate field"));
    }
}
