//! The call-by-value interpreter over elaborated core terms.

use crate::error::{EvalError, EvalErrorKind};
use crate::value::{Builtin, BuiltinApp, CClosure, Closure, DSusp, VEnv, Value};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use ur_core::con::{Con, RCon};
use ur_core::env::Env;
use ur_core::expr::{Expr, Lit, RExpr};
use ur_core::hnf::hnf;
use ur_core::subst::{fv, subst};
use ur_core::sym::Sym;
use ur_core::Cx;

/// Mutable world state visible to effectful builtins. `Clone` backs
/// `Session::snapshot`/`rollback`: a chaos-aborted batch restores the
/// whole world (database, sequences, SQL log, debug output) bit for bit.
#[derive(Clone, Default)]
pub struct World {
    /// The database backing the SQL builtins.
    pub db: ur_db::Db,
    /// Debug output collected by the `debug` builtin.
    pub out: Vec<String>,
}

impl World {
    pub fn new() -> World {
        World::default()
    }
}

/// The interpreter: world state, the global constructor environment (for
/// resolving type-level names at runtime), and the builtin registry.
pub struct Interp<'a> {
    pub world: &'a mut World,
    pub genv: &'a Env,
    pub builtins: &'a HashMap<Sym, Rc<Builtin>>,
    /// Scratch context for constructor normalization.
    pub cx: Cx,
    /// Counters accumulated by VM dispatch loops run through this
    /// interpreter (ops executed, wall-clock in the dispatch loop). The
    /// embedder folds them into its session-wide stats after each eval.
    pub eval_stats: crate::vm::EvalStats,
    /// VM-side resolution memo: `(constructor, cons-env head pointer)` →
    /// the resolved constructor. The entry pins the environment's head
    /// `Rc`, so while it is in the table no other allocation can take
    /// that address — pointer equality then implies the same immutable
    /// binding list. The tree-walker cannot use this table: its
    /// environments are cloned `HashMap`s with no stable identity,
    /// which is precisely the structural cost compilation removes.
    pub(crate) resolve_memo: HashMap<(RCon, usize), (crate::vm::ConsEnv, RCon)>,
    /// Unapplied-builtin wrapper values, allocated once per symbol
    /// instead of once per mention.
    builtin_vals: HashMap<Sym, Value>,
    /// Recycled VM frame and operand-stack buffers: a render loop
    /// enters thousands of chunks, and reusing the buffers keeps the
    /// dispatch loop off the allocator entirely for calls.
    pub(crate) vec_pool: Vec<Vec<Value>>,
}

/// Bound on [`Interp::resolve_memo`]: adversarial workloads that keep
/// instantiating fresh constructor environments flush the table instead
/// of growing it without limit.
const RESOLVE_MEMO_CAP: usize = 1 << 16;

impl<'a> Interp<'a> {
    pub fn new(
        world: &'a mut World,
        genv: &'a Env,
        builtins: &'a HashMap<Sym, Rc<Builtin>>,
    ) -> Interp<'a> {
        Interp {
            world,
            genv,
            builtins,
            cx: Cx::new(),
            eval_stats: crate::vm::EvalStats::default(),
            resolve_memo: HashMap::new(),
            builtin_vals: HashMap::new(),
            vec_pool: Vec::new(),
        }
    }

    /// A cleared scratch buffer from the pool (or a fresh one).
    pub(crate) fn take_vec(&mut self) -> Vec<Value> {
        self.vec_pool.pop().unwrap_or_default()
    }

    /// Returns a scratch buffer to the pool for reuse.
    pub(crate) fn give_vec(&mut self, mut v: Vec<Value>) {
        v.clear();
        if self.vec_pool.len() < 64 {
            self.vec_pool.push(v);
        }
    }

    /// Looks `x` up in the builtin registry and produces its value: a
    /// nullary builtin runs immediately (it may touch the world, so its
    /// result is never cached); anything else yields a shared
    /// unapplied-builtin wrapper.
    pub(crate) fn global_builtin(&mut self, x: Sym) -> Option<Result<Value, EvalError>> {
        if let Some(v) = self.builtin_vals.get(&x) {
            return Some(Ok(v.clone()));
        }
        let spec = Rc::clone(self.builtins.get(&x)?);
        let app = BuiltinApp {
            spec,
            cons: Vec::new(),
            args: Vec::new(),
        };
        if app.spec.arity == 0 && app.spec.con_arity == 0 {
            return Some(self.maybe_run_builtin(app));
        }
        let v = Value::Builtin(Rc::new(app));
        self.builtin_vals.insert(x, v.clone());
        Some(Ok(v))
    }

    /// Memo insert for [`crate::vm`]'s resolver, bounded by
    /// [`RESOLVE_MEMO_CAP`].
    pub(crate) fn memo_resolution(
        &mut self,
        key: (RCon, usize),
        pin: crate::vm::ConsEnv,
        out: RCon,
    ) {
        if self.resolve_memo.len() >= RESOLVE_MEMO_CAP {
            self.resolve_memo.clear();
        }
        self.resolve_memo.insert(key, (pin, out));
    }

    /// Substitutes the runtime constructor bindings of `venv` into `c` and
    /// head-normalizes.
    pub fn resolve_con(&mut self, venv: &VEnv, c: &RCon) -> RCon {
        let mut out = *c;
        loop {
            let vars = fv(&out);
            let mut changed = false;
            for v in vars {
                if let Some(repl) = venv.cons.get(&v) {
                    out = subst(&out, &v, repl);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        hnf(self.genv, &mut self.cx, &out)
    }

    /// Resolves a constructor expected to be a field name to the literal
    /// name string.
    pub fn resolve_name(&mut self, venv: &VEnv, c: &RCon) -> Result<Rc<str>, EvalError> {
        let c = self.resolve_con(venv, c);
        match &*c {
            Con::Name(n) => Ok(Rc::from(n.as_str())),
            other => Err(EvalError::of_kind(
                EvalErrorKind::UnresolvedName,
                format!("field name did not reduce to a literal: {other}"),
            )),
        }
    }

    /// Evaluates an expression in an environment.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`] on builtin failures or interpreter
    /// invariant violations (the latter indicate elaborator bugs).
    pub fn eval(&mut self, venv: &VEnv, e: &RExpr) -> Result<Value, EvalError> {
        match &**e {
            Expr::Var(x) => {
                if let Some(v) = venv.vals.get(x) {
                    return Ok(v.clone());
                }
                if let Some(r) = self.global_builtin(*x) {
                    return r;
                }
                Err(EvalError::of_kind(
                    EvalErrorKind::UnboundVar,
                    format!("unbound variable {x:?} at runtime"),
                ))
            }
            Expr::Lit(l) => Ok(match l {
                Lit::Int(n) => Value::Int(*n),
                Lit::Float(x) => Value::Float(*x),
                Lit::Str(s) => Value::Str(Rc::from(s.as_str())),
                Lit::Bool(b) => Value::Bool(*b),
                Lit::Unit => Value::Unit,
            }),
            Expr::App(f, a) => {
                let fv_ = self.eval(venv, f)?;
                let av = self.eval(venv, a)?;
                self.apply(fv_, av)
            }
            Expr::Lam(x, _, body) => Ok(Value::Closure(Rc::new(Closure {
                env: venv.clone(),
                param: *x,
                body: (*body),
            }))),
            Expr::CApp(f, c) => {
                let fv_ = self.eval(venv, f)?;
                let c = self.resolve_con(venv, c);
                self.capply(fv_, c)
            }
            Expr::CLam(a, _, body) => Ok(Value::CClosure(Rc::new(CClosure {
                env: venv.clone(),
                param: *a,
                body: (*body),
            }))),
            Expr::RecNil => Ok(Value::record(BTreeMap::new())),
            Expr::RecOne(n, v) => {
                let name = self.resolve_name(venv, n)?;
                let val = self.eval(venv, v)?;
                let mut map = BTreeMap::new();
                map.insert(name, val);
                Ok(Value::record(map))
            }
            Expr::RecCat(a, b) => {
                let va = self.eval(venv, a)?;
                let vb = self.eval(venv, b)?;
                match (va, vb) {
                    (Value::Record(ra), Value::Record(rb)) => Self::rec_cat(ra, rb),
                    (a, b) => Err(EvalError::of_kind(
                        EvalErrorKind::TypeMismatch,
                        format!("record concatenation of non-records {a} and {b}"),
                    )),
                }
            }
            Expr::Proj(r, c) => {
                let name = self.resolve_name(venv, c)?;
                let rv = self.eval(venv, r)?;
                let rec = rv.as_record()?;
                rec.get(&name).cloned().ok_or_else(|| {
                    EvalError::of_kind(
                        EvalErrorKind::MissingField,
                        format!("record {rv} has no field {name}"),
                    )
                })
            }
            Expr::Cut(r, c) => {
                let name = self.resolve_name(venv, c)?;
                let rv = self.eval(venv, r)?;
                let mut rec = rv.as_record()?.clone();
                if rec.remove(&name).is_none() {
                    return Err(EvalError::of_kind(
                        EvalErrorKind::MissingField,
                        format!("record {rv} has no field {name} to remove"),
                    ));
                }
                Ok(Value::record(rec))
            }
            Expr::DLam(_, _, body) => Ok(Value::DSusp(Rc::new(DSusp {
                env: venv.clone(),
                body: (*body),
            }))),
            Expr::DApp(e) => {
                let v = self.eval(venv, e)?;
                match v {
                    Value::DSusp(s) => {
                        let env = s.env.clone();
                        self.eval(&env, &s.body)
                    }
                    Value::VmDSusp(s) => crate::vm::force(self, &s),
                    // Builtins erase guards.
                    other => Ok(other),
                }
            }
            Expr::Let(x, _, bound, body) => {
                let bv = self.eval(venv, bound)?;
                let env2 = venv.with_val(*x, bv);
                self.eval(&env2, body)
            }
            Expr::If(c, t, el) => {
                if self.eval(venv, c)?.as_bool()? {
                    self.eval(venv, t)
                } else {
                    self.eval(venv, el)
                }
            }
        }
    }

    /// Applies a function value to an argument. Dispatches on the value's
    /// engine: tree closures evaluate here, compiled closures run in the
    /// VM — so values from either engine mix freely (higher-order
    /// builtins apply whatever the program handed them).
    pub fn apply(&mut self, f: Value, arg: Value) -> Result<Value, EvalError> {
        match f {
            Value::Closure(c) => {
                let env2 = c.env.with_val(c.param, arg);
                self.eval(&env2, &c.body)
            }
            Value::VmClosure(c) => crate::vm::call(self, &c, arg),
            Value::Builtin(b) => {
                let mut app = (*b).clone();
                app.args.push(arg);
                self.maybe_run_builtin(app)
            }
            other => Err(EvalError::of_kind(
                EvalErrorKind::NotAFunction,
                format!("application of non-function {other}"),
            )),
        }
    }

    /// Applies a function value to two arguments in sequence, `(f a) b`.
    /// Semantically identical to two [`Interp::apply`] calls; compiled
    /// curried functions and saturated binary builtins skip the
    /// intermediate value (see `vm::call2`), which is what higher-order
    /// builtins like `foldList` spend their per-element time on.
    pub fn apply2(&mut self, f: Value, a: Value, b: Value) -> Result<Value, EvalError> {
        crate::vm::call2(self, f, a, b)
    }

    /// Applies a value to a constructor argument.
    pub fn capply(&mut self, f: Value, c: RCon) -> Result<Value, EvalError> {
        match f {
            Value::CClosure(cl) => {
                let env2 = cl.env.with_con(cl.param, c);
                self.eval(&env2, &cl.body)
            }
            Value::VmCClosure(cl) => crate::vm::capply(self, &cl, c),
            Value::Builtin(b) => {
                let mut app = (*b).clone();
                app.cons.push(c);
                self.maybe_run_builtin(app)
            }
            // Constructor application is erased on other values (a
            // monomorphic builtin result being instantiated).
            other => Ok(other),
        }
    }

    /// Concatenates two record maps (`a ++ b`), reusing either side's
    /// allocation when its `Rc` is unshared. Duplicate fields are a
    /// runtime error, mirroring the type system's disjointness
    /// obligation.
    pub(crate) fn rec_cat(
        ra: Rc<std::collections::BTreeMap<Rc<str>, Value>>,
        rb: Rc<std::collections::BTreeMap<Rc<str>, Value>>,
    ) -> Result<Value, EvalError> {
        let mut ra = Rc::try_unwrap(ra).unwrap_or_else(|rc| (*rc).clone());
        let rb = Rc::try_unwrap(rb).unwrap_or_else(|rc| (*rc).clone());
        for (k, v) in rb {
            if ra.insert(Rc::clone(&k), v).is_some() {
                return Err(EvalError::of_kind(
                    EvalErrorKind::DuplicateField,
                    format!(
                        "duplicate field {k} in record concatenation \
                         (type system should prevent this)"
                    ),
                ));
            }
        }
        Ok(Value::record(ra))
    }

    pub(crate) fn maybe_run_builtin(&mut self, app: BuiltinApp) -> Result<Value, EvalError> {
        if app.args.len() >= app.spec.arity && app.cons.len() >= app.spec.con_arity {
            let spec = app.spec;
            (spec.run)(self, &app.cons, &app.args)
        } else {
            Ok(Value::Builtin(Rc::new(app)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ur_core::kind::Kind;

    fn run(e: &RExpr) -> Value {
        let mut world = World::new();
        let genv = Env::new();
        let builtins = HashMap::new();
        let mut interp = Interp::new(&mut world, &genv, &builtins);
        interp.eval(&VEnv::new(), e).unwrap()
    }

    #[test]
    fn literals_and_if() {
        let e = Expr::if_(
            Expr::lit(Lit::Bool(true)),
            Expr::lit(Lit::Int(1)),
            Expr::lit(Lit::Int(2)),
        );
        assert!(matches!(run(&e), Value::Int(1)));
    }

    #[test]
    fn lambda_application() {
        let x = Sym::fresh("x");
        let f = Expr::lam(x, Con::int(), Expr::var(&x));
        let e = Expr::app(f, Expr::lit(Lit::Int(42)));
        assert!(matches!(run(&e), Value::Int(42)));
    }

    #[test]
    fn records_project_and_cut() {
        let rec = Expr::record(vec![
            (Con::name("A"), Expr::lit(Lit::Int(1))),
            (Con::name("B"), Expr::lit(Lit::Int(2))),
        ]);
        let proj = Expr::proj(rec, Con::name("B"));
        assert!(matches!(run(&proj), Value::Int(2)));
        let cut = Expr::cut(rec, Con::name("A"));
        match run(&cut) {
            Value::Record(r) => {
                assert_eq!(r.len(), 1);
                assert!(r.contains_key("B"));
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn projection_by_constructor_variable() {
        // (fn [nm :: Name] => fn (x : $[nm = int]) => x.nm) [#A] {A = 7}
        let nm = Sym::fresh("nm");
        let x = Sym::fresh("x");
        let f = Expr::clam(
            nm,
            Kind::Name,
            Expr::lam(
                x,
                Con::record(Con::row_one(Con::var(&nm), Con::int())),
                Expr::proj(Expr::var(&x), Con::var(&nm)),
            ),
        );
        let e = Expr::app(
            Expr::capp(f, Con::name("A")),
            Expr::record(vec![(Con::name("A"), Expr::lit(Lit::Int(7)))]),
        );
        assert!(matches!(run(&e), Value::Int(7)));
    }

    #[test]
    fn guard_suspends_and_forces() {
        let body = Expr::lit(Lit::Int(9));
        let g = Expr::dlam(
            Con::row_nil(Kind::Type),
            Con::row_nil(Kind::Type),
            body,
        );
        let forced = Expr::dapp(g);
        assert!(matches!(run(&forced), Value::Int(9)));
    }

    #[test]
    fn let_binds() {
        let x = Sym::fresh("x");
        let e = Expr::let_(
            x,
            Con::int(),
            Expr::lit(Lit::Int(5)),
            Expr::var(&x),
        );
        assert!(matches!(run(&e), Value::Int(5)));
    }

    #[test]
    fn builtin_partial_application() {
        let mut world = World::new();
        let genv = Env::new();
        let mut builtins = HashMap::new();
        let plus = Sym::fresh("add");
        builtins.insert(
            plus,
            Rc::new(Builtin {
                name: "add".into(),
                con_arity: 0,
                arity: 2,
                run: Rc::new(|_, _, args| {
                    Ok(Value::Int(args[0].as_int()? + args[1].as_int()?))
                }),
            }),
        );
        let mut interp = Interp::new(&mut world, &genv, &builtins);
        let e = Expr::app(
            Expr::app(Expr::var(&plus), Expr::lit(Lit::Int(2))),
            Expr::lit(Lit::Int(3)),
        );
        let v = interp.eval(&VEnv::new(), &e).unwrap();
        assert!(matches!(v, Value::Int(5)));
        // Partial application yields a builtin value.
        let partial = interp
            .eval(&VEnv::new(), &Expr::app(Expr::var(&plus), Expr::lit(Lit::Int(1))))
            .unwrap();
        assert!(matches!(partial, Value::Builtin(_)));
    }

    #[test]
    fn duplicate_field_concat_is_runtime_error() {
        // Can only be reached by bypassing the type system.
        let r1 = Expr::record(vec![(Con::name("A"), Expr::lit(Lit::Int(1)))]);
        let r2 = Expr::record(vec![(Con::name("A"), Expr::lit(Lit::Int(2)))]);
        let mut world = World::new();
        let genv = Env::new();
        let builtins = HashMap::new();
        let mut interp = Interp::new(&mut world, &genv, &builtins);
        let err = interp
            .eval(&VEnv::new(), &Expr::rec_cat(r1, r2))
            .unwrap_err();
        assert!(err.message.contains("duplicate field"));
    }
}
