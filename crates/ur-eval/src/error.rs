//! Evaluation errors.

use std::fmt;

/// A stable classification of runtime failures. Tests match on the kind,
/// not the message, so wording can evolve without breaking assertions;
/// the differential suites use it to check that the VM and the
/// interpreter fail the same way, not just that both fail.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EvalErrorKind {
    /// Builtin failures and uncategorized interpreter errors.
    Generic,
    /// A variable had no runtime binding (an elaborator bug).
    UnboundVar,
    /// A value in function position was not applicable.
    NotAFunction,
    /// A primitive accessor saw the wrong shape of value
    /// (`as_int` on a string, record ops on a non-record, …).
    TypeMismatch,
    /// Projection or cut named a field the record does not have.
    MissingField,
    /// Record concatenation produced a duplicate field (the type system
    /// should make this unreachable).
    DuplicateField,
    /// A type-level field name did not reduce to a literal at runtime.
    UnresolvedName,
    /// A database builtin failed (`ur_db::DbError`).
    Db,
}

/// A runtime error. Since elaborated programs are statically typed, these
/// only arise from builtin misuse (e.g. `error`-primitive calls) or from
/// interpreter-level invariant violations, which the test suite treats as
/// bugs.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalError {
    pub message: String,
    pub kind: EvalErrorKind,
}

impl EvalError {
    pub fn new(message: impl Into<String>) -> EvalError {
        EvalError {
            message: message.into(),
            kind: EvalErrorKind::Generic,
        }
    }

    /// An error with an explicit stable classification.
    pub fn of_kind(kind: EvalErrorKind, message: impl Into<String>) -> EvalError {
        EvalError {
            message: message.into(),
            kind,
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

impl From<ur_db::DbError> for EvalError {
    fn from(e: ur_db::DbError) -> Self {
        EvalError::of_kind(EvalErrorKind::Db, format!("database: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(EvalError::new("boom").to_string(), "runtime error: boom");
    }

    #[test]
    fn new_is_generic() {
        assert_eq!(EvalError::new("x").kind, EvalErrorKind::Generic);
    }

    #[test]
    fn of_kind_preserves_kind_and_message() {
        let e = EvalError::of_kind(EvalErrorKind::MissingField, "no field A");
        assert_eq!(e.kind, EvalErrorKind::MissingField);
        assert_eq!(e.to_string(), "runtime error: no field A");
    }

    #[test]
    fn from_db_error() {
        let e: EvalError = ur_db::DbError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
        assert_eq!(e.kind, EvalErrorKind::Db);
    }
}
