//! Evaluation errors.

use std::fmt;

/// A runtime error. Since elaborated programs are statically typed, these
/// only arise from builtin misuse (e.g. `error`-primitive calls) or from
/// interpreter-level invariant violations, which the test suite treats as
/// bugs.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalError {
    pub message: String,
}

impl EvalError {
    pub fn new(message: impl Into<String>) -> EvalError {
        EvalError {
            message: message.into(),
        }
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "runtime error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

impl From<ur_db::DbError> for EvalError {
    fn from(e: ur_db::DbError) -> Self {
        EvalError::new(format!("database: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(EvalError::new("boom").to_string(), "runtime error: boom");
    }

    #[test]
    fn from_db_error() {
        let e: EvalError = ur_db::DbError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
    }
}
