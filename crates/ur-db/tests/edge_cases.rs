//! Edge-case coverage for the relational engine: every failure mode the
//! typed Ur/Web layer makes unreachable must still surface as a stable
//! [`DbError`] variant when driven directly, because the durability
//! layer's recovery path and the REPL both rely on these exact errors.

use ur_db::{ColTy, Db, DbError, DbVal, Schema, SqlExpr};

fn db_ab() -> Db {
    let mut db = Db::new();
    db.create_table(
        "t",
        Schema::new(vec![("A".into(), ColTy::Int), ("B".into(), ColTy::Str)]).unwrap(),
    )
    .unwrap();
    db
}

fn ins(db: &mut Db, a: i64, b: &str) {
    db.insert(
        "t",
        &[
            ("A".into(), SqlExpr::lit(DbVal::Int(a))),
            ("B".into(), SqlExpr::lit(DbVal::Str(b.into()))),
        ],
    )
    .unwrap();
}

#[test]
fn duplicate_create_table_is_table_exists_and_keeps_rows() {
    let mut db = db_ab();
    ins(&mut db, 1, "x");
    let err = db
        .create_table("t", Schema::new(vec![("C".into(), ColTy::Bool)]).unwrap())
        .unwrap_err();
    assert_eq!(err, DbError::TableExists("t".into()));
    // The original table (schema and rows) is untouched.
    assert_eq!(db.row_count("t").unwrap(), 1);
    assert!(db.schema("t").unwrap().index_of("A").is_some());
}

#[test]
fn insert_unknown_column_is_unknown_column() {
    let mut db = db_ab();
    let err = db
        .insert(
            "t",
            &[
                ("A".into(), SqlExpr::lit(DbVal::Int(1))),
                ("B".into(), SqlExpr::lit(DbVal::Str("x".into()))),
                ("Nope".into(), SqlExpr::lit(DbVal::Int(9))),
            ],
        )
        .unwrap_err();
    assert_eq!(err, DbError::UnknownColumn("Nope".into()));
    assert_eq!(db.row_count("t").unwrap(), 0, "nothing was inserted");
}

#[test]
fn update_unknown_column_is_unknown_column() {
    let mut db = db_ab();
    ins(&mut db, 1, "x");
    let err = db
        .update(
            "t",
            &[("Ghost".into(), SqlExpr::lit(DbVal::Int(2)))],
            &SqlExpr::lit(DbVal::Bool(true)),
        )
        .unwrap_err();
    assert_eq!(err, DbError::UnknownColumn("Ghost".into()));
}

#[test]
fn unknown_table_everywhere() {
    let mut db = Db::new();
    let t = SqlExpr::lit(DbVal::Bool(true));
    assert_eq!(
        db.insert("nope", &[]).unwrap_err(),
        DbError::UnknownTable("nope".into())
    );
    assert_eq!(db.delete("nope", &t).unwrap_err(), DbError::UnknownTable("nope".into()));
    assert_eq!(
        db.update("nope", &[], &t).unwrap_err(),
        DbError::UnknownTable("nope".into())
    );
    assert_eq!(db.select("nope", &t).unwrap_err(), DbError::UnknownTable("nope".into()));
    assert_eq!(db.row_count("nope").unwrap_err(), DbError::UnknownTable("nope".into()));
    assert_eq!(db.schema("nope").unwrap_err(), DbError::UnknownTable("nope".into()));
}

#[test]
fn nextval_on_missing_sequence_is_unknown_sequence_and_no_log() {
    let mut db = Db::new();
    let log_len = db.log().len();
    assert_eq!(
        db.nextval("ghost").unwrap_err(),
        DbError::UnknownSequence("ghost".into())
    );
    assert_eq!(db.log().len(), log_len, "failed nextval is not logged");
}

#[test]
fn delete_with_always_false_predicate_removes_nothing() {
    let mut db = db_ab();
    ins(&mut db, 1, "x");
    ins(&mut db, 2, "y");
    assert_eq!(db.delete("t", &SqlExpr::lit(DbVal::Bool(false))).unwrap(), 0);
    assert_eq!(db.row_count("t").unwrap(), 2);
    // The statement still reaches the SQL log (a real server would see it).
    assert!(db.log().last().unwrap().starts_with("DELETE"));
}

#[test]
fn update_with_always_false_predicate_changes_nothing() {
    let mut db = db_ab();
    ins(&mut db, 1, "x");
    let changed = db
        .update(
            "t",
            &[("B".into(), SqlExpr::lit(DbVal::Str("never".into())))],
            &SqlExpr::lit(DbVal::Bool(false)),
        )
        .unwrap();
    assert_eq!(changed, 0);
    let rows = db.select("t", &SqlExpr::lit(DbVal::Bool(true))).unwrap();
    assert_eq!(rows[0][1], DbVal::Str("x".into()));
}

#[test]
fn type_mismatched_predicate_is_type_error_and_mutates_nothing() {
    let mut db = db_ab();
    ins(&mut db, 1, "x");
    // A < 'text' — ill-typed comparison between Int and Str.
    let bad = SqlExpr::Lt(
        Box::new(SqlExpr::col("A")),
        Box::new(SqlExpr::lit(DbVal::Str("text".into()))),
    );
    assert!(matches!(db.delete("t", &bad), Err(DbError::TypeError(_))));
    assert!(matches!(
        db.update("t", &[("A".into(), SqlExpr::lit(DbVal::Int(0)))], &bad),
        Err(DbError::TypeError(_))
    ));
    // A non-boolean predicate is not an error: it evaluates and simply
    // never equals TRUE, so nothing matches.
    let non_bool = SqlExpr::lit(DbVal::Int(1));
    assert_eq!(db.delete("t", &non_bool).unwrap(), 0);
    assert_eq!(db.row_count("t").unwrap(), 1, "no partial mutation");
    let rows = db.select("t", &SqlExpr::lit(DbVal::Bool(true))).unwrap();
    assert_eq!(rows[0][0], DbVal::Int(1));
}

#[test]
fn update_type_mismatched_value_is_type_error() {
    let mut db = db_ab();
    ins(&mut db, 1, "x");
    let err = db
        .update(
            "t",
            &[("A".into(), SqlExpr::lit(DbVal::Str("not an int".into())))],
            &SqlExpr::lit(DbVal::Bool(true)),
        )
        .unwrap_err();
    assert!(matches!(err, DbError::TypeError(_)));
    let rows = db.select("t", &SqlExpr::lit(DbVal::Bool(true))).unwrap();
    assert_eq!(rows[0][0], DbVal::Int(1), "row unchanged");
}

#[test]
fn error_displays_are_stable() {
    assert_eq!(DbError::NoTxn.to_string(), "no open transaction");
    assert_eq!(DbError::TxnActive.to_string(), "a transaction is already open");
    assert_eq!(DbError::Io("boom".into()).to_string(), "i/o error: boom");
    assert_eq!(
        DbError::Corrupt("bad".into()).to_string(),
        "corrupt database state: bad"
    );
}
