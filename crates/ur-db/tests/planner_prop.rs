//! Property tests for the cost-based planner: for seeded random tables,
//! index sets, predicates, and mutation streams, the planner-chosen
//! access path must agree exactly with brute-force scanning.
//!
//! Three oracles per round:
//!
//! * **planner-on vs planner-off** — two databases fed the identical
//!   statement stream, one planning probes, one forced to scan; every
//!   select must return the same row set, every update/delete the same
//!   affected count, and the final dumps must be byte-identical;
//! * **brute force** — each select is re-checked against a handwritten
//!   filter (`pred.eval` over every row), independent of either
//!   database's access machinery;
//! * **index integrity** — after each round's mutations,
//!   `Db::verify_indexes` must find every index equal to a fresh
//!   rebuild from the rows.
//!
//! Seeds are fixed (plus `UR_DB_PROP_SEED` for an extra run); every
//! failure message carries the seed and the predicate's SQL text.

use ur_db::{ColTy, Db, DbVal, Schema, SqlExpr};
use ur_testutil::Rng;

const SEEDS: [u64; 5] = [11, 22, 33, 44, 55];
const ROWS: usize = 250;
const STEPS: usize = 60;

fn schema() -> Schema {
    Schema::new(vec![
        ("K".into(), ColTy::Int),
        ("G".into(), ColTy::Int),
        ("S".into(), ColTy::Str),
        ("N".into(), ColTy::Nullable(Box::new(ColTy::Int))),
        ("F".into(), ColTy::Float),
    ])
    .expect("static schema")
}

fn lit_i(v: i64) -> SqlExpr {
    SqlExpr::lit(DbVal::Int(v))
}

fn rand_row(rng: &mut Rng) -> Vec<(String, SqlExpr)> {
    let k = rng.range_i64(-40, 40);
    let n = if rng.chance(1, 4) {
        SqlExpr::lit(DbVal::Null)
    } else {
        lit_i(rng.range_i64(-10, 10))
    };
    vec![
        ("K".into(), lit_i(k)),
        ("G".into(), lit_i(rng.range_i64(0, 8))),
        (
            "S".into(),
            SqlExpr::lit(DbVal::Str(format!("s{}", rng.below(12)))),
        ),
        ("N".into(), n),
        (
            "F".into(),
            SqlExpr::lit(DbVal::Float(rng.range_i64(-20, 20) as f64 * 0.5)),
        ),
    ]
}

/// A random boolean predicate over the schema: probeable shapes
/// (equality and ranges on indexed columns), shapes the planner must
/// refuse (float operands, `= NULL`), and arbitrary AND/OR/NOT nesting.
fn gen_pred(rng: &mut Rng, depth: usize) -> SqlExpr {
    if depth == 0 || rng.chance(1, 3) {
        return match rng.below(9) {
            0 => SqlExpr::eq(SqlExpr::col("K"), lit_i(rng.range_i64(-45, 45))),
            1 => SqlExpr::Lt(Box::new(SqlExpr::col("K")), Box::new(lit_i(rng.range_i64(-45, 45)))),
            2 => SqlExpr::Le(Box::new(lit_i(rng.range_i64(-45, 45))), Box::new(SqlExpr::col("K"))),
            3 => SqlExpr::eq(SqlExpr::col("G"), lit_i(rng.range_i64(-1, 9))),
            4 => SqlExpr::eq(
                SqlExpr::col("S"),
                SqlExpr::lit(DbVal::Str(format!("s{}", rng.below(14)))),
            ),
            // `N = <int>` and `N = NULL`: the latter is never a probe
            // (it selects nothing under three-valued equality).
            5 => SqlExpr::eq(
                SqlExpr::col("N"),
                if rng.chance(1, 3) {
                    SqlExpr::lit(DbVal::Null)
                } else {
                    lit_i(rng.range_i64(-12, 12))
                },
            ),
            6 => SqlExpr::is_null(SqlExpr::col("N")),
            // Float operand: the planner must fall back to a scan and
            // still agree with it.
            7 => SqlExpr::Lt(
                Box::new(SqlExpr::col("F")),
                Box::new(SqlExpr::lit(DbVal::Float(rng.range_i64(-20, 20) as f64 * 0.5))),
            ),
            _ => SqlExpr::lit(DbVal::Bool(rng.bool_())),
        };
    }
    let a = gen_pred(rng, depth - 1);
    let b = gen_pred(rng, depth - 1);
    match rng.below(3) {
        0 => SqlExpr::and(a, b),
        1 => SqlExpr::or(a, b),
        _ => SqlExpr::not(a),
    }
}

fn row_set(rows: &[Vec<DbVal>]) -> Vec<String> {
    let mut out: Vec<String> = rows
        .iter()
        .map(|r| r.iter().map(DbVal::to_sql).collect::<Vec<_>>().join(","))
        .collect();
    out.sort();
    out
}

fn run_round(seed: u64) -> (u64, u64, u64) {
    let mut rng = Rng::new(seed);
    let mut on = Db::new();
    let mut off = Db::new();
    off.set_planner(false);
    for db in [&mut on, &mut off] {
        db.create_table("t", schema()).expect("table");
        db.create_index("t_k", "t", "K").expect("index K");
    }
    // A random extra index set (identical in both databases).
    for col in ["G", "S", "N"] {
        if rng.bool_() {
            for db in [&mut on, &mut off] {
                db.create_index(&format!("t_{}", col.to_lowercase()), "t", col)
                    .expect("extra index");
            }
        }
    }
    let n_rows = rng.below(ROWS) + 20;
    for _ in 0..n_rows {
        let row = rand_row(&mut rng);
        on.insert("t", &row).expect("insert on");
        off.insert("t", &row).expect("insert off");
    }

    let everything = SqlExpr::lit(DbVal::Bool(true));
    for step in 0..STEPS {
        let pred = gen_pred(&mut rng, 2);
        match rng.below(5) {
            0..=2 => {
                let rows_on = on
                    .select("t", &pred)
                    .unwrap_or_else(|e| panic!("seed {seed} step {step} on-select {pred}: {e}"));
                let rows_off = off
                    .select("t", &pred)
                    .unwrap_or_else(|e| panic!("seed {seed} step {step} off-select {pred}: {e}"));
                assert_eq!(
                    row_set(&rows_on),
                    row_set(&rows_off),
                    "seed {seed} step {step}: planner-on and planner-off disagree on {pred}"
                );
                // Independent brute force: filter every row by hand.
                let sch = schema();
                let all = off.select("t", &everything).expect("scan all");
                let brute: Vec<Vec<DbVal>> = all
                    .into_iter()
                    .filter(|r| {
                        matches!(pred.eval(&sch, r), Ok(DbVal::Bool(true)))
                    })
                    .collect();
                assert_eq!(
                    row_set(&rows_on),
                    row_set(&brute),
                    "seed {seed} step {step}: planner disagrees with brute force on {pred}"
                );
            }
            3 => {
                let sets: Vec<(String, SqlExpr)> = match rng.below(3) {
                    0 => vec![(
                        "G".into(),
                        SqlExpr::Add(Box::new(SqlExpr::col("G")), Box::new(lit_i(1))),
                    )],
                    1 => vec![(
                        "S".into(),
                        SqlExpr::lit(DbVal::Str(format!("u{}", rng.below(12)))),
                    )],
                    _ => vec![("N".into(), SqlExpr::lit(DbVal::Null))],
                };
                let a = on
                    .update("t", &sets, &pred)
                    .unwrap_or_else(|e| panic!("seed {seed} step {step} on-update {pred}: {e}"));
                let b = off
                    .update("t", &sets, &pred)
                    .unwrap_or_else(|e| panic!("seed {seed} step {step} off-update {pred}: {e}"));
                assert_eq!(a, b, "seed {seed} step {step}: update counts differ on {pred}");
            }
            _ => {
                let a = on
                    .delete("t", &pred)
                    .unwrap_or_else(|e| panic!("seed {seed} step {step} on-delete {pred}: {e}"));
                let b = off
                    .delete("t", &pred)
                    .unwrap_or_else(|e| panic!("seed {seed} step {step} off-delete {pred}: {e}"));
                assert_eq!(a, b, "seed {seed} step {step}: delete counts differ on {pred}");
            }
        }
    }

    assert_eq!(
        on.dump(),
        off.dump(),
        "seed {seed}: final states diverged after the mutation stream"
    );
    on.verify_indexes()
        .unwrap_or_else(|e| panic!("seed {seed}: planner-on index divergence: {e}"));
    off.verify_indexes()
        .unwrap_or_else(|e| panic!("seed {seed}: planner-off index divergence: {e}"));
    let s = on.stats();
    (s.index_probes, s.full_scans, s.planner_fallbacks)
}

#[test]
fn planner_access_paths_agree_with_brute_force() {
    let mut seeds: Vec<u64> = SEEDS.to_vec();
    if let Some(extra) = std::env::var("UR_DB_PROP_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        seeds.push(extra);
    }
    let (mut probes, mut scans, mut fallbacks) = (0u64, 0u64, 0u64);
    for &seed in &seeds {
        let (p, s, f) = run_round(seed);
        probes += p;
        scans += s;
        fallbacks += f;
    }
    // The agreement only means something if every access shape actually
    // ran: probes, scans, and planner fallbacks (float operands, OR
    // shapes, `= NULL`) must all have been exercised.
    assert!(probes > 0, "no index probes across seeds {seeds:?}");
    assert!(scans > 0, "no full scans across seeds {seeds:?}");
    assert!(fallbacks > 0, "no planner fallbacks across seeds {seeds:?}");
}
