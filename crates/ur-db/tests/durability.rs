//! Durability integration tests: WAL round trips, torn-tail recovery,
//! snapshot compaction, and transaction visibility across reopen.
//!
//! These run without the `failpoints` feature — they damage the files
//! directly. The injected-fault and kill-point variants live in the
//! workspace chaos suite and the `ur-bench` crash harness.

use std::fs;
use std::path::PathBuf;
use ur_db::{ColTy, Db, DbError, DbVal, DurabilityConfig, Schema, SqlExpr, WAL_FILE};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ur-db-durability-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn schema_ab() -> Schema {
    Schema::new(vec![("A".into(), ColTy::Int), ("B".into(), ColTy::Str)]).unwrap()
}

fn ins(db: &mut Db, a: i64, b: &str) {
    db.insert(
        "t",
        &[
            ("A".into(), SqlExpr::lit(DbVal::Int(a))),
            ("B".into(), SqlExpr::lit(DbVal::Str(b.into()))),
        ],
    )
    .unwrap();
}

#[test]
fn reopen_recovers_auto_committed_statements() {
    let dir = tmpdir("reopen");
    let dump = {
        let mut db = Db::open(&dir).unwrap();
        db.create_table("t", schema_ab()).unwrap();
        db.create_sequence("s");
        ins(&mut db, 1, "one");
        ins(&mut db, 2, "two");
        assert_eq!(db.nextval("s").unwrap(), 1);
        db.update(
            "t",
            &[("B".into(), SqlExpr::lit(DbVal::Str("deux".into())))],
            &SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(2))),
        )
        .unwrap();
        db.delete("t", &SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(1))))
            .unwrap();
        db.dump()
    };
    let db2 = Db::open(&dir).unwrap();
    assert_eq!(db2.dump(), dump);
    assert!(db2.stats().recovered_txns >= 6, "{}", db2.stats());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn committed_txn_survives_uncommitted_txn_does_not() {
    let dir = tmpdir("txn-visibility");
    {
        let mut db = Db::open(&dir).unwrap();
        db.create_table("t", schema_ab()).unwrap();
        db.begin().unwrap();
        ins(&mut db, 1, "committed");
        db.commit().unwrap();
        db.begin().unwrap();
        ins(&mut db, 2, "uncommitted");
        // Dropped without commit: buffered records never reach the WAL.
    }
    let mut db2 = Db::open(&dir).unwrap();
    let rows = db2.select("t", &SqlExpr::lit(DbVal::Bool(true))).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0][1], DbVal::Str("committed".into()));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn explicit_rollback_leaves_no_trace_on_disk() {
    let dir = tmpdir("rollback");
    {
        let mut db = Db::open(&dir).unwrap();
        db.create_table("t", schema_ab()).unwrap();
        db.begin().unwrap();
        ins(&mut db, 1, "doomed");
        db.rollback().unwrap();
        assert_eq!(db.row_count("t").unwrap(), 0);
    }
    let db2 = Db::open(&dir).unwrap();
    assert_eq!(db2.row_count("t").unwrap(), 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_wal_tail_is_truncated_to_last_commit() {
    let dir = tmpdir("torn-tail");
    let committed_dump = {
        let mut db = Db::open(&dir).unwrap();
        db.create_table("t", schema_ab()).unwrap();
        ins(&mut db, 1, "safe");
        db.dump()
    };
    // Simulate a torn write: garbage appended past the committed prefix.
    let wal = dir.join(WAL_FILE);
    let mut bytes = fs::read(&wal).unwrap();
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0xAB; 37]);
    fs::write(&wal, &bytes).unwrap();

    let db2 = Db::open(&dir).unwrap();
    assert_eq!(db2.dump(), committed_dump);
    assert_eq!(db2.stats().truncated_bytes, 37);
    assert_eq!(
        fs::metadata(&wal).unwrap().len(),
        clean_len as u64,
        "tail physically truncated"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bit_flip_mid_wal_recovers_prefix_before_the_flip() {
    let dir = tmpdir("bitflip");
    let (len_after_first, first_dump) = {
        let mut db = Db::open(&dir).unwrap();
        db.create_table("t", schema_ab()).unwrap();
        ins(&mut db, 1, "before");
        let len = fs::metadata(dir.join(WAL_FILE)).unwrap().len();
        let dump = db.dump();
        ins(&mut db, 2, "after");
        (len, dump)
    };
    let wal = dir.join(WAL_FILE);
    let mut bytes = fs::read(&wal).unwrap();
    // Corrupt the first byte after the first committed prefix: the second
    // transaction's frames fail their CRC and are truncated.
    bytes[len_after_first as usize + 16] ^= 0x20;
    fs::write(&wal, &bytes).unwrap();

    let db2 = Db::open(&dir).unwrap();
    assert_eq!(db2.dump(), first_dump);
    assert!(db2.stats().truncated_bytes > 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_compacts_and_recovery_uses_snapshot_plus_wal() {
    let dir = tmpdir("checkpoint");
    let dump = {
        let mut db = Db::open(&dir).unwrap();
        db.create_table("t", schema_ab()).unwrap();
        ins(&mut db, 1, "in-snapshot");
        db.checkpoint().unwrap();
        assert_eq!(db.stats().snapshots_written, 1);
        // WAL reset to header; this lands in the post-snapshot log.
        ins(&mut db, 2, "in-wal");
        db.dump()
    };
    let db2 = Db::open(&dir).unwrap();
    assert_eq!(db2.stats().snapshot_loaded, 1, "{}", db2.stats());
    assert_eq!(db2.stats().recovered_txns, 1, "only the post-snapshot txn");
    assert_eq!(db2.dump(), dump);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn auto_checkpoint_triggers_at_threshold() {
    let dir = tmpdir("auto-checkpoint");
    let mut db = Db::open_with(
        &dir,
        DurabilityConfig {
            snapshot_every: 10,
            sync_commits: true,
        },
    )
    .unwrap();
    db.create_table("t", schema_ab()).unwrap();
    for i in 0..6 {
        ins(&mut db, i, "row");
    }
    assert!(db.stats().snapshots_written >= 1, "{}", db.stats());
    // Compaction reset the WAL mid-run: its live length is smaller than
    // the total bytes ever appended to it.
    assert!(
        db.wal_len() < db.stats().wal_bytes,
        "wal_len={} appended={}",
        db.wal_len(),
        db.stats().wal_bytes
    );
    let dump = db.dump();
    drop(db);
    assert_eq!(Db::open(&dir).unwrap().dump(), dump);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_is_a_hard_error_not_silent_data_loss() {
    let dir = tmpdir("corrupt-snap");
    {
        let mut db = Db::open(&dir).unwrap();
        db.create_table("t", schema_ab()).unwrap();
        ins(&mut db, 1, "x");
        db.checkpoint().unwrap();
    }
    let snap = dir.join(ur_db::SNAPSHOT_FILE);
    let mut bytes = fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&snap, &bytes).unwrap();
    assert!(matches!(Db::open(&dir), Err(DbError::Corrupt(_))));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn sequences_are_durable() {
    let dir = tmpdir("sequences");
    {
        let mut db = Db::open(&dir).unwrap();
        db.try_create_sequence("s").unwrap();
        assert_eq!(db.nextval("s").unwrap(), 1);
        assert_eq!(db.nextval("s").unwrap(), 2);
    }
    let mut db2 = Db::open(&dir).unwrap();
    assert_eq!(db2.nextval("s").unwrap(), 3, "sequence position survives");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn clones_share_the_wal() {
    let dir = tmpdir("clone-shared");
    {
        let mut db = Db::open(&dir).unwrap();
        db.create_table("t", schema_ab()).unwrap();
        let before = db.wal_len();
        let mut clone = db.clone();
        ins(&mut clone, 1, "via-clone");
        // The clone's append went to the same (shared) WAL handle: the
        // original observes the growth.
        assert!(db.wal_len() > before);
        assert_eq!(db.wal_len(), clone.wal_len());
    }
    let db2 = Db::open(&dir).unwrap();
    assert_eq!(db2.row_count("t").unwrap(), 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn persist_rebase_reanchors_on_restored_state() {
    let dir = tmpdir("rebase");
    {
        let mut db = Db::open(&dir).unwrap();
        db.create_table("t", schema_ab()).unwrap();
        ins(&mut db, 1, "base");
        let base = db.clone();
        ins(&mut db, 2, "abandoned");
        // A session-style restore: replace the state wholesale, then
        // re-anchor durability on it.
        let mut restored = base;
        restored.persist_rebase();
        assert!(restored.stats().snapshots_written >= 1);
    }
    let db2 = Db::open(&dir).unwrap();
    assert_eq!(db2.row_count("t").unwrap(), 1, "abandoned row is gone");
    let _ = fs::remove_dir_all(&dir);
}

/// The checkpoint crash window: the new snapshot has been renamed into
/// place but the WAL was never rotated, so the *full* old log sits next
/// to a snapshot that already contains every transaction in it.
/// Recovery must pair them by generation and ignore the stale log, not
/// double-apply it (duplicated rows, doubled sequences, or a hard
/// `Corrupt` on a replayed CreateTable).
#[test]
fn stale_wal_from_checkpoint_crash_window_is_ignored() {
    let dir = tmpdir("stale-wal");
    let dump = {
        let mut db = Db::open(&dir).unwrap();
        db.create_table("t", schema_ab()).unwrap();
        db.create_sequence("s");
        ins(&mut db, 1, "one");
        ins(&mut db, 2, "two");
        assert_eq!(db.nextval("s").unwrap(), 1);
        // Capture the full generation-1 log, then checkpoint (snapshot
        // tagged generation 2, WAL rotated to 2).
        let old_wal = fs::read(dir.join(WAL_FILE)).unwrap();
        db.checkpoint().unwrap();
        let dump = db.dump();
        drop(db);
        // Reproduce the crash window by putting the old log back.
        fs::write(dir.join(WAL_FILE), &old_wal).unwrap();
        dump
    };
    let db2 = Db::open(&dir).unwrap();
    assert_eq!(db2.dump(), dump, "stale WAL was double-applied");
    assert!(db2.stats().stale_wal_ignored > 0, "{}", db2.stats());
    assert_eq!(db2.stats().replayed_records, 0, "{}", db2.stats());
    let _ = fs::remove_dir_all(&dir);
}

/// Two independent opens of one directory would each rewind and append
/// the shared log, truncating each other's committed transactions — the
/// second open is refused while the first handle lives.
#[test]
fn second_open_of_a_live_directory_is_refused() {
    let dir = tmpdir("locked");
    let db = Db::open(&dir).unwrap();
    match Db::open(&dir) {
        Err(DbError::Locked(_)) => {}
        other => panic!("expected DbError::Locked, got {other:?}"),
    }
    drop(db);
    Db::open(&dir).expect("the advisory lock is released with the handle");
    let _ = fs::remove_dir_all(&dir);
}

/// Durable handles are single-writer: once one clone has written, a
/// sibling's in-memory state no longer matches the log, and its appends
/// are refused (auto-commit) or rolled back (explicit commit) instead
/// of interleaving physical records computed against the wrong base.
#[test]
fn stale_clone_writes_are_refused() {
    let dir = tmpdir("stale-clone");
    let mut db = Db::open(&dir).unwrap();
    db.create_table("t", schema_ab()).unwrap();
    let mut clone = db.clone();
    ins(&mut db, 1, "winner");

    let err = clone
        .insert(
            "t",
            &[
                ("A".into(), SqlExpr::lit(DbVal::Int(2))),
                ("B".into(), SqlExpr::lit(DbVal::Str("loser".into()))),
            ],
        )
        .unwrap_err();
    assert_eq!(err, DbError::StaleHandle);
    assert_eq!(clone.row_count("t").unwrap(), 0, "refused append left state");

    // An explicit transaction on the stale clone rolls back at commit.
    clone.begin().unwrap();
    clone
        .insert(
            "t",
            &[
                ("A".into(), SqlExpr::lit(DbVal::Int(3))),
                ("B".into(), SqlExpr::lit(DbVal::Str("doomed".into()))),
            ],
        )
        .unwrap();
    assert_eq!(clone.commit().unwrap_err(), DbError::StaleHandle);
    assert!(!clone.in_txn());
    assert_eq!(clone.row_count("t").unwrap(), 0, "failed commit left state");

    // The writer is unaffected, and recovery sees exactly its history.
    ins(&mut db, 4, "more");
    drop(clone);
    let dump = db.dump();
    drop(db);
    assert_eq!(Db::open(&dir).unwrap().dump(), dump);
    let _ = fs::remove_dir_all(&dir);
}

/// A WAL whose generation is ahead of the snapshot's means the snapshot
/// it was rotated for has vanished — that is real corruption (committed
/// data is missing), not something to recover around silently.
#[test]
fn missing_snapshot_for_rotated_wal_is_corrupt() {
    let dir = tmpdir("missing-snap");
    {
        let mut db = Db::open(&dir).unwrap();
        db.create_table("t", schema_ab()).unwrap();
        db.checkpoint().unwrap();
        ins(&mut db, 1, "post-checkpoint");
    }
    fs::remove_file(dir.join(ur_db::SNAPSHOT_FILE)).unwrap();
    assert!(matches!(Db::open(&dir), Err(DbError::Corrupt(_))));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn wal_replay_handles_many_transactions() {
    let dir = tmpdir("many-txns");
    let dump = {
        let mut db = Db::open_with(
            &dir,
            DurabilityConfig {
                snapshot_every: 0, // force pure WAL replay
                sync_commits: true,
            },
        )
        .unwrap();
        db.create_table("t", schema_ab()).unwrap();
        for i in 0..50 {
            db.begin().unwrap();
            ins(&mut db, i, "bulk");
            if i % 3 == 0 {
                db.update(
                    "t",
                    &[("B".into(), SqlExpr::lit(DbVal::Str("bumped".into())))],
                    &SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(i))),
                )
                .unwrap();
            }
            db.commit().unwrap();
        }
        db.delete(
            "t",
            &SqlExpr::Lt(
                Box::new(SqlExpr::col("A")),
                Box::new(SqlExpr::lit(DbVal::Int(10))),
            ),
        )
        .unwrap();
        db.dump()
    };
    let db2 = Db::open(&dir).unwrap();
    assert_eq!(db2.dump(), dump);
    assert_eq!(db2.stats().recovered_txns, 52);
    let _ = fs::remove_dir_all(&dir);
}
