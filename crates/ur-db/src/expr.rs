//! SQL expression trees: the runtime representation of the Ur/Web `exp`
//! type family.
//!
//! Ur/Web's typed embedding guarantees that every expression reaching the
//! engine is well-typed against its table schema; the engine still
//! validates dynamically ([`SqlExpr::check`]) so that the property tests
//! can confirm the static layer never lets a bad expression through.

use crate::error::DbError;
use crate::table::Schema;
use crate::value::{ColTy, DbVal};
use std::cmp::Ordering;
use std::fmt;

/// A SQL scalar expression over the columns of one table.
#[derive(Clone, Debug, PartialEq)]
pub enum SqlExpr {
    /// A constant.
    Const(DbVal),
    /// A column reference.
    Column(String),
    /// `a = b` (three-valued).
    Eq(Box<SqlExpr>, Box<SqlExpr>),
    /// `a < b`.
    Lt(Box<SqlExpr>, Box<SqlExpr>),
    /// `a <= b`.
    Le(Box<SqlExpr>, Box<SqlExpr>),
    /// `a AND b`.
    And(Box<SqlExpr>, Box<SqlExpr>),
    /// `a OR b`.
    Or(Box<SqlExpr>, Box<SqlExpr>),
    /// `NOT a`.
    Not(Box<SqlExpr>),
    /// `a IS NULL`.
    IsNull(Box<SqlExpr>),
    /// Arithmetic `a + b` (ints and floats).
    Add(Box<SqlExpr>, Box<SqlExpr>),
    /// Arithmetic `a * b`.
    Mul(Box<SqlExpr>, Box<SqlExpr>),
}

impl SqlExpr {
    pub fn col(name: impl Into<String>) -> SqlExpr {
        SqlExpr::Column(name.into())
    }

    pub fn lit(v: DbVal) -> SqlExpr {
        SqlExpr::Const(v)
    }

    pub fn eq(a: SqlExpr, b: SqlExpr) -> SqlExpr {
        SqlExpr::Eq(Box::new(a), Box::new(b))
    }

    pub fn and(a: SqlExpr, b: SqlExpr) -> SqlExpr {
        SqlExpr::And(Box::new(a), Box::new(b))
    }

    pub fn or(a: SqlExpr, b: SqlExpr) -> SqlExpr {
        SqlExpr::Or(Box::new(a), Box::new(b))
    }

    #[allow(clippy::should_implement_trait)] // SQL NOT, deliberately method-like
    pub fn not(a: SqlExpr) -> SqlExpr {
        SqlExpr::Not(Box::new(a))
    }

    pub fn is_null(a: SqlExpr) -> SqlExpr {
        SqlExpr::IsNull(Box::new(a))
    }

    /// Evaluates against one row (three-valued logic: `NULL` propagates).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownColumn`] for columns missing from the
    /// schema and [`DbError::TypeError`] for ill-typed operations — both
    /// impossible for expressions produced by the typed Ur/Web layer.
    pub fn eval(&self, schema: &Schema, row: &[DbVal]) -> Result<DbVal, DbError> {
        match self {
            SqlExpr::Const(v) => Ok(v.clone()),
            SqlExpr::Column(name) => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| DbError::UnknownColumn(name.clone()))?;
                Ok(row[idx].clone())
            }
            SqlExpr::Eq(a, b) => {
                let (a, b) = (a.eval(schema, row)?, b.eval(schema, row)?);
                Ok(match a.sql_eq(&b) {
                    Some(v) => DbVal::Bool(v),
                    None => DbVal::Null,
                })
            }
            SqlExpr::Lt(a, b) => cmp3(a.eval(schema, row)?, b.eval(schema, row)?, |o| {
                o == Ordering::Less
            }),
            SqlExpr::Le(a, b) => cmp3(a.eval(schema, row)?, b.eval(schema, row)?, |o| {
                o != Ordering::Greater
            }),
            SqlExpr::And(a, b) => {
                let a = truth(a.eval(schema, row)?)?;
                let b = truth(b.eval(schema, row)?)?;
                Ok(match (a, b) {
                    (Some(false), _) | (_, Some(false)) => DbVal::Bool(false),
                    (Some(true), Some(true)) => DbVal::Bool(true),
                    _ => DbVal::Null,
                })
            }
            SqlExpr::Or(a, b) => {
                let a = truth(a.eval(schema, row)?)?;
                let b = truth(b.eval(schema, row)?)?;
                Ok(match (a, b) {
                    (Some(true), _) | (_, Some(true)) => DbVal::Bool(true),
                    (Some(false), Some(false)) => DbVal::Bool(false),
                    _ => DbVal::Null,
                })
            }
            SqlExpr::Not(a) => Ok(match truth(a.eval(schema, row)?)? {
                Some(v) => DbVal::Bool(!v),
                None => DbVal::Null,
            }),
            SqlExpr::IsNull(a) => Ok(DbVal::Bool(matches!(a.eval(schema, row)?, DbVal::Null))),
            SqlExpr::Add(a, b) => arith(a.eval(schema, row)?, b.eval(schema, row)?, "+"),
            SqlExpr::Mul(a, b) => arith(a.eval(schema, row)?, b.eval(schema, row)?, "*"),
        }
    }

    /// Statically checks the expression against a schema and returns its
    /// column type.
    ///
    /// # Errors
    ///
    /// Returns a [`DbError`] on unknown columns or type mismatches.
    pub fn check(&self, schema: &Schema) -> Result<ColTy, DbError> {
        match self {
            SqlExpr::Const(v) => match v {
                DbVal::Int(_) => Ok(ColTy::Int),
                DbVal::Float(_) => Ok(ColTy::Float),
                DbVal::Str(_) => Ok(ColTy::Str),
                DbVal::Bool(_) => Ok(ColTy::Bool),
                DbVal::Null => Ok(ColTy::Nullable(Box::new(ColTy::Int))),
            },
            SqlExpr::Column(name) => schema
                .col_type(name)
                .cloned()
                .ok_or_else(|| DbError::UnknownColumn(name.clone())),
            SqlExpr::Eq(a, b) | SqlExpr::Lt(a, b) | SqlExpr::Le(a, b) => {
                let ta = a.check(schema)?;
                let tb = b.check(schema)?;
                if ta.base() == tb.base() {
                    Ok(ColTy::Bool)
                } else {
                    Err(DbError::TypeError(format!(
                        "cannot compare {ta} with {tb}"
                    )))
                }
            }
            SqlExpr::And(a, b) | SqlExpr::Or(a, b) => {
                expect_bool(a.check(schema)?)?;
                expect_bool(b.check(schema)?)?;
                Ok(ColTy::Bool)
            }
            SqlExpr::Not(a) => {
                expect_bool(a.check(schema)?)?;
                Ok(ColTy::Bool)
            }
            SqlExpr::IsNull(a) => {
                a.check(schema)?;
                Ok(ColTy::Bool)
            }
            SqlExpr::Add(a, b) | SqlExpr::Mul(a, b) => {
                let ta = a.check(schema)?;
                let tb = b.check(schema)?;
                match (ta.base(), tb.base()) {
                    (ColTy::Int, ColTy::Int) => Ok(ColTy::Int),
                    (ColTy::Float, ColTy::Float) => Ok(ColTy::Float),
                    _ => Err(DbError::TypeError(format!(
                        "cannot do arithmetic on {ta} and {tb}"
                    ))),
                }
            }
        }
    }

    /// Renders the expression as SQL text (for the query log and
    /// debugging; column names are double-quoted, string literals
    /// escaped).
    pub fn to_sql(&self) -> String {
        match self {
            SqlExpr::Const(v) => v.to_sql(),
            SqlExpr::Column(name) => format!("\"{}\"", name.replace('"', "\"\"")),
            SqlExpr::Eq(a, b) => format!("({} = {})", a.to_sql(), b.to_sql()),
            SqlExpr::Lt(a, b) => format!("({} < {})", a.to_sql(), b.to_sql()),
            SqlExpr::Le(a, b) => format!("({} <= {})", a.to_sql(), b.to_sql()),
            SqlExpr::And(a, b) => format!("({} AND {})", a.to_sql(), b.to_sql()),
            SqlExpr::Or(a, b) => format!("({} OR {})", a.to_sql(), b.to_sql()),
            SqlExpr::Not(a) => format!("(NOT {})", a.to_sql()),
            SqlExpr::IsNull(a) => format!("({} IS NULL)", a.to_sql()),
            SqlExpr::Add(a, b) => format!("({} + {})", a.to_sql(), b.to_sql()),
            SqlExpr::Mul(a, b) => format!("({} * {})", a.to_sql(), b.to_sql()),
        }
    }
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sql())
    }
}

fn truth(v: DbVal) -> Result<Option<bool>, DbError> {
    match v {
        DbVal::Bool(b) => Ok(Some(b)),
        DbVal::Null => Ok(None),
        other => Err(DbError::TypeError(format!(
            "expected boolean, got {other}"
        ))),
    }
}

fn cmp3(a: DbVal, b: DbVal, f: impl Fn(Ordering) -> bool) -> Result<DbVal, DbError> {
    if matches!(a, DbVal::Null) || matches!(b, DbVal::Null) {
        return Ok(DbVal::Null);
    }
    match a.sql_cmp(&b) {
        Some(o) => Ok(DbVal::Bool(f(o))),
        None => Err(DbError::TypeError(format!("cannot compare {a} and {b}"))),
    }
}

fn arith(a: DbVal, b: DbVal, op: &str) -> Result<DbVal, DbError> {
    match (a, b, op) {
        (DbVal::Null, _, _) | (_, DbVal::Null, _) => Ok(DbVal::Null),
        (DbVal::Int(a), DbVal::Int(b), "+") => Ok(DbVal::Int(a.wrapping_add(b))),
        (DbVal::Int(a), DbVal::Int(b), "*") => Ok(DbVal::Int(a.wrapping_mul(b))),
        (DbVal::Float(a), DbVal::Float(b), "+") => Ok(DbVal::Float(a + b)),
        (DbVal::Float(a), DbVal::Float(b), "*") => Ok(DbVal::Float(a * b)),
        (a, b, op) => Err(DbError::TypeError(format!("cannot compute {a} {op} {b}"))),
    }
}

fn expect_bool(t: ColTy) -> Result<(), DbError> {
    if matches!(t.base(), ColTy::Bool) {
        Ok(())
    } else {
        Err(DbError::TypeError(format!("expected boolean, got {t}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Schema;

    fn schema() -> Schema {
        Schema::new(vec![
            ("A".into(), ColTy::Int),
            ("B".into(), ColTy::Str),
            ("C".into(), ColTy::Nullable(Box::new(ColTy::Int))),
        ])
        .unwrap()
    }

    fn row() -> Vec<DbVal> {
        vec![DbVal::Int(5), DbVal::Str("x".into()), DbVal::Null]
    }

    #[test]
    fn column_and_const_eval() {
        let s = schema();
        let e = SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(5)));
        assert_eq!(e.eval(&s, &row()).unwrap(), DbVal::Bool(true));
    }

    #[test]
    fn null_propagates_three_valued() {
        let s = schema();
        let e = SqlExpr::eq(SqlExpr::col("C"), SqlExpr::lit(DbVal::Int(5)));
        assert_eq!(e.eval(&s, &row()).unwrap(), DbVal::Null);
        // NULL AND FALSE = FALSE; NULL OR TRUE = TRUE.
        let f = SqlExpr::and(e.clone(), SqlExpr::lit(DbVal::Bool(false)));
        assert_eq!(f.eval(&s, &row()).unwrap(), DbVal::Bool(false));
        let g = SqlExpr::or(e, SqlExpr::lit(DbVal::Bool(true)));
        assert_eq!(g.eval(&s, &row()).unwrap(), DbVal::Bool(true));
    }

    #[test]
    fn is_null() {
        let s = schema();
        let e = SqlExpr::is_null(SqlExpr::col("C"));
        assert_eq!(e.eval(&s, &row()).unwrap(), DbVal::Bool(true));
        let e2 = SqlExpr::is_null(SqlExpr::col("A"));
        assert_eq!(e2.eval(&s, &row()).unwrap(), DbVal::Bool(false));
    }

    #[test]
    fn unknown_column_rejected() {
        let s = schema();
        let e = SqlExpr::col("Z");
        assert!(matches!(
            e.eval(&s, &row()),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(e.check(&s).is_err());
    }

    #[test]
    fn check_types() {
        let s = schema();
        let good = SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(1)));
        assert_eq!(good.check(&s).unwrap(), ColTy::Bool);
        let bad = SqlExpr::eq(SqlExpr::col("A"), SqlExpr::col("B"));
        assert!(bad.check(&s).is_err());
        let bad2 = SqlExpr::and(SqlExpr::col("A"), SqlExpr::lit(DbVal::Bool(true)));
        assert!(bad2.check(&s).is_err());
    }

    #[test]
    fn arithmetic() {
        let s = schema();
        let e = SqlExpr::Add(
            Box::new(SqlExpr::col("A")),
            Box::new(SqlExpr::lit(DbVal::Int(2))),
        );
        assert_eq!(e.eval(&s, &row()).unwrap(), DbVal::Int(7));
        let m = SqlExpr::Mul(
            Box::new(SqlExpr::col("A")),
            Box::new(SqlExpr::lit(DbVal::Int(3))),
        );
        assert_eq!(m.eval(&s, &row()).unwrap(), DbVal::Int(15));
    }

    #[test]
    fn sql_text_is_escaped() {
        let e = SqlExpr::eq(
            SqlExpr::col("B"),
            SqlExpr::lit(DbVal::Str("'; DROP TABLE t; --".into())),
        );
        let sql = e.to_sql();
        assert!(sql.contains("''; DROP TABLE t; --'"));
        assert_eq!(sql, "(\"B\" = '''; DROP TABLE t; --')");
    }

    #[test]
    fn comparison_operators() {
        let s = schema();
        let lt = SqlExpr::Lt(
            Box::new(SqlExpr::col("A")),
            Box::new(SqlExpr::lit(DbVal::Int(6))),
        );
        assert_eq!(lt.eval(&s, &row()).unwrap(), DbVal::Bool(true));
        let le = SqlExpr::Le(
            Box::new(SqlExpr::col("A")),
            Box::new(SqlExpr::lit(DbVal::Int(5))),
        );
        assert_eq!(le.eval(&s, &row()).unwrap(), DbVal::Bool(true));
        let not = SqlExpr::not(lt);
        assert_eq!(not.eval(&s, &row()).unwrap(), DbVal::Bool(false));
    }
}
