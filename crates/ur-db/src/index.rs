//! Ordered secondary indexes: a `BTreeMap` from typed column keys to
//! row positions, one per declared index.
//!
//! Indexes are **derived state**: the rows are always the truth, and an
//! index is a map that must at all times equal the one a fresh scan of
//! the rows would build ([`Index::divergence`] checks exactly that).
//! Maintenance is routed through the same `Table` methods the WAL
//! replay interpreter uses (`crate::recover::apply_record`), so live
//! execution, crash recovery, and snapshot load all rebuild the same
//! maps — the crash harness's index oracle relies on this.
//!
//! The map is behind an `Arc` with copy-on-write maintenance
//! ([`Arc::make_mut`]): publishing an MVCC snapshot shares the map by
//! handle, and the first write after a publish clones it once rather
//! than on every publish.
//!
//! Key ordering is total even for floats (`f64::total_cmp` after
//! normalizing `-0.0` to `0.0`), with `NULL` ranked below every other
//! value. The planner never *probes* float keys (see `crate::plan`),
//! but a float column may still be indexed and must order
//! deterministically for the rebuild oracle to be meaningful.

use crate::error::DbError;
use crate::value::DbVal;
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

/// A row as stored by the engine: shared, immutable. Updates replace
/// the slot with a new version; old versions stay alive for as long as
/// an MVCC snapshot holds them.
pub type Row = Arc<[DbVal]>;

/// The durable identity of an index: its name and the column it covers.
/// This is what the snapshot persists; the map itself is rebuilt from
/// the rows on load.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexDef {
    pub name: String,
    pub column: String,
}

/// A totally ordered wrapper over [`DbVal`] usable as a `BTreeMap` key.
///
/// Ranks: `NULL` < booleans < integers < floats < strings. Within a
/// rank the natural order applies; floats use [`f64::total_cmp`] with
/// `-0.0` normalized to `0.0` at construction so that key equality can
/// never disagree with SQL equality on the values the planner probes.
#[derive(Clone, Debug)]
pub struct IndexKey(DbVal);

impl IndexKey {
    pub fn new(v: &DbVal) -> IndexKey {
        match v {
            DbVal::Float(x) if *x == 0.0 => IndexKey(DbVal::Float(0.0)),
            other => IndexKey(other.clone()),
        }
    }

    fn rank(&self) -> u8 {
        match &self.0 {
            DbVal::Null => 0,
            DbVal::Bool(_) => 1,
            DbVal::Int(_) => 2,
            DbVal::Float(_) => 3,
            DbVal::Str(_) => 4,
        }
    }
}

impl Ord for IndexKey {
    fn cmp(&self, other: &IndexKey) -> Ordering {
        match (&self.0, &other.0) {
            (DbVal::Bool(a), DbVal::Bool(b)) => a.cmp(b),
            (DbVal::Int(a), DbVal::Int(b)) => a.cmp(b),
            (DbVal::Float(a), DbVal::Float(b)) => a.total_cmp(b),
            (DbVal::Str(a), DbVal::Str(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl PartialOrd for IndexKey {
    fn partial_cmp(&self, other: &IndexKey) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for IndexKey {
    fn eq(&self, other: &IndexKey) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for IndexKey {}

/// One ordered secondary index over a single column of a table.
#[derive(Clone, Debug)]
pub struct Index {
    pub def: IndexDef,
    /// Position of the covered column in the table's schema.
    pub col: usize,
    /// Key → row positions holding that key, each vector ascending.
    /// Shared with published MVCC snapshots; maintenance copies on
    /// write.
    map: Arc<BTreeMap<IndexKey, Vec<usize>>>,
}

fn build_map(col: usize, rows: &[Row]) -> BTreeMap<IndexKey, Vec<usize>> {
    let mut map: BTreeMap<IndexKey, Vec<usize>> = BTreeMap::new();
    for (pos, row) in rows.iter().enumerate() {
        map.entry(IndexKey::new(&row[col])).or_default().push(pos);
    }
    map
}

impl Index {
    /// Builds the index over the current rows.
    pub(crate) fn build(def: IndexDef, col: usize, rows: &[Row]) -> Index {
        Index {
            def,
            col,
            map: Arc::new(build_map(col, rows)),
        }
    }

    /// Rebuilds the map from scratch (after a delete shifted positions).
    pub(crate) fn rebuild(&mut self, rows: &[Row]) {
        self.map = Arc::new(build_map(self.col, rows));
    }

    /// Records a row appended at position `pos`.
    pub(crate) fn note_insert(&mut self, pos: usize, row: &[DbVal]) {
        Arc::make_mut(&mut self.map)
            .entry(IndexKey::new(&row[self.col]))
            .or_default()
            .push(pos);
    }

    /// Records an in-place update of the row at `pos` (positions do not
    /// shift; only the key may move).
    pub(crate) fn note_update(&mut self, pos: usize, old: &[DbVal], new: &[DbVal]) {
        let old_key = IndexKey::new(&old[self.col]);
        let new_key = IndexKey::new(&new[self.col]);
        if old_key == new_key {
            return;
        }
        let map = Arc::make_mut(&mut self.map);
        if let Some(v) = map.get_mut(&old_key) {
            v.retain(|p| *p != pos);
            if v.is_empty() {
                map.remove(&old_key);
            }
        }
        let v = map.entry(new_key).or_default();
        let at = v.partition_point(|p| *p < pos);
        v.insert(at, pos);
    }

    /// Row positions whose key equals `v` (ascending; empty when none).
    pub fn probe_eq(&self, v: &DbVal) -> &[usize] {
        self.map
            .get(&IndexKey::new(v))
            .map_or(&[], |v| v.as_slice())
    }

    /// Row positions whose key lies in the given (optionally half-open)
    /// range, ascending. Keys of a different rank than `like` — in
    /// practice only the `NULL` entries of a nullable column — are
    /// excluded: SQL comparisons with `NULL` never match.
    pub fn probe_range(
        &self,
        lo: Option<(&DbVal, bool)>,
        hi: Option<(&DbVal, bool)>,
        like: &DbVal,
    ) -> Vec<usize> {
        let rank = IndexKey::new(like).rank();
        let lo_b = match lo {
            Some((v, true)) => Bound::Included(IndexKey::new(v)),
            Some((v, false)) => Bound::Excluded(IndexKey::new(v)),
            None => Bound::Unbounded,
        };
        let hi_b = match hi {
            Some((v, true)) => Bound::Included(IndexKey::new(v)),
            Some((v, false)) => Bound::Excluded(IndexKey::new(v)),
            None => Bound::Unbounded,
        };
        let mut out = Vec::new();
        for (k, positions) in self.map.range((lo_b, hi_b)) {
            if k.rank() == rank {
                out.extend_from_slice(positions);
            }
        }
        out.sort_unstable();
        out
    }

    /// Number of distinct keys (the planner's selectivity statistic).
    pub fn ndv(&self) -> usize {
        self.map.len()
    }

    /// Total positions indexed (must equal the table's row count).
    pub fn entries(&self) -> usize {
        self.map.values().map(Vec::len).sum()
    }

    /// Compares this map against one freshly rebuilt from `rows`;
    /// returns a description of the first divergence, `None` when they
    /// agree exactly. This is the recovery oracle: a maintained index
    /// must always equal the from-scratch rebuild.
    pub(crate) fn divergence(&self, rows: &[Row]) -> Option<String> {
        let fresh = build_map(self.col, rows);
        if *self.map == fresh {
            return None;
        }
        for (k, v) in fresh.iter() {
            match self.map.get(k) {
                None => return Some(format!("index {}: key {} missing", self.def.name, k.0)),
                Some(have) if have != v => {
                    return Some(format!(
                        "index {}: key {} has positions {have:?}, expected {v:?}",
                        self.def.name, k.0
                    ))
                }
                _ => {}
            }
        }
        Some(format!(
            "index {}: {} stale keys not present in a fresh rebuild",
            self.def.name,
            self.map.len().saturating_sub(fresh.len())
        ))
    }

    /// Validates that `column` exists in a column list and returns its
    /// position.
    pub(crate) fn resolve_col(
        columns: &[(String, crate::value::ColTy)],
        column: &str,
    ) -> Result<usize, DbError> {
        columns
            .iter()
            .position(|(n, _)| n == column)
            .ok_or_else(|| DbError::UnknownColumn(column.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: Vec<DbVal>) -> Row {
        Arc::from(vals)
    }

    fn sample_rows() -> Vec<Row> {
        vec![
            row(vec![DbVal::Int(5), DbVal::Str("a".into())]),
            row(vec![DbVal::Int(3), DbVal::Str("b".into())]),
            row(vec![DbVal::Int(5), DbVal::Str("c".into())]),
            row(vec![DbVal::Int(1), DbVal::Str("d".into())]),
        ]
    }

    #[test]
    fn build_and_probe_eq() {
        let rows = sample_rows();
        let idx = Index::build(
            IndexDef {
                name: "i".into(),
                column: "A".into(),
            },
            0,
            &rows,
        );
        assert_eq!(idx.probe_eq(&DbVal::Int(5)), &[0, 2]);
        assert_eq!(idx.probe_eq(&DbVal::Int(1)), &[3]);
        assert!(idx.probe_eq(&DbVal::Int(99)).is_empty());
        assert_eq!(idx.ndv(), 3);
        assert_eq!(idx.entries(), 4);
        assert!(idx.divergence(&rows).is_none());
    }

    #[test]
    fn probe_range_is_sorted_and_bounded() {
        let rows = sample_rows();
        let idx = Index::build(
            IndexDef {
                name: "i".into(),
                column: "A".into(),
            },
            0,
            &rows,
        );
        // A < 5
        let got = idx.probe_range(None, Some((&DbVal::Int(5), false)), &DbVal::Int(0));
        assert_eq!(got, vec![1, 3]);
        // 3 <= A <= 5
        let got = idx.probe_range(
            Some((&DbVal::Int(3), true)),
            Some((&DbVal::Int(5), true)),
            &DbVal::Int(0),
        );
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn range_excludes_nulls() {
        let rows = vec![
            row(vec![DbVal::Null]),
            row(vec![DbVal::Int(1)]),
            row(vec![DbVal::Int(2)]),
        ];
        let idx = Index::build(
            IndexDef {
                name: "i".into(),
                column: "A".into(),
            },
            0,
            &rows,
        );
        // Unbounded-low range over ints must not sweep in the NULL entry.
        let got = idx.probe_range(None, Some((&DbVal::Int(10), true)), &DbVal::Int(0));
        assert_eq!(got, vec![1, 2]);
        assert_eq!(idx.probe_eq(&DbVal::Null), &[0]);
    }

    #[test]
    fn maintenance_matches_rebuild() {
        let mut rows = sample_rows();
        let mut idx = Index::build(
            IndexDef {
                name: "i".into(),
                column: "A".into(),
            },
            0,
            &rows,
        );
        // Insert.
        let r = row(vec![DbVal::Int(3), DbVal::Str("e".into())]);
        idx.note_insert(rows.len(), &r);
        rows.push(r);
        assert!(idx.divergence(&rows).is_none());
        // Update moving a key.
        let old = rows[0].clone();
        let new = row(vec![DbVal::Int(3), DbVal::Str("a".into())]);
        idx.note_update(0, &old, &new);
        rows[0] = new;
        assert!(idx.divergence(&rows).is_none());
        assert_eq!(idx.probe_eq(&DbVal::Int(3)), &[0, 1, 4]);
        // Delete shifts positions: rebuild.
        rows.remove(1);
        idx.rebuild(&rows);
        assert!(idx.divergence(&rows).is_none());
    }

    #[test]
    fn divergence_detects_corruption() {
        let rows = sample_rows();
        let mut idx = Index::build(
            IndexDef {
                name: "i".into(),
                column: "A".into(),
            },
            0,
            &rows,
        );
        // Sabotage: claim position 0 holds key 42.
        idx.note_update(
            0,
            &[DbVal::Int(5), DbVal::Str("a".into())],
            &[DbVal::Int(42), DbVal::Str("a".into())],
        );
        assert!(idx.divergence(&rows).is_some());
    }

    #[test]
    fn float_keys_are_totally_ordered() {
        let a = IndexKey::new(&DbVal::Float(0.0));
        let b = IndexKey::new(&DbVal::Float(-0.0));
        assert_eq!(a, b, "negative zero normalizes");
        let n1 = IndexKey::new(&DbVal::Float(f64::NAN));
        let n2 = IndexKey::new(&DbVal::Float(f64::NAN));
        assert_eq!(n1.cmp(&n2), Ordering::Equal);
        assert!(IndexKey::new(&DbVal::Null) < IndexKey::new(&DbVal::Bool(false)));
        assert!(IndexKey::new(&DbVal::Int(i64::MAX)) < IndexKey::new(&DbVal::Float(f64::MIN)));
        assert!(IndexKey::new(&DbVal::Float(1.0)) < IndexKey::new(&DbVal::Str(String::new())));
    }
}
