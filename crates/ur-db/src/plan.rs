//! The cost-based access-path planner.
//!
//! A statement's predicate (an [`SqlExpr`] tree) is split into its
//! `AND`-conjuncts and analyzed for probes the table's secondary
//! indexes can answer: `col = const` becomes an **equality probe**,
//! `col < const` / `const <= col` (and friends) accumulate into a
//! **range probe**. Each candidate is costed with row-count statistics
//! — `rows / ndv` for an equality probe (ndv = distinct keys in the
//! index), a fixed fraction for a range — against the full-scan cost of
//! `rows`, and the cheapest access path wins.
//!
//! **Correctness over cleverness**: the chosen probe only produces a
//! *candidate* superset; the executor re-evaluates the full predicate
//! on every candidate row (predicate pushdown selects the probe, it
//! never skips the recheck). Planner-on and planner-off must therefore
//! return byte-identical result sets — the `db` bench and the property
//! tests gate on exactly that. Two deliberate fallbacks keep the
//! superset guarantee airtight:
//!
//! - **Floats**: SQL float comparison (`sql_eq`/`sql_cmp` on `f64`)
//!   disagrees with any total order a `BTreeMap` key can use (`-0.0`,
//!   `NaN`), and a comparison against `NaN` *errors* row-by-row, which
//!   a candidate-only evaluation could skip. Any float operand in the
//!   predicate forces a full scan.
//! - **`NULL` literals**: `col = NULL` never matches; the scan path
//!   handles it and a probe is pointless.
//!
//! Every planned statement emits a machine-readable `EXPLAIN` line
//! ([`Plan::explain`], a single JSON object) into the database's
//! bounded plan log, surfaced through the REPL `:db` command and the
//! serve `db` request.

use crate::expr::SqlExpr;
use crate::table::Table;
use crate::value::{ColTy, DbVal};

/// How a statement will read its table.
#[derive(Clone, Debug, PartialEq)]
pub enum Access {
    /// Evaluate the predicate on every row.
    FullScan,
    /// Probe one index key, then recheck the full predicate.
    IndexEq { index: String, column: String, key: DbVal },
    /// Walk one index key range, then recheck the full predicate.
    IndexRange {
        index: String,
        column: String,
        /// Lower bound (value, inclusive) — `None` = unbounded.
        lo: Option<(DbVal, bool)>,
        /// Upper bound (value, inclusive).
        hi: Option<(DbVal, bool)>,
    },
}

/// A planned access path with its statistics, ready to execute and to
/// render as an `EXPLAIN` line.
#[derive(Clone, Debug)]
pub struct Plan {
    pub table: String,
    pub access: Access,
    /// Rows in the table when planned.
    pub rows_total: u64,
    /// Estimated candidate rows the access path will touch.
    pub est_rows: u64,
    /// Cost in estimated row visits (the full-scan cost is `rows_total`).
    pub cost: u64,
    /// Why the planner fell back to a scan *despite* the table having
    /// indexes; `None` for a chosen probe or an unindexed table.
    pub fallback: Option<&'static str>,
}

/// Splits a predicate into its `AND`-conjuncts.
fn conjuncts<'a>(pred: &'a SqlExpr, out: &mut Vec<&'a SqlExpr>) {
    match pred {
        SqlExpr::And(a, b) => {
            conjuncts(a, out);
            conjuncts(b, out);
        }
        other => out.push(other),
    }
}

/// True when the predicate anywhere contains a float constant or a
/// reference to a float-typed column — see the module docs for why
/// those force a full scan.
fn mentions_float(pred: &SqlExpr, t: &Table) -> bool {
    match pred {
        SqlExpr::Const(DbVal::Float(_)) => true,
        SqlExpr::Const(_) => false,
        SqlExpr::Column(name) => t
            .schema
            .col_type(name)
            .is_some_and(|ty| matches!(ty.base(), ColTy::Float)),
        SqlExpr::Eq(a, b)
        | SqlExpr::Lt(a, b)
        | SqlExpr::Le(a, b)
        | SqlExpr::And(a, b)
        | SqlExpr::Or(a, b)
        | SqlExpr::Add(a, b)
        | SqlExpr::Mul(a, b) => mentions_float(a, t) || mentions_float(b, t),
        SqlExpr::Not(a) | SqlExpr::IsNull(a) => mentions_float(a, t),
    }
}

/// One accumulated range constraint on a column.
#[derive(Default)]
struct RangeAcc {
    lo: Option<(DbVal, bool)>,
    hi: Option<(DbVal, bool)>,
}

fn tighten_hi(acc: &mut RangeAcc, v: &DbVal, incl: bool) {
    let tighter = match &acc.hi {
        None => true,
        Some((cur, cur_incl)) => match v.sql_cmp(cur) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Equal) => *cur_incl && !incl,
            _ => false,
        },
    };
    if tighter {
        acc.hi = Some((v.clone(), incl));
    }
}

fn tighten_lo(acc: &mut RangeAcc, v: &DbVal, incl: bool) {
    let tighter = match &acc.lo {
        None => true,
        Some((cur, cur_incl)) => match v.sql_cmp(cur) {
            Some(std::cmp::Ordering::Greater) => true,
            Some(std::cmp::Ordering::Equal) => *cur_incl && !incl,
            _ => false,
        },
    };
    if tighter {
        acc.lo = Some((v.clone(), incl));
    }
}

/// The trivial plan: scan everything. Used for unpredicated paths and
/// as the planner-off baseline.
pub(crate) fn scan_plan(table: &str, t: &Table) -> Plan {
    let rows = t.rows.len() as u64;
    Plan {
        table: table.to_string(),
        access: Access::FullScan,
        rows_total: rows,
        est_rows: rows,
        cost: rows,
        fallback: None,
    }
}

/// Plans the access path for `pred` over table `t`.
pub(crate) fn plan(table: &str, t: &Table, pred: &SqlExpr) -> Plan {
    let rows = t.rows.len() as u64;
    let mut best = scan_plan(table, t);
    let has_indexes = !t.indexes.is_empty();
    if !has_indexes {
        return best;
    }
    if mentions_float(pred, t) {
        best.fallback = Some("float operand: order/equality semantics force a scan");
        return best;
    }

    let mut cs = Vec::new();
    conjuncts(pred, &mut cs);

    // Equality probes.
    for c in &cs {
        let (col, key) = match c {
            SqlExpr::Eq(a, b) => match (a.as_ref(), b.as_ref()) {
                (SqlExpr::Column(c), SqlExpr::Const(v))
                | (SqlExpr::Const(v), SqlExpr::Column(c)) => (c, v),
                _ => continue,
            },
            _ => continue,
        };
        if matches!(key, DbVal::Null) {
            continue; // `col = NULL` never matches; the scan handles it
        }
        let Some(idx) = t.index_on(col) else { continue };
        let est = (rows / (idx.ndv().max(1) as u64)).max(1);
        if est < best.cost {
            best = Plan {
                table: table.to_string(),
                access: Access::IndexEq {
                    index: idx.def.name.clone(),
                    column: col.clone(),
                    key: key.clone(),
                },
                rows_total: rows,
                est_rows: est,
                cost: est,
                fallback: None,
            };
        }
    }

    // Range probes: accumulate bounds per column, tightest wins.
    let mut ranges: Vec<(String, RangeAcc)> = Vec::new();
    for c in &cs {
        let (col, v, lo_side, incl) = match c {
            SqlExpr::Lt(a, b) => match (a.as_ref(), b.as_ref()) {
                (SqlExpr::Column(c), SqlExpr::Const(v)) => (c, v, false, false),
                (SqlExpr::Const(v), SqlExpr::Column(c)) => (c, v, true, false),
                _ => continue,
            },
            SqlExpr::Le(a, b) => match (a.as_ref(), b.as_ref()) {
                (SqlExpr::Column(c), SqlExpr::Const(v)) => (c, v, false, true),
                (SqlExpr::Const(v), SqlExpr::Column(c)) => (c, v, true, true),
                _ => continue,
            },
            _ => continue,
        };
        if matches!(v, DbVal::Null) {
            continue;
        }
        let pos = match ranges.iter().position(|(n, _)| n == col) {
            Some(p) => p,
            None => {
                ranges.push((col.clone(), RangeAcc::default()));
                ranges.len() - 1
            }
        };
        let acc = &mut ranges[pos].1;
        if lo_side {
            tighten_lo(acc, v, incl);
        } else {
            tighten_hi(acc, v, incl);
        }
    }
    for (col, acc) in ranges {
        let Some(idx) = t.index_on(&col) else { continue };
        let bounded_both = acc.lo.is_some() && acc.hi.is_some();
        let est = if bounded_both {
            (rows / 4).max(1)
        } else {
            (rows / 3).max(1)
        };
        if est < best.cost {
            best = Plan {
                table: table.to_string(),
                access: Access::IndexRange {
                    index: idx.def.name.clone(),
                    column: col,
                    lo: acc.lo,
                    hi: acc.hi,
                },
                rows_total: rows,
                est_rows: est,
                cost: est,
                fallback: None,
            };
        }
    }

    if matches!(best.access, Access::FullScan) {
        best.fallback = Some("no probeable conjunct for the declared indexes");
    }
    best
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn bound_str(side: &str, b: &Option<(DbVal, bool)>, lo: bool) -> String {
    match b {
        None => format!("\"{side}\":null"),
        Some((v, incl)) => {
            let op = match (lo, incl) {
                (true, true) => ">=",
                (true, false) => ">",
                (false, true) => "<=",
                (false, false) => "<",
            };
            format!("\"{side}\":\"{} {}\"", op, json_escape(&v.to_sql()))
        }
    }
}

impl Plan {
    /// Renders the plan as one machine-readable JSON object — the
    /// `EXPLAIN` output surfaced by `:db` and the serve `db` command.
    pub fn explain(&self) -> String {
        let head = format!(
            "\"table\":\"{}\",\"rows\":{},\"est_rows\":{},\"cost\":{}",
            json_escape(&self.table),
            self.rows_total,
            self.est_rows,
            self.cost
        );
        let fallback = match self.fallback {
            Some(f) => format!("\"fallback\":\"{}\"", json_escape(f)),
            None => "\"fallback\":null".to_string(),
        };
        match &self.access {
            Access::FullScan => {
                format!("{{\"access\":\"full_scan\",{head},{fallback}}}")
            }
            Access::IndexEq { index, column, key } => format!(
                "{{\"access\":\"index_eq\",\"index\":\"{}\",\"column\":\"{}\",\"key\":\"{}\",{head},{fallback}}}",
                json_escape(index),
                json_escape(column),
                json_escape(&key.to_sql()),
            ),
            Access::IndexRange {
                index,
                column,
                lo,
                hi,
            } => format!(
                "{{\"access\":\"index_range\",\"index\":\"{}\",\"column\":\"{}\",{},{},{head},{fallback}}}",
                json_escape(index),
                json_escape(column),
                bound_str("lo", lo, true),
                bound_str("hi", hi, false),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Schema;
    use std::sync::Arc;

    fn table_with_index(n: i64) -> Table {
        let schema = Schema::new(vec![
            ("A".into(), ColTy::Int),
            ("B".into(), ColTy::Str),
            ("F".into(), ColTy::Float),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        for i in 0..n {
            t.insert_row(Arc::from(vec![
                DbVal::Int(i % 100),
                DbVal::Str(format!("s{i}")),
                DbVal::Float(i as f64),
            ]));
        }
        t.create_index("t_a", "A").unwrap();
        t
    }

    #[test]
    fn eq_probe_beats_scan() {
        let t = table_with_index(1000);
        let pred = SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(7)));
        let p = plan("t", &t, &pred);
        assert!(matches!(p.access, Access::IndexEq { .. }), "{p:?}");
        assert!(p.cost < p.rows_total);
        assert!(p.fallback.is_none());
        let e = p.explain();
        assert!(e.contains("\"access\":\"index_eq\""), "{e}");
        assert!(e.contains("\"index\":\"t_a\""), "{e}");
        assert!(e.contains("\"fallback\":null"), "{e}");
    }

    #[test]
    fn range_bounds_accumulate() {
        let t = table_with_index(1000);
        // 3 <= A AND A < 10 AND A < 50 — the tighter upper bound wins.
        let pred = SqlExpr::and(
            SqlExpr::Le(
                Box::new(SqlExpr::lit(DbVal::Int(3))),
                Box::new(SqlExpr::col("A")),
            ),
            SqlExpr::and(
                SqlExpr::Lt(
                    Box::new(SqlExpr::col("A")),
                    Box::new(SqlExpr::lit(DbVal::Int(10))),
                ),
                SqlExpr::Lt(
                    Box::new(SqlExpr::col("A")),
                    Box::new(SqlExpr::lit(DbVal::Int(50))),
                ),
            ),
        );
        let p = plan("t", &t, &pred);
        match &p.access {
            Access::IndexRange { lo, hi, .. } => {
                assert_eq!(lo, &Some((DbVal::Int(3), true)));
                assert_eq!(hi, &Some((DbVal::Int(10), false)));
            }
            other => panic!("expected range, got {other:?}"),
        }
        let e = p.explain();
        assert!(e.contains("\"lo\":\">= 3\""), "{e}");
        assert!(e.contains("\"hi\":\"< 10\""), "{e}");
    }

    #[test]
    fn float_operand_forces_scan_with_reason() {
        let t = table_with_index(1000);
        let pred = SqlExpr::and(
            SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(7))),
            SqlExpr::Lt(
                Box::new(SqlExpr::col("F")),
                Box::new(SqlExpr::lit(DbVal::Float(2.5))),
            ),
        );
        let p = plan("t", &t, &pred);
        assert!(matches!(p.access, Access::FullScan));
        assert!(p.fallback.unwrap().contains("float"));
    }

    #[test]
    fn unindexed_conjunct_falls_back_with_reason() {
        let t = table_with_index(100);
        let pred = SqlExpr::eq(SqlExpr::col("B"), SqlExpr::lit(DbVal::Str("s1".into())));
        let p = plan("t", &t, &pred);
        assert!(matches!(p.access, Access::FullScan));
        assert!(p.fallback.is_some());
    }

    #[test]
    fn unindexed_table_scans_without_fallback() {
        let schema = Schema::new(vec![("A".into(), ColTy::Int)]).unwrap();
        let t = Table::new(schema);
        let pred = SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(1)));
        let p = plan("t", &t, &pred);
        assert!(matches!(p.access, Access::FullScan));
        assert!(p.fallback.is_none(), "a scan of an unindexed table is not a fallback");
    }

    #[test]
    fn null_literal_eq_is_not_probed() {
        let t = table_with_index(100);
        let pred = SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Null));
        let p = plan("t", &t, &pred);
        assert!(matches!(p.access, Access::FullScan));
    }

    #[test]
    fn explain_escapes_names() {
        let schema = Schema::new(vec![("A\"B".into(), ColTy::Int)]).unwrap();
        let mut t = Table::new(schema);
        t.create_index("i\"x", "A\"B").unwrap();
        let pred = SqlExpr::eq(SqlExpr::col("A\"B"), SqlExpr::lit(DbVal::Int(1)));
        let p = plan("t\"q", &t, &pred);
        let e = p.explain();
        assert!(e.contains("\\\""), "quotes escaped: {e}");
        assert!(!e.contains(":\"t\"q\""), "no raw quote breaks the JSON: {e}");
    }
}
