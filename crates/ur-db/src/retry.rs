//! Bounded-backoff retry for advisory-lock contention.
//!
//! A durable directory is guarded by an exclusive advisory lock
//! (`DIR/LOCK`, see [`crate::recover`]): a second [`Db::open`] while the
//! holder is alive fails fast with [`DbError::Locked`]. That is the
//! right *default* — two long-lived writers on one directory is a
//! deployment bug — but two callers legitimately race for the lock
//! during handoff windows:
//!
//! * `ur-serve`'s supervisor replacing a wedged worker: the abandoned
//!   thread still holds the lock until its bounded stall finishes and
//!   its `Db` drops, while the replacement is already trying to open.
//! * `urc --db-dir` started while a previous invocation is still
//!   checkpointing on exit.
//!
//! [`Db::open_with_retry`] serves those windows: jittered exponential
//! backoff under a hard wall-clock budget, retrying **only**
//! [`DbError::Locked`] — corruption or I/O errors surface immediately.
//! The jitter is seeded from the process id and attempt number
//! (splitmix64), so two racing processes decorrelate without any shared
//! state, while a single process's schedule stays reproducible.

use crate::db::Db;
use crate::error::DbError;
use crate::txn::DurabilityConfig;
use std::path::Path;
use std::time::{Duration, Instant};

/// Backoff tunables for [`Db::open_with_retry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryConfig {
    /// Total wall-clock budget across all attempts. Zero means a single
    /// attempt (fail fast, exactly [`Db::open`]).
    pub wait: Duration,
    /// First backoff delay; doubles each attempt up to [`Self::max_delay`].
    pub base_delay: Duration,
    /// Ceiling on a single backoff delay.
    pub max_delay: Duration,
}

impl Default for RetryConfig {
    fn default() -> RetryConfig {
        RetryConfig {
            wait: Duration::from_millis(1_000),
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
        }
    }
}

impl RetryConfig {
    /// A config with the given total budget and default delays.
    pub fn with_wait_ms(ms: u64) -> RetryConfig {
        RetryConfig {
            wait: Duration::from_millis(ms),
            ..RetryConfig::default()
        }
    }

    /// The config named by the `UR_DB_LOCK_WAIT_MS` environment
    /// variable (total budget in milliseconds), or the default.
    pub fn from_env() -> RetryConfig {
        match std::env::var("UR_DB_LOCK_WAIT_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
        {
            Some(ms) => RetryConfig::with_wait_ms(ms),
            None => RetryConfig::default(),
        }
    }
}

/// splitmix64 (same mixer as `ur_core::failpoint`), used here to
/// decorrelate the backoff jitter of racing processes.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The delay before attempt `attempt` (0-based count of failures so
/// far): exponential base doubling capped at `max_delay`, then jittered
/// to 50–100% of that span so two racing processes don't stay phase
/// locked.
fn backoff_delay(cfg: &RetryConfig, attempt: u32, seed: u64) -> Duration {
    let base_ms = cfg.base_delay.as_millis().min(u128::from(u64::MAX)) as u64;
    let cap_ms = cfg.max_delay.as_millis().min(u128::from(u64::MAX)) as u64;
    let exp_ms = base_ms
        .saturating_mul(1u64.checked_shl(attempt.min(32)).unwrap_or(u64::MAX))
        .min(cap_ms)
        .max(1);
    let jitter = splitmix64(seed ^ u64::from(attempt).wrapping_mul(0xA076_1D64_78BD_642F));
    let half = exp_ms / 2;
    Duration::from_millis(exp_ms - half + (jitter % (half + 1)))
}

impl Db {
    /// [`Db::open`], but when the directory's advisory lock is held
    /// ([`DbError::Locked`]) keeps retrying with jittered exponential
    /// backoff until the lock is acquired or `cfg.wait` of wall clock
    /// has elapsed. Every other error is returned immediately — only
    /// lock contention is transient by design.
    ///
    /// # Errors
    ///
    /// [`DbError::Locked`] when the budget expires with the lock still
    /// held; otherwise as [`Db::open`].
    pub fn open_with_retry(dir: impl AsRef<Path>, cfg: RetryConfig) -> Result<Db, DbError> {
        Db::open_with_retry_and(dir, DurabilityConfig::default(), cfg)
    }

    /// [`Db::open_with_retry`] with explicit durability tunables.
    ///
    /// # Errors
    ///
    /// As [`Db::open_with_retry`].
    pub fn open_with_retry_and(
        dir: impl AsRef<Path>,
        durability: DurabilityConfig,
        cfg: RetryConfig,
    ) -> Result<Db, DbError> {
        let dir = dir.as_ref();
        let start = Instant::now();
        let seed = u64::from(std::process::id())
            ^ dir.as_os_str().len() as u64
            ^ 0x5EED_5EED_5EED_5EED;
        let mut attempt: u32 = 0;
        loop {
            match Db::open_with(dir, durability) {
                Err(DbError::Locked(who)) => {
                    let elapsed = start.elapsed();
                    if elapsed >= cfg.wait {
                        return Err(DbError::Locked(who));
                    }
                    let delay = backoff_delay(&cfg, attempt, seed)
                        .min(cfg.wait.saturating_sub(elapsed));
                    std::thread::sleep(delay);
                    attempt = attempt.saturating_add(1);
                }
                other => return other,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_and_grows() {
        let cfg = RetryConfig::default();
        let mut last_cap = Duration::ZERO;
        for attempt in 0..16 {
            let d = backoff_delay(&cfg, attempt, 42);
            assert!(d >= Duration::from_millis(1));
            assert!(d <= cfg.max_delay, "attempt {attempt}: {d:?}");
            last_cap = last_cap.max(d);
        }
        // The exponential ramp must actually reach the cap region.
        assert!(last_cap >= cfg.base_delay);
        // Huge attempt numbers must not overflow the shift.
        let d = backoff_delay(&cfg, u32::MAX, 7);
        assert!(d <= cfg.max_delay);
    }

    #[test]
    fn jitter_decorrelates_seeds() {
        let cfg = RetryConfig {
            wait: Duration::from_secs(1),
            base_delay: Duration::from_millis(100),
            max_delay: Duration::from_millis(100),
        };
        let a: Vec<Duration> = (0..8).map(|n| backoff_delay(&cfg, n, 1)).collect();
        let b: Vec<Duration> = (0..8).map(|n| backoff_delay(&cfg, n, 2)).collect();
        assert_ne!(a, b, "different seeds must give different schedules");
        // Deterministic per seed.
        let a2: Vec<Duration> = (0..8).map(|n| backoff_delay(&cfg, n, 1)).collect();
        assert_eq!(a, a2);
    }

    #[test]
    fn zero_budget_fails_fast_on_contention() {
        let dir = std::env::temp_dir().join(format!("ur-db-retry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let holder = Db::open(&dir).expect("first open");
        let start = Instant::now();
        let err = Db::open_with_retry(&dir, RetryConfig::with_wait_ms(0))
            .expect_err("second open must contend");
        assert!(matches!(err, DbError::Locked(_)), "{err:?}");
        assert!(start.elapsed() < Duration::from_millis(500), "must not wait");
        drop(holder);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_acquires_after_holder_exits() {
        let dir = std::env::temp_dir().join(format!("ur-db-retry2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // `Db` is not Send, so the holder lives on its own thread: it
        // opens, signals, keeps the lock for ~100ms, then drops — while
        // this thread is already inside the retry loop.
        let (tx, rx) = std::sync::mpsc::channel();
        let hold_dir = dir.clone();
        let h = std::thread::spawn(move || {
            let mut holder = Db::open(&hold_dir).expect("first open");
            holder
                .create_table(
                    "t",
                    crate::table::Schema::new(vec![("A".into(), crate::value::ColTy::Int)])
                        .expect("schema"),
                )
                .expect("create");
            tx.send(()).expect("signal");
            std::thread::sleep(Duration::from_millis(100));
        });
        rx.recv().expect("holder ready");
        let db = Db::open_with_retry(&dir, RetryConfig::with_wait_ms(5_000))
            .expect("retry must acquire once the holder exits");
        assert!(db.dump().contains("table t"));
        h.join().expect("holder thread");
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
