//! Snapshot compaction: the full database state as one CRC-verified
//! file, atomically replaced via tmp-write + fsync + rename.
//!
//! A checkpoint writes the snapshot tagged with the *next* WAL
//! generation, then rotates the WAL to that generation — the snapshot
//! subsumes the logged history. Recovery loads the snapshot (if any)
//! and replays the WAL on top **only when their generations match**: a
//! crash between the snapshot rename and the WAL rotation leaves the
//! new snapshot next to the old full log, and the generation mismatch
//! marks that log as stale instead of letting it double-apply. A
//! failed snapshot write leaves the previous snapshot and the full WAL
//! in place: no committed data is ever lost to checkpointing.

use crate::error::DbError;
use crate::table::Table;
use crate::wal::{get_row, get_schema, put_row, put_schema};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::Path;
use ur_core::codec::{ByteReader, ByteWriter};
use ur_core::failpoint::{self, Site};
use ur_core::fingerprint::hash_bytes;

/// File name of the snapshot inside a database directory.
pub const SNAPSHOT_FILE: &str = "snapshot.db";

/// Current format: v3 appends each table's index *definitions* after
/// its rows; the maps themselves are derived state and are rebuilt from
/// the rows at load (so a snapshot can never carry a divergent index).
const SNAP_MAGIC: &[u8; 8] = b"URSNAP03";
/// The pre-index format is still readable: its tables simply have no
/// indexes declared.
const SNAP_MAGIC_V2: &[u8; 8] = b"URSNAP02";
const SNAP_SALT: u64 = 0x7572_534e_4150_6372; // "urSNAPcr"

fn io_err(ctx: &str, e: std::io::Error) -> DbError {
    DbError::Io(format!("{ctx}: {e}"))
}

fn encode_state(
    tables: &HashMap<String, Table>,
    sequences: &HashMap<String, i64>,
    wal_gen: u64,
) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(wal_gen);
    let mut names: Vec<&String> = tables.keys().collect();
    names.sort();
    w.put_u64(names.len() as u64);
    for name in names {
        if let Some(t) = tables.get(name) {
            w.put_str(name);
            put_schema(&mut w, &t.schema);
            w.put_u64(t.rows.len() as u64);
            for row in &t.rows {
                put_row(&mut w, row.as_ref());
            }
            let defs = t.index_defs();
            w.put_u64(defs.len() as u64);
            for def in &defs {
                w.put_str(&def.name);
                w.put_str(&def.column);
            }
        }
    }
    let mut seqs: Vec<(&String, &i64)> = sequences.iter().collect();
    seqs.sort();
    w.put_u64(seqs.len() as u64);
    for (name, v) in seqs {
        w.put_str(name);
        w.put_i64(*v);
    }
    w.into_bytes()
}

/// Decoded snapshot contents: tables plus sequence counters.
pub(crate) type SnapState = (HashMap<String, Table>, HashMap<String, i64>);

fn decode_state(bytes: &[u8], with_indexes: bool) -> Option<(u64, SnapState)> {
    let mut r = ByteReader::new(bytes);
    let wal_gen = r.get_u64()?;
    let n_tables = r.get_u64()?;
    if n_tables > r.remaining() as u64 {
        return None;
    }
    let mut tables = HashMap::new();
    for _ in 0..n_tables {
        let name = r.get_str()?;
        let schema = get_schema(&mut r)?;
        let n_rows = r.get_u64()?;
        if n_rows > r.remaining() as u64 {
            return None;
        }
        let mut table = Table::new(schema);
        for _ in 0..n_rows {
            table.rows.push(std::sync::Arc::from(get_row(&mut r)?));
        }
        if with_indexes {
            let n_defs = r.get_u64()?;
            if n_defs > r.remaining() as u64 {
                return None;
            }
            for _ in 0..n_defs {
                let idx_name = r.get_str()?;
                let column = r.get_str()?;
                // Rebuild the map deterministically from the rows just
                // decoded; a bad column or duplicate name is corruption.
                table.create_index(&idx_name, &column).ok()?;
            }
        }
        if tables.insert(name, table).is_some() {
            return None; // duplicate table name is corruption
        }
    }
    let n_seqs = r.get_u64()?;
    if n_seqs > r.remaining() as u64 {
        return None;
    }
    let mut sequences = HashMap::new();
    for _ in 0..n_seqs {
        let name = r.get_str()?;
        let v = r.get_i64()?;
        if sequences.insert(name, v).is_some() {
            return None;
        }
    }
    if !r.is_empty() {
        return None;
    }
    Some((wal_gen, (tables, sequences)))
}

/// Writes the state as `dir/snapshot.db`, atomically (tmp + fsync +
/// rename + best-effort directory sync), tagged with `wal_gen` — the
/// generation of the WAL that pairs with this snapshot (the checkpoint
/// rotates the log to it immediately after). Returns the snapshot size.
///
/// # Errors
///
/// [`DbError::Io`] on any filesystem failure or an injected
/// [`Site::SnapshotWrite`] fault; the previous snapshot (if any) is
/// untouched. Under `UR_DB_CRASH=abort` the injected fault aborts
/// mid-write instead, leaving a garbage tmp file that recovery ignores.
pub(crate) fn write(
    dir: &Path,
    tables: &HashMap<String, Table>,
    sequences: &HashMap<String, i64>,
    wal_gen: u64,
    crash_mode: bool,
) -> Result<u64, DbError> {
    let payload = encode_state(tables, sequences, wal_gen);
    let mut bytes = Vec::with_capacity(16 + payload.len());
    bytes.extend_from_slice(SNAP_MAGIC);
    bytes.extend_from_slice(&(hash_bytes(&payload) ^ SNAP_SALT).to_le_bytes());
    bytes.extend_from_slice(&payload);

    let tmp = dir.join(format!("{SNAPSHOT_FILE}.tmp"));
    let dst = dir.join(SNAPSHOT_FILE);

    if failpoint::fire(Site::SnapshotWrite) {
        if crash_mode {
            // Simulated crash mid-checkpoint: a truncated tmp file lands,
            // the real snapshot is never replaced.
            let _ = fs::write(&tmp, &bytes[..bytes.len() / 2]);
            std::process::abort();
        }
        return Err(DbError::Io("injected snapshot write failure".into()));
    }

    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(&tmp)
        .map_err(|e| io_err("snapshot tmp create", e))?;
    f.write_all(&bytes)
        .map_err(|e| io_err("snapshot tmp write", e))?;
    f.sync_all().map_err(|e| io_err("snapshot tmp sync", e))?;
    drop(f);
    fs::rename(&tmp, &dst).map_err(|e| io_err("snapshot rename", e))?;
    // Make the rename itself durable; not all platforms support syncing a
    // directory handle, so this is best-effort.
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(bytes.len() as u64)
}

/// Loads `dir/snapshot.db`, returning `(wal_gen, state)`; `Ok(None)`
/// when no snapshot exists.
///
/// # Errors
///
/// [`DbError::Corrupt`] on bad magic, CRC mismatch, or an undecodable
/// payload — a snapshot is written atomically, so unlike a WAL tail a
/// damaged snapshot is a real integrity failure, not a torn write.
pub(crate) fn load(dir: &Path) -> Result<Option<(u64, SnapState)>, DbError> {
    let path = dir.join(SNAPSHOT_FILE);
    let bytes = match fs::read(&path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err("snapshot read", e)),
    };
    if bytes.len() < 16 {
        return Err(DbError::Corrupt("snapshot has bad magic".into()));
    }
    let with_indexes = match &bytes[..8] {
        m if m == SNAP_MAGIC => true,
        m if m == SNAP_MAGIC_V2 => false,
        _ => return Err(DbError::Corrupt("snapshot has bad magic".into())),
    };
    let mut crc_bytes = [0u8; 8];
    crc_bytes.copy_from_slice(&bytes[8..16]);
    let crc = u64::from_le_bytes(crc_bytes);
    let payload = &bytes[16..];
    if hash_bytes(payload) ^ SNAP_SALT != crc {
        return Err(DbError::Corrupt("snapshot CRC mismatch".into()));
    }
    match decode_state(payload, with_indexes) {
        Some(state) => Ok(Some(state)),
        None => Err(DbError::Corrupt("snapshot payload undecodable".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Schema;
    use crate::value::{ColTy, DbVal};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ur-db-snap-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_state() -> (HashMap<String, Table>, HashMap<String, i64>) {
        let schema = Schema::new(vec![
            ("A".into(), ColTy::Int),
            ("B".into(), ColTy::Nullable(Box::new(ColTy::Str))),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        t.rows
            .push(std::sync::Arc::from(vec![DbVal::Int(1), DbVal::Str("x".into())]));
        t.rows.push(std::sync::Arc::from(vec![DbVal::Int(2), DbVal::Null]));
        t.create_index("t_a", "A").unwrap();
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), t);
        let mut seqs = HashMap::new();
        seqs.insert("s".to_string(), 42i64);
        (tables, seqs)
    }

    #[test]
    fn snapshot_round_trips() {
        let dir = tmpdir("roundtrip");
        let (tables, seqs) = sample_state();
        write(&dir, &tables, &seqs, 7, false).unwrap();
        let (gen, (t2, s2)) = load(&dir).unwrap().unwrap();
        assert_eq!(gen, 7, "wal generation survives the round trip");
        assert_eq!(s2, seqs);
        assert_eq!(t2.len(), 1);
        assert_eq!(t2["t"].rows, tables["t"].rows);
        assert_eq!(t2["t"].schema, tables["t"].schema);
        // Index definitions survive; the map is rebuilt from the rows.
        assert_eq!(t2["t"].index_defs(), tables["t"].index_defs());
        assert!(t2["t"].index_divergence().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v2_snapshot_without_indexes_still_loads() {
        let dir = tmpdir("v2compat");
        let (tables, seqs) = sample_state();
        write(&dir, &tables, &seqs, 3, false).unwrap();
        // Rewrite the file as the v2 format: v2 magic, no index section.
        let path = dir.join(SNAPSHOT_FILE);
        let mut w = ur_core::codec::ByteWriter::new();
        w.put_u64(3);
        w.put_u64(1);
        w.put_str("t");
        put_schema(&mut w, &tables["t"].schema);
        w.put_u64(tables["t"].rows.len() as u64);
        for row in &tables["t"].rows {
            put_row(&mut w, row.as_ref());
        }
        w.put_u64(1);
        w.put_str("s");
        w.put_i64(42);
        let payload = w.into_bytes();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAP_MAGIC_V2);
        bytes.extend_from_slice(&(hash_bytes(&payload) ^ SNAP_SALT).to_le_bytes());
        bytes.extend_from_slice(&payload);
        fs::write(&path, &bytes).unwrap();
        let (gen, (t2, s2)) = load(&dir).unwrap().unwrap();
        assert_eq!(gen, 3);
        assert_eq!(s2, seqs);
        assert_eq!(t2["t"].rows, tables["t"].rows);
        assert!(t2["t"].index_defs().is_empty(), "v2 carries no indexes");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_snapshot_is_none() {
        let dir = tmpdir("missing");
        assert_eq!(load(&dir).unwrap().map(|_| ()), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_detected() {
        let dir = tmpdir("bitflip");
        let (tables, seqs) = sample_state();
        write(&dir, &tables, &seqs, 1, false).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(load(&dir), Err(DbError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_magic_is_detected() {
        let dir = tmpdir("badmagic");
        fs::write(dir.join(SNAPSHOT_FILE), b"NOTASNAPxxxxxxxxyyyy").unwrap();
        assert!(matches!(load(&dir), Err(DbError::Corrupt(_))));
        let _ = fs::remove_dir_all(&dir);
    }
}
