//! Transaction state, durability configuration, and storage counters.
//!
//! Transactions are layered the same way for both backends: `begin`
//! takes an undo snapshot of the whole state (tables, sequences, log
//! length) and buffers WAL records; `commit` makes the buffered records
//! durable in one fsync'd WAL append (a no-op in memory); `rollback` —
//! or a failed commit — restores the undo snapshot. Statements outside
//! an explicit transaction auto-commit one record at a time.

use crate::table::Table;
use crate::wal::WalRecord;
use std::collections::HashMap;
use std::fmt;

/// Tunables of the durability layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Auto-checkpoint (snapshot + WAL reset) after this many committed
    /// WAL records; `0` disables automatic checkpoints.
    pub snapshot_every: u64,
    /// fsync every commit. Turning this off trades the durability of the
    /// last few transactions for throughput (benchmarks only); crash
    /// *consistency* is unaffected — recovery still sees a committed
    /// prefix.
    pub sync_commits: bool,
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig {
            snapshot_every: 4096,
            sync_commits: true,
        }
    }
}

/// Counters of the storage engine, exposed by `Db::stats` and the
/// `:db` REPL command.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DbStats {
    /// Explicit transactions committed.
    pub txn_commits: u64,
    /// Explicit transactions rolled back (including failed commits).
    pub txn_rollbacks: u64,
    /// Statements auto-committed outside an explicit transaction.
    pub auto_commits: u64,
    /// WAL records appended (including `Begin`/`Commit` frames).
    pub wal_records: u64,
    /// WAL bytes appended.
    pub wal_bytes: u64,
    /// fsyncs issued for WAL commits.
    pub wal_fsyncs: u64,
    /// WAL appends that failed (real I/O errors or injected faults).
    pub wal_append_errs: u64,
    /// Records replayed from the WAL at open.
    pub replayed_records: u64,
    /// Committed transactions recovered from the WAL at open.
    pub recovered_txns: u64,
    /// Torn/uncommitted tail bytes truncated at open.
    pub truncated_bytes: u64,
    /// Snapshots written (checkpoints).
    pub snapshots_written: u64,
    /// Snapshot writes that failed (the WAL is kept, no data is lost).
    pub snapshot_errs: u64,
    /// WAL rotations that failed after their snapshot landed (the handle
    /// is poisoned until a later checkpoint succeeds).
    pub rotate_errs: u64,
    /// 1 when the open loaded an on-disk snapshot.
    pub snapshot_loaded: u64,
    /// Bytes of a stale-generation WAL ignored at open — the log a crash
    /// stranded between a checkpoint's snapshot rename and its rotation;
    /// the snapshot already contains every transaction in it.
    pub stale_wal_ignored: u64,
    /// Statements executed through an index probe (equality or range).
    pub index_probes: u64,
    /// Statements executed as a full table scan.
    pub full_scans: u64,
    /// Scans chosen *despite* the table having indexes (float operands,
    /// no probeable conjunct) — planner fallbacks, each with a reason
    /// in the EXPLAIN line.
    pub planner_fallbacks: u64,
    /// Reads served by a read-only MVCC snapshot handle.
    pub snapshot_reads: u64,
    /// Superseded row versions reclaimed at checkpoints (counted once
    /// no published snapshot pinned them any longer).
    pub versions_gcd: u64,
}

impl fmt::Display for DbStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "txn[commits={} rollbacks={} auto={}] \
             wal[records={} bytes={} fsyncs={} errs={}] \
             recover[txns={} records={} truncated={} stale={} snapshot_loaded={}] \
             snap[written={} errs={} rotate_errs={}] \
             engine[probes={} scans={} fallbacks={} snap_reads={} gcd={}]",
            self.txn_commits,
            self.txn_rollbacks,
            self.auto_commits,
            self.wal_records,
            self.wal_bytes,
            self.wal_fsyncs,
            self.wal_append_errs,
            self.recovered_txns,
            self.replayed_records,
            self.truncated_bytes,
            self.stale_wal_ignored,
            self.snapshot_loaded,
            self.snapshots_written,
            self.snapshot_errs,
            self.rotate_errs,
            self.index_probes,
            self.full_scans,
            self.planner_fallbacks,
            self.snapshot_reads,
            self.versions_gcd,
        )
    }
}

/// An open transaction: the undo snapshot plus the records to make
/// durable at commit.
#[derive(Clone, Debug)]
pub(crate) struct TxnState {
    /// Transaction id (monotone per database).
    pub id: u64,
    /// WAL records buffered since `begin`, in execution order.
    pub pending: Vec<WalRecord>,
    /// Tables as of `begin` (restored on rollback / failed commit).
    pub undo_tables: HashMap<String, Table>,
    /// Sequences as of `begin`.
    pub undo_sequences: HashMap<String, i64>,
    /// SQL-text log length as of `begin`.
    pub undo_log_len: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_syncs_commits() {
        let c = DurabilityConfig::default();
        assert!(c.sync_commits);
        assert!(c.snapshot_every > 0);
    }

    #[test]
    fn stats_display_mentions_all_groups() {
        let s = DbStats::default().to_string();
        for key in [
            "txn[commits=",
            "wal[records=",
            "fsyncs=",
            "recover[txns=",
            "truncated=",
            "stale=",
            "snap[written=",
            "rotate_errs=",
            "engine[probes=",
            "scans=",
            "fallbacks=",
            "snap_reads=",
            "gcd=",
        ] {
            assert!(s.contains(key), "missing {key} in {s}");
        }
    }
}
