//! Column types and runtime values of the relational substrate.

use std::cmp::Ordering;
use std::fmt;

/// Column types supported by the engine, mirroring the primitive types of
/// the Ur surface language plus nullability (used by the paper's
/// versioned-database case study, which stores unchanged columns as
/// `NULL`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ColTy {
    Int,
    Float,
    Str,
    Bool,
    /// A nullable column of the given base type.
    Nullable(Box<ColTy>),
}

impl ColTy {
    /// The SQL spelling of this type.
    pub fn sql_name(&self) -> String {
        match self {
            ColTy::Int => "BIGINT".to_string(),
            ColTy::Float => "DOUBLE PRECISION".to_string(),
            ColTy::Str => "TEXT".to_string(),
            ColTy::Bool => "BOOLEAN".to_string(),
            ColTy::Nullable(inner) => inner.sql_name(),
        }
    }

    /// Whether `NULL` is admissible.
    pub fn nullable(&self) -> bool {
        matches!(self, ColTy::Nullable(_))
    }

    /// Strips nullability.
    pub fn base(&self) -> &ColTy {
        match self {
            ColTy::Nullable(inner) => inner.base(),
            other => other,
        }
    }

    /// Checks that `v` inhabits this column type.
    pub fn admits(&self, v: &DbVal) -> bool {
        match (self, v) {
            (ColTy::Nullable(_), DbVal::Null) => true,
            (ColTy::Nullable(inner), v) => inner.admits(v),
            (ColTy::Int, DbVal::Int(_)) => true,
            (ColTy::Float, DbVal::Float(_)) => true,
            (ColTy::Str, DbVal::Str(_)) => true,
            (ColTy::Bool, DbVal::Bool(_)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for ColTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nullable() {
            write!(f, "{}", self.sql_name())
        } else {
            write!(f, "{} NOT NULL", self.sql_name())
        }
    }
}

/// A runtime database value.
#[derive(Clone, Debug, PartialEq)]
pub enum DbVal {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
}

impl DbVal {
    /// SQL-literal rendering, with single quotes in strings doubled —
    /// the classic injection-proof escaping that Ur/Web's typed trees
    /// guarantee is always applied.
    pub fn to_sql(&self) -> String {
        match self {
            DbVal::Int(n) => n.to_string(),
            DbVal::Float(x) => format!("{x:?}"),
            DbVal::Str(s) => format!("'{}'", s.replace('\'', "''")),
            DbVal::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            DbVal::Null => "NULL".to_string(),
        }
    }

    /// Three-valued-logic aware equality: comparisons with `NULL` are
    /// unknown (`None`).
    pub fn sql_eq(&self, other: &DbVal) -> Option<bool> {
        match (self, other) {
            (DbVal::Null, _) | (_, DbVal::Null) => None,
            (a, b) => Some(a == b),
        }
    }

    /// SQL ordering; `None` when incomparable or either side is `NULL`.
    pub fn sql_cmp(&self, other: &DbVal) -> Option<Ordering> {
        match (self, other) {
            (DbVal::Int(a), DbVal::Int(b)) => Some(a.cmp(b)),
            (DbVal::Float(a), DbVal::Float(b)) => a.partial_cmp(b),
            (DbVal::Str(a), DbVal::Str(b)) => Some(a.cmp(b)),
            (DbVal::Bool(a), DbVal::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for DbVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_rendering_escapes_quotes() {
        let v = DbVal::Str("O'Brien'; DROP TABLE t; --".into());
        let sql = v.to_sql();
        assert_eq!(sql, "'O''Brien''; DROP TABLE t; --'");
        // The rendered literal contains no lone quote that would close
        // the string early.
        let inner = &sql[1..sql.len() - 1];
        assert!(!inner.replace("''", "").contains('\''));
    }

    #[test]
    fn admits_respects_types() {
        assert!(ColTy::Int.admits(&DbVal::Int(3)));
        assert!(!ColTy::Int.admits(&DbVal::Str("3".into())));
        assert!(!ColTy::Int.admits(&DbVal::Null));
        assert!(ColTy::Nullable(Box::new(ColTy::Int)).admits(&DbVal::Null));
        assert!(ColTy::Nullable(Box::new(ColTy::Int)).admits(&DbVal::Int(1)));
    }

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(DbVal::Null.sql_eq(&DbVal::Int(1)), None);
        assert_eq!(DbVal::Int(1).sql_eq(&DbVal::Int(1)), Some(true));
        assert_eq!(DbVal::Int(1).sql_eq(&DbVal::Int(2)), Some(false));
    }

    #[test]
    fn ordering() {
        assert_eq!(
            DbVal::Int(1).sql_cmp(&DbVal::Int(2)),
            Some(Ordering::Less)
        );
        assert_eq!(
            DbVal::Str("a".into()).sql_cmp(&DbVal::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(DbVal::Int(1).sql_cmp(&DbVal::Str("a".into())), None);
    }

    #[test]
    fn colty_display() {
        assert_eq!(ColTy::Int.to_string(), "BIGINT NOT NULL");
        assert_eq!(
            ColTy::Nullable(Box::new(ColTy::Str)).to_string(),
            "TEXT"
        );
    }
}
