//! The write-ahead log: length-prefixed, CRC-tagged, fsync'd records.
//!
//! Every committed transaction is a contiguous run of frames
//! `Begin, op*, Commit` appended in a single write and sealed by one
//! `fsync`. A frame is `u32 len | u64 crc | payload` (little-endian);
//! the CRC is the workspace FNV-1a fingerprint of the payload XOR a
//! salt, so an all-zero torn page can never masquerade as a valid
//! record. Records are *physical*: inserts log the evaluated row,
//! updates log `(row index, new row)` pairs, deletes log the removed
//! indices — replay never re-evaluates SQL expressions, so recovery is
//! deterministic even if expression semantics evolve.
//!
//! The file header carries a **generation number** alongside the magic.
//! Each checkpoint writes the snapshot tagged with generation `g + 1`
//! and then *rotates* the WAL to `g + 1`; recovery pairs the two files
//! by generation, so a crash in the window between the snapshot rename
//! and the rotation (new snapshot, old full WAL) leaves a recognizably
//! *stale* log that is ignored rather than double-applied.
//!
//! Failure semantics (see `docs/ROBUSTNESS.md` §7): a failed append
//! rewinds the file to the last committed boundary and reports
//! [`DbError::Io`]; an injected torn write ([`Site::WalCorrupt`])
//! deliberately leaves a corrupt tail on disk for recovery to truncate.
//! Under `UR_DB_CRASH=abort` (the kill-point crash harness) injected
//! faults abort the process mid-write instead, simulating power loss.

use crate::error::DbError;
use crate::table::Schema;
use crate::value::{ColTy, DbVal};
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;
use ur_core::codec::{ByteReader, ByteWriter};
use ur_core::failpoint::{self, Site};
use ur_core::fingerprint::hash_bytes;

use crate::txn::DbStats;

/// File name of the log inside a database directory.
pub const WAL_FILE: &str = "wal.log";

/// Magic + format version, the first 8 bytes of every WAL file.
pub(crate) const WAL_MAGIC: &[u8; 8] = b"URWAL002";

/// Salt mixed into every frame CRC so a zeroed region never verifies.
const WAL_SALT: u64 = 0x7572_5741_4c63_7263; // "urWALcrc"

/// Byte length of the file header: the magic plus the `u64` generation
/// number (little-endian) that pairs this log with a snapshot.
pub(crate) const WAL_HEADER_LEN: u64 = WAL_MAGIC.len() as u64 + 8;

/// Byte length of a frame header (`u32 len | u64 crc`).
pub(crate) const FRAME_HEADER_LEN: usize = 12;

/// One WAL record. `Begin`/`Commit` bracket a transaction; the others
/// are physical state-change operations replayed by recovery.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// Start of transaction `txn`.
    Begin { txn: u64 },
    /// Durable end of transaction `txn`; only operations between a
    /// matching `Begin`/`Commit` pair are ever replayed.
    Commit { txn: u64 },
    /// `CREATE TABLE`.
    CreateTable { name: String, schema: Schema },
    /// `CREATE SEQUENCE` (idempotent, like the live operation).
    CreateSequence { name: String },
    /// One `NEXTVAL` increment of a sequence.
    Nextval { name: String },
    /// One inserted row (already evaluated).
    Insert { table: String, row: Vec<DbVal> },
    /// Updated rows as `(index, new row)` pairs, indices ascending.
    Update {
        table: String,
        changes: Vec<(u64, Vec<DbVal>)>,
    },
    /// Deleted row indices, ascending (replayed in reverse).
    Delete { table: String, removed: Vec<u64> },
    /// `CREATE INDEX`: a secondary index over one column, built over
    /// whatever rows the table holds at replay time — maintenance after
    /// this point is part of each physical record's application, so a
    /// replayed index always equals a fresh rebuild of the rows.
    CreateIndex {
        name: String,
        table: String,
        column: String,
    },
}

const TAG_BEGIN: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_CREATE_TABLE: u8 = 3;
const TAG_CREATE_SEQUENCE: u8 = 4;
const TAG_NEXTVAL: u8 = 5;
const TAG_INSERT: u8 = 6;
const TAG_UPDATE: u8 = 7;
const TAG_DELETE: u8 = 8;
const TAG_CREATE_INDEX: u8 = 9;

fn put_colty(w: &mut ByteWriter, ty: &ColTy) {
    match ty {
        ColTy::Int => w.put_u8(0),
        ColTy::Float => w.put_u8(1),
        ColTy::Str => w.put_u8(2),
        ColTy::Bool => w.put_u8(3),
        ColTy::Nullable(inner) => {
            w.put_u8(4);
            put_colty(w, inner);
        }
    }
}

fn get_colty(r: &mut ByteReader<'_>) -> Option<ColTy> {
    match r.get_u8()? {
        0 => Some(ColTy::Int),
        1 => Some(ColTy::Float),
        2 => Some(ColTy::Str),
        3 => Some(ColTy::Bool),
        4 => Some(ColTy::Nullable(Box::new(get_colty(r)?))),
        _ => None,
    }
}

pub(crate) fn put_schema(w: &mut ByteWriter, schema: &Schema) {
    let cols = schema.columns();
    w.put_u64(cols.len() as u64);
    for (name, ty) in cols {
        w.put_str(name);
        put_colty(w, ty);
    }
}

pub(crate) fn get_schema(r: &mut ByteReader<'_>) -> Option<Schema> {
    let n = r.get_u64()?;
    if n > r.remaining() as u64 {
        return None;
    }
    let mut cols = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let name = r.get_str()?;
        let ty = get_colty(r)?;
        cols.push((name, ty));
    }
    Schema::new(cols).ok()
}

pub(crate) fn put_val(w: &mut ByteWriter, v: &DbVal) {
    match v {
        DbVal::Int(n) => {
            w.put_u8(0);
            w.put_i64(*n);
        }
        DbVal::Float(x) => {
            w.put_u8(1);
            w.put_f64(*x);
        }
        DbVal::Str(s) => {
            w.put_u8(2);
            w.put_str(s);
        }
        DbVal::Bool(b) => {
            w.put_u8(3);
            w.put_bool(*b);
        }
        DbVal::Null => w.put_u8(4),
    }
}

pub(crate) fn get_val(r: &mut ByteReader<'_>) -> Option<DbVal> {
    match r.get_u8()? {
        0 => Some(DbVal::Int(r.get_i64()?)),
        1 => Some(DbVal::Float(r.get_f64()?)),
        2 => Some(DbVal::Str(r.get_str()?)),
        3 => Some(DbVal::Bool(r.get_bool()?)),
        4 => Some(DbVal::Null),
        _ => None,
    }
}

pub(crate) fn put_row(w: &mut ByteWriter, row: &[DbVal]) {
    w.put_u64(row.len() as u64);
    for v in row {
        put_val(w, v);
    }
}

pub(crate) fn get_row(r: &mut ByteReader<'_>) -> Option<Vec<DbVal>> {
    let n = r.get_u64()?;
    if n > r.remaining() as u64 {
        return None;
    }
    let mut row = Vec::with_capacity(n as usize);
    for _ in 0..n {
        row.push(get_val(r)?);
    }
    Some(row)
}

impl WalRecord {
    /// Serializes the record payload (frame header not included).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            WalRecord::Begin { txn } => {
                w.put_u8(TAG_BEGIN);
                w.put_u64(*txn);
            }
            WalRecord::Commit { txn } => {
                w.put_u8(TAG_COMMIT);
                w.put_u64(*txn);
            }
            WalRecord::CreateTable { name, schema } => {
                w.put_u8(TAG_CREATE_TABLE);
                w.put_str(name);
                put_schema(&mut w, schema);
            }
            WalRecord::CreateSequence { name } => {
                w.put_u8(TAG_CREATE_SEQUENCE);
                w.put_str(name);
            }
            WalRecord::Nextval { name } => {
                w.put_u8(TAG_NEXTVAL);
                w.put_str(name);
            }
            WalRecord::Insert { table, row } => {
                w.put_u8(TAG_INSERT);
                w.put_str(table);
                put_row(&mut w, row);
            }
            WalRecord::Update { table, changes } => {
                w.put_u8(TAG_UPDATE);
                w.put_str(table);
                w.put_u64(changes.len() as u64);
                for (idx, row) in changes {
                    w.put_u64(*idx);
                    put_row(&mut w, row);
                }
            }
            WalRecord::Delete { table, removed } => {
                w.put_u8(TAG_DELETE);
                w.put_str(table);
                w.put_u64(removed.len() as u64);
                for idx in removed {
                    w.put_u64(*idx);
                }
            }
            WalRecord::CreateIndex {
                name,
                table,
                column,
            } => {
                w.put_u8(TAG_CREATE_INDEX);
                w.put_str(name);
                w.put_str(table);
                w.put_str(column);
            }
        }
        w.into_bytes()
    }

    /// Parses a record payload; `None` on any truncation or bad tag (the
    /// caller treats that as a torn tail).
    pub fn decode(bytes: &[u8]) -> Option<WalRecord> {
        let mut r = ByteReader::new(bytes);
        let rec = match r.get_u8()? {
            TAG_BEGIN => WalRecord::Begin { txn: r.get_u64()? },
            TAG_COMMIT => WalRecord::Commit { txn: r.get_u64()? },
            TAG_CREATE_TABLE => WalRecord::CreateTable {
                name: r.get_str()?,
                schema: get_schema(&mut r)?,
            },
            TAG_CREATE_SEQUENCE => WalRecord::CreateSequence { name: r.get_str()? },
            TAG_NEXTVAL => WalRecord::Nextval { name: r.get_str()? },
            TAG_INSERT => WalRecord::Insert {
                table: r.get_str()?,
                row: get_row(&mut r)?,
            },
            TAG_UPDATE => {
                let table = r.get_str()?;
                let n = r.get_u64()?;
                if n > r.remaining() as u64 {
                    return None;
                }
                let mut changes = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let idx = r.get_u64()?;
                    changes.push((idx, get_row(&mut r)?));
                }
                WalRecord::Update { table, changes }
            }
            TAG_DELETE => {
                let table = r.get_str()?;
                let n = r.get_u64()?;
                if n > r.remaining() as u64 {
                    return None;
                }
                let mut removed = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    removed.push(r.get_u64()?);
                }
                WalRecord::Delete { table, removed }
            }
            TAG_CREATE_INDEX => WalRecord::CreateIndex {
                name: r.get_str()?,
                table: r.get_str()?,
                column: r.get_str()?,
            },
            _ => return None,
        };
        if !r.is_empty() {
            return None; // trailing garbage inside a frame is corruption
        }
        Some(rec)
    }
}

/// CRC of a frame payload.
pub(crate) fn frame_crc(payload: &[u8]) -> u64 {
    hash_bytes(payload) ^ WAL_SALT
}

/// Appends one `len | crc | payload` frame to `buf`.
fn frame_into(buf: &mut Vec<u8>, rec: &WalRecord) {
    let payload = rec.encode();
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&frame_crc(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
}

fn io_err(ctx: &str, e: std::io::Error) -> DbError {
    DbError::Io(format!("{ctx}: {e}"))
}

/// Serializes the 16-byte file header for `generation`.
pub(crate) fn header_bytes(generation: u64) -> [u8; WAL_HEADER_LEN as usize] {
    let mut h = [0u8; WAL_HEADER_LEN as usize];
    h[..WAL_MAGIC.len()].copy_from_slice(WAL_MAGIC);
    h[WAL_MAGIC.len()..].copy_from_slice(&generation.to_le_bytes());
    h
}

/// An open write-ahead log positioned at its last committed boundary.
#[derive(Debug)]
pub(crate) struct Wal {
    file: File,
    /// End offset of the last durably committed transaction; everything
    /// beyond it is garbage from a failed append and is overwritten.
    committed_len: u64,
    /// Generation number in the file header; a log is only replayed onto
    /// a snapshot carrying the same generation.
    generation: u64,
    /// `UR_DB_CRASH=abort`: injected faults abort the process instead of
    /// returning errors (the kill-point crash harness).
    crash_mode: bool,
}

impl Wal {
    /// Creates a fresh WAL (truncating any existing file) with just the
    /// header, synced.
    pub fn create(path: &Path, generation: u64, crash_mode: bool) -> Result<Wal, DbError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err("wal create", e))?;
        file.write_all(&header_bytes(generation))
            .map_err(|e| io_err("wal header", e))?;
        file.sync_all().map_err(|e| io_err("wal header sync", e))?;
        Ok(Wal {
            file,
            committed_len: WAL_HEADER_LEN,
            generation,
            crash_mode,
        })
    }

    /// Opens an existing WAL whose committed prefix ends at
    /// `committed_len` (as determined by recovery, which already
    /// truncated the tail and verified the header generation).
    pub fn open_at(
        path: &Path,
        committed_len: u64,
        generation: u64,
        crash_mode: bool,
    ) -> Result<Wal, DbError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err("wal open", e))?;
        Ok(Wal {
            file,
            committed_len,
            generation,
            crash_mode,
        })
    }

    /// End offset of the last durably committed transaction.
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }

    /// Generation number of this log.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Discards any bytes beyond the committed boundary (garbage left by
    /// a failed or deliberately-corrupted append).
    fn rewind(&mut self) {
        let _ = self.file.set_len(self.committed_len);
    }

    /// Appends `Begin, records…, Commit` as one transaction and seals it
    /// with an fsync (when `sync`). On any failure the file is rewound to
    /// the previous committed boundary and the transaction is *not*
    /// durable — except for an injected torn write, which leaves a
    /// corrupt tail on disk (recovery truncates it; `committed_len` is
    /// not advanced, so a later append overwrites it too).
    pub fn append_txn(
        &mut self,
        txn: u64,
        records: &[WalRecord],
        sync: bool,
        stats: &mut DbStats,
    ) -> Result<(), DbError> {
        // Drop leftovers from any previously failed append, then position
        // at the committed boundary.
        let cur = self
            .file
            .metadata()
            .map_err(|e| io_err("wal metadata", e))?
            .len();
        if cur != self.committed_len {
            self.file
                .set_len(self.committed_len)
                .map_err(|e| io_err("wal rewind", e))?;
        }
        self.file
            .seek(SeekFrom::Start(self.committed_len))
            .map_err(|e| io_err("wal seek", e))?;

        let mut buf = Vec::new();
        frame_into(&mut buf, &WalRecord::Begin { txn });
        for rec in records {
            frame_into(&mut buf, rec);
        }
        let commit_start = buf.len();
        frame_into(&mut buf, &WalRecord::Commit { txn });

        // Injected torn write: the commit frame's CRC reaches the disk
        // flipped, as if the sector was half-written at power loss.
        let torn = failpoint::fire(Site::WalCorrupt);
        if torn {
            buf[commit_start + 4] ^= 0xFF;
        }

        if failpoint::fire(Site::WalAppend) {
            stats.wal_append_errs = stats.wal_append_errs.saturating_add(1);
            if self.crash_mode {
                // Simulated crash mid-append: half the bytes land, then
                // the process dies.
                let _ = self.file.write_all(&buf[..buf.len() / 2]);
                let _ = self.file.sync_all();
                std::process::abort();
            }
            self.rewind();
            return Err(DbError::Io("injected WAL append failure".into()));
        }

        if let Err(e) = self.file.write_all(&buf) {
            stats.wal_append_errs = stats.wal_append_errs.saturating_add(1);
            self.rewind();
            return Err(io_err("wal append", e));
        }

        if torn {
            stats.wal_append_errs = stats.wal_append_errs.saturating_add(1);
            let _ = self.file.sync_all();
            if self.crash_mode {
                std::process::abort();
            }
            // The corrupt tail deliberately stays on disk so recovery's
            // torn-tail truncation is exercised; committed_len is not
            // advanced, so the live handle overwrites it on the next
            // append.
            return Err(DbError::Io(
                "injected torn WAL write (corrupt commit record)".into(),
            ));
        }

        if failpoint::fire(Site::WalSync) {
            stats.wal_append_errs = stats.wal_append_errs.saturating_add(1);
            if self.crash_mode {
                // Crash between write and fsync: the transaction must not
                // be acknowledged (it may or may not survive).
                std::process::abort();
            }
            self.rewind();
            return Err(DbError::Io("injected WAL fsync failure".into()));
        }

        if sync {
            if let Err(e) = self.file.sync_all() {
                stats.wal_append_errs = stats.wal_append_errs.saturating_add(1);
                self.rewind();
                return Err(io_err("wal fsync", e));
            }
            stats.wal_fsyncs = stats.wal_fsyncs.saturating_add(1);
        }

        self.committed_len += buf.len() as u64;
        stats.wal_records = stats.wal_records.saturating_add(records.len() as u64 + 2);
        stats.wal_bytes = stats.wal_bytes.saturating_add(buf.len() as u64);
        Ok(())
    }

    /// Rotates the log to `new_generation`: overwrites the header in
    /// place, truncates away the history a successful snapshot just
    /// subsumed, and syncs. Crash-safe without an intermediate fsync:
    /// whatever prefix of (header write, truncate) reaches the disk, the
    /// file reads back as either the old generation (stale — ignored by
    /// recovery, since the snapshot carries the new one), the new
    /// generation with no committed data, or a partial header (treated
    /// as empty).
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] — the caller must then stop appending: the
    /// snapshot is already ahead of this log's generation, so anything
    /// appended here would be ignored by recovery.
    pub fn rotate(&mut self, new_generation: u64) -> Result<(), DbError> {
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(|e| io_err("wal rotate seek", e))?;
        self.file
            .write_all(&header_bytes(new_generation))
            .map_err(|e| io_err("wal rotate header", e))?;
        self.file
            .set_len(WAL_HEADER_LEN)
            .map_err(|e| io_err("wal rotate truncate", e))?;
        self.file
            .sync_all()
            .map_err(|e| io_err("wal rotate sync", e))?;
        self.committed_len = WAL_HEADER_LEN;
        self.generation = new_generation;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_codec_round_trips() {
        let schema = Schema::new(vec![
            ("A".into(), ColTy::Int),
            ("B".into(), ColTy::Nullable(Box::new(ColTy::Str))),
        ])
        .unwrap();
        let records = vec![
            WalRecord::Begin { txn: 7 },
            WalRecord::Commit { txn: u64::MAX },
            WalRecord::CreateTable {
                name: "t".into(),
                schema,
            },
            WalRecord::CreateSequence { name: "s".into() },
            WalRecord::Nextval { name: "s".into() },
            WalRecord::Insert {
                table: "t".into(),
                row: vec![
                    DbVal::Int(-3),
                    DbVal::Float(2.5),
                    DbVal::Str("x'y".into()),
                    DbVal::Bool(true),
                    DbVal::Null,
                ],
            },
            WalRecord::Update {
                table: "t".into(),
                changes: vec![(0, vec![DbVal::Int(1)]), (4, vec![DbVal::Null])],
            },
            WalRecord::Delete {
                table: "t".into(),
                removed: vec![1, 2, 9],
            },
            WalRecord::CreateIndex {
                name: "t_a".into(),
                table: "t".into(),
                column: "A".into(),
            },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(WalRecord::decode(&bytes), Some(rec.clone()), "{rec:?}");
            // Every strict prefix must fail to decode, never panic.
            for cut in 0..bytes.len() {
                assert_eq!(WalRecord::decode(&bytes[..cut]), None, "cut={cut} {rec:?}");
            }
        }
    }

    #[test]
    fn decode_rejects_bad_tag_and_trailing_garbage() {
        assert_eq!(WalRecord::decode(&[99]), None);
        let mut bytes = WalRecord::Begin { txn: 1 }.encode();
        bytes.push(0);
        assert_eq!(WalRecord::decode(&bytes), None);
    }

    #[test]
    fn crc_differs_from_plain_hash() {
        // The salt must matter: a zeroed payload's CRC is not zero.
        assert_ne!(frame_crc(&[]), 0);
        assert_ne!(frame_crc(b"abc"), hash_bytes(b"abc"));
    }
}
