//! Schemas and table storage.

use crate::error::DbError;
use crate::value::{ColTy, DbVal};
use std::fmt;
use std::rc::Rc;

/// An ordered list of named, typed columns.
///
/// The column list is behind an `Rc`, so cloning a schema (which the
/// query engine does per statement to appease the borrow checker) is a
/// handle copy, not a deep copy of every column name.
#[derive(Clone, Debug, PartialEq)]
pub struct Schema {
    cols: Rc<[(String, ColTy)]>,
}

impl Schema {
    /// Creates a schema; column names must be distinct and non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::SchemaError`] on duplicates or empty names.
    pub fn new(cols: Vec<(String, ColTy)>) -> Result<Schema, DbError> {
        for (i, (n, _)) in cols.iter().enumerate() {
            if n.is_empty() {
                return Err(DbError::SchemaError("empty column name".into()));
            }
            if cols[..i].iter().any(|(m, _)| m == n) {
                return Err(DbError::SchemaError(format!("duplicate column {n}")));
            }
        }
        Ok(Schema { cols: cols.into() })
    }

    pub fn columns(&self) -> &[(String, ColTy)] {
        &self.cols
    }

    pub fn len(&self) -> usize {
        self.cols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|(n, _)| n == name)
    }

    pub fn col_type(&self, name: &str) -> Option<&ColTy> {
        self.cols.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Validates a full row against this schema.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TypeError`] if arity or any column type is
    /// wrong.
    pub fn check_row(&self, row: &[DbVal]) -> Result<(), DbError> {
        if row.len() != self.cols.len() {
            return Err(DbError::TypeError(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.cols.len()
            )));
        }
        for ((name, ty), v) in self.cols.iter().zip(row) {
            if !ty.admits(v) {
                return Err(DbError::TypeError(format!(
                    "column {name} of type {ty} cannot hold {v}"
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .cols
            .iter()
            .map(|(n, t)| format!("\"{n}\" {t}"))
            .collect();
        write!(f, "({})", cols.join(", "))
    }
}

/// A table: a schema plus rows in insertion order.
#[derive(Clone, Debug)]
pub struct Table {
    pub schema: Schema,
    pub rows: Vec<Vec<DbVal>>,
}

impl Table {
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_rejects_duplicates() {
        assert!(Schema::new(vec![
            ("A".into(), ColTy::Int),
            ("A".into(), ColTy::Str)
        ])
        .is_err());
    }

    #[test]
    fn schema_rejects_empty_names() {
        assert!(Schema::new(vec![("".into(), ColTy::Int)]).is_err());
    }

    #[test]
    fn index_and_type_lookup() {
        let s = Schema::new(vec![
            ("A".into(), ColTy::Int),
            ("B".into(), ColTy::Str),
        ])
        .unwrap();
        assert_eq!(s.index_of("B"), Some(1));
        assert_eq!(s.col_type("A"), Some(&ColTy::Int));
        assert_eq!(s.index_of("Z"), None);
    }

    #[test]
    fn check_row_validates() {
        let s = Schema::new(vec![
            ("A".into(), ColTy::Int),
            ("B".into(), ColTy::Str),
        ])
        .unwrap();
        assert!(s
            .check_row(&[DbVal::Int(1), DbVal::Str("x".into())])
            .is_ok());
        assert!(s.check_row(&[DbVal::Int(1)]).is_err());
        assert!(s
            .check_row(&[DbVal::Str("x".into()), DbVal::Int(1)])
            .is_err());
    }

    #[test]
    fn schema_display_is_sql() {
        let s = Schema::new(vec![("A".into(), ColTy::Int)]).unwrap();
        assert_eq!(s.to_string(), "(\"A\" BIGINT NOT NULL)");
    }
}
