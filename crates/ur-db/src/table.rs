//! Schemas and table storage.

use crate::error::DbError;
use crate::index::{Index, IndexDef, Row};
use crate::value::{ColTy, DbVal};
use std::fmt;
use std::sync::Arc;

/// An ordered list of named, typed columns.
///
/// The column list is behind an `Arc`, so cloning a schema (which the
/// query engine does per statement to appease the borrow checker) is a
/// handle copy, not a deep copy of every column name — and a schema can
/// cross threads inside an MVCC snapshot (`crate::mvcc`).
#[derive(Clone, Debug, PartialEq)]
pub struct Schema {
    cols: Arc<[(String, ColTy)]>,
}

impl Schema {
    /// Creates a schema; column names must be distinct and non-empty.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::SchemaError`] on duplicates or empty names.
    pub fn new(cols: Vec<(String, ColTy)>) -> Result<Schema, DbError> {
        for (i, (n, _)) in cols.iter().enumerate() {
            if n.is_empty() {
                return Err(DbError::SchemaError("empty column name".into()));
            }
            if cols[..i].iter().any(|(m, _)| m == n) {
                return Err(DbError::SchemaError(format!("duplicate column {n}")));
            }
        }
        Ok(Schema { cols: cols.into() })
    }

    pub fn columns(&self) -> &[(String, ColTy)] {
        &self.cols
    }

    pub fn len(&self) -> usize {
        self.cols.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cols.is_empty()
    }

    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.cols.iter().position(|(n, _)| n == name)
    }

    pub fn col_type(&self, name: &str) -> Option<&ColTy> {
        self.cols.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Validates a full row against this schema.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TypeError`] if arity or any column type is
    /// wrong.
    pub fn check_row(&self, row: &[DbVal]) -> Result<(), DbError> {
        if row.len() != self.cols.len() {
            return Err(DbError::TypeError(format!(
                "row has {} values, schema has {} columns",
                row.len(),
                self.cols.len()
            )));
        }
        for ((name, ty), v) in self.cols.iter().zip(row) {
            if !ty.admits(v) {
                return Err(DbError::TypeError(format!(
                    "column {name} of type {ty} cannot hold {v}"
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self
            .cols
            .iter()
            .map(|(n, t)| format!("\"{n}\" {t}"))
            .collect();
        write!(f, "({})", cols.join(", "))
    }
}

/// A table: a schema, rows in insertion order, and any declared
/// secondary indexes.
///
/// Rows are `Arc`-shared **versions**: an update replaces the slot with
/// a new version, a delete drops the slot, and the superseded version
/// stays alive for exactly as long as a published MVCC snapshot still
/// holds it (see `crate::mvcc`). Mutations must go through the methods
/// below so the indexes are maintained in the same motion — this is the
/// single code path shared by live execution and WAL replay.
#[derive(Clone, Debug)]
pub struct Table {
    pub schema: Schema,
    pub rows: Vec<Row>,
    pub(crate) indexes: Vec<Index>,
    /// Row versions superseded (updated or deleted) since the engine
    /// last folded this counter at a checkpoint — the MVCC dead-version
    /// accounting.
    pub(crate) superseded: u64,
}

impl Table {
    pub fn new(schema: Schema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
            indexes: Vec::new(),
            superseded: 0,
        }
    }

    /// Declares an index named `name` over `column`, building it over
    /// the current rows.
    ///
    /// # Errors
    ///
    /// [`DbError::IndexExists`] on a duplicate name,
    /// [`DbError::UnknownColumn`] when the column is absent.
    pub(crate) fn create_index(&mut self, name: &str, column: &str) -> Result<(), DbError> {
        if self.indexes.iter().any(|i| i.def.name == name) {
            return Err(DbError::IndexExists(name.to_string()));
        }
        let col = Index::resolve_col(self.schema.columns(), column)?;
        self.indexes.push(Index::build(
            IndexDef {
                name: name.to_string(),
                column: column.to_string(),
            },
            col,
            &self.rows,
        ));
        Ok(())
    }

    /// Appends a row, maintaining every index.
    pub(crate) fn insert_row(&mut self, row: Row) {
        let pos = self.rows.len();
        for idx in &mut self.indexes {
            idx.note_insert(pos, &row);
        }
        self.rows.push(row);
    }

    /// Replaces the row at `pos` with a new version, maintaining every
    /// index (positions do not shift).
    ///
    /// # Errors
    ///
    /// [`DbError::Corrupt`] when `pos` is out of range (a WAL/state
    /// mismatch during replay; impossible on the validated live path).
    pub(crate) fn update_row(&mut self, pos: usize, row: Row) -> Result<(), DbError> {
        let slot = self.rows.get_mut(pos).ok_or_else(|| {
            DbError::Corrupt(format!("update index {pos} out of range"))
        })?;
        let old = std::mem::replace(slot, row);
        let new = self.rows[pos].clone();
        for idx in &mut self.indexes {
            idx.note_update(pos, &old, &new);
        }
        self.superseded = self.superseded.saturating_add(1);
        Ok(())
    }

    /// Removes the rows at the given ascending positions (back to front,
    /// so earlier positions stay valid), then rebuilds every index —
    /// deletion shifts all later positions, so incremental maintenance
    /// would cost as much as the rebuild anyway.
    ///
    /// # Errors
    ///
    /// [`DbError::Corrupt`] when a position is out of range.
    pub(crate) fn delete_rows(&mut self, removed: &[u64]) -> Result<(), DbError> {
        for idx in removed.iter().rev() {
            let idx = *idx as usize;
            if idx >= self.rows.len() {
                return Err(DbError::Corrupt(format!(
                    "delete index {idx} out of range"
                )));
            }
            self.rows.remove(idx);
        }
        if !removed.is_empty() {
            for idx in &mut self.indexes {
                idx.rebuild(&self.rows);
            }
            self.superseded = self.superseded.saturating_add(removed.len() as u64);
        }
        Ok(())
    }

    /// The index covering `column`, if one is declared.
    pub(crate) fn index_on(&self, column: &str) -> Option<&Index> {
        self.indexes.iter().find(|i| i.def.column == column)
    }

    /// Declared index definitions, in declaration order.
    pub fn index_defs(&self) -> Vec<IndexDef> {
        self.indexes.iter().map(|i| i.def.clone()).collect()
    }

    /// Checks every index against a fresh rebuild from the rows;
    /// returns the first divergence found.
    pub(crate) fn index_divergence(&self) -> Option<String> {
        self.indexes.iter().find_map(|i| i.divergence(&self.rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn schema_rejects_duplicates() {
        assert!(Schema::new(vec![
            ("A".into(), ColTy::Int),
            ("A".into(), ColTy::Str)
        ])
        .is_err());
    }

    #[test]
    fn schema_rejects_empty_names() {
        assert!(Schema::new(vec![("".into(), ColTy::Int)]).is_err());
    }

    #[test]
    fn index_and_type_lookup() {
        let s = Schema::new(vec![
            ("A".into(), ColTy::Int),
            ("B".into(), ColTy::Str),
        ])
        .unwrap();
        assert_eq!(s.index_of("B"), Some(1));
        assert_eq!(s.col_type("A"), Some(&ColTy::Int));
        assert_eq!(s.index_of("Z"), None);
    }

    #[test]
    fn check_row_validates() {
        let s = Schema::new(vec![
            ("A".into(), ColTy::Int),
            ("B".into(), ColTy::Str),
        ])
        .unwrap();
        assert!(s
            .check_row(&[DbVal::Int(1), DbVal::Str("x".into())])
            .is_ok());
        assert!(s.check_row(&[DbVal::Int(1)]).is_err());
        assert!(s
            .check_row(&[DbVal::Str("x".into()), DbVal::Int(1)])
            .is_err());
    }

    #[test]
    fn schema_display_is_sql() {
        let s = Schema::new(vec![("A".into(), ColTy::Int)]).unwrap();
        assert_eq!(s.to_string(), "(\"A\" BIGINT NOT NULL)");
    }

    #[test]
    fn table_mutations_maintain_indexes() {
        let s = Schema::new(vec![("A".into(), ColTy::Int)]).unwrap();
        let mut t = Table::new(s);
        t.create_index("i", "A").unwrap();
        assert!(matches!(
            t.create_index("i", "A"),
            Err(DbError::IndexExists(_))
        ));
        assert!(matches!(
            t.create_index("j", "Z"),
            Err(DbError::UnknownColumn(_))
        ));
        for v in [3, 1, 3, 2] {
            t.insert_row(Arc::from(vec![DbVal::Int(v)]));
        }
        assert!(t.index_divergence().is_none());
        t.update_row(0, Arc::from(vec![DbVal::Int(9)])).unwrap();
        assert!(t.index_divergence().is_none());
        t.delete_rows(&[1, 3]).unwrap();
        assert!(t.index_divergence().is_none());
        assert_eq!(t.superseded, 3, "one update + two deletes");
        assert!(t.update_row(99, Arc::from(vec![DbVal::Int(0)])).is_err());
        assert!(t.delete_rows(&[99]).is_err());
        assert_eq!(t.index_defs().len(), 1);
        assert_eq!(t.index_defs()[0].column, "A");
    }

    #[test]
    fn cloned_table_indexes_are_independent() {
        let s = Schema::new(vec![("A".into(), ColTy::Int)]).unwrap();
        let mut t = Table::new(s);
        t.create_index("i", "A").unwrap();
        t.insert_row(Arc::from(vec![DbVal::Int(1)]));
        let snap = t.clone();
        t.insert_row(Arc::from(vec![DbVal::Int(2)]));
        // The clone (an undo snapshot or MVCC snapshot) must not see the
        // later insert, in rows or in the copy-on-write index map.
        assert_eq!(snap.rows.len(), 1);
        assert!(snap.index_on("A").unwrap().probe_eq(&DbVal::Int(2)).is_empty());
        assert_eq!(t.index_on("A").unwrap().probe_eq(&DbVal::Int(2)), &[1]);
        assert!(snap.index_divergence().is_none());
        assert!(t.index_divergence().is_none());
    }
}
