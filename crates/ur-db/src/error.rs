//! Error type of the relational substrate.

use std::fmt;

/// Errors raised by the in-memory database engine.
#[derive(Clone, Debug, PartialEq)]
pub enum DbError {
    /// The named table does not exist.
    UnknownTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// The named sequence does not exist.
    UnknownSequence(String),
    /// The named column does not exist in the schema.
    UnknownColumn(String),
    /// A dynamic or static type error in a row or expression.
    TypeError(String),
    /// Schema construction failed.
    SchemaError(String),
    /// An I/O failure in the durability layer (WAL append/sync, snapshot
    /// write, directory creation). The in-memory state is unchanged: a
    /// failed commit rolls back before this is returned.
    Io(String),
    /// On-disk state failed verification during recovery (bad magic,
    /// version mismatch, CRC failure in a snapshot — WAL tail corruption
    /// is *not* an error; it is truncated at the last committed boundary).
    Corrupt(String),
    /// `commit`/`rollback` without an open transaction.
    NoTxn,
    /// `begin` while a transaction is already open (no nesting), or a
    /// checkpoint requested mid-transaction.
    TxnActive,
    /// The database directory is already open — by another process or
    /// another `Db::open` in this one. Two independent WAL handles would
    /// silently truncate each other's committed transactions, so the
    /// second open is refused (an advisory lock on `DIR/LOCK`).
    Locked(String),
    /// The durable layer is out of step with the in-memory state (a
    /// checkpoint failed after a wholesale state restore, or a WAL
    /// rotation failed after its snapshot landed). Appends are refused —
    /// they would be replayed against the wrong base, or silently
    /// ignored — until a checkpoint succeeds and re-anchors the log.
    Poisoned(String),
    /// A clone of a durable handle tried to write after another clone
    /// already had: the two in-memory states have diverged and their
    /// physical records cannot share one log. Durable handles are
    /// single-writer; `persist_rebase` transfers writership explicitly.
    StaleHandle,
    /// An index with this name already exists on the table.
    IndexExists(String),
    /// A mutation was attempted through a read-only snapshot handle
    /// (`Db::read_only`): snapshot readers observe one epoch and never
    /// write — route writes to the single writer instead.
    ReadOnly,
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownTable(t) => write!(f, "unknown table {t}"),
            DbError::TableExists(t) => write!(f, "table {t} already exists"),
            DbError::UnknownSequence(s) => write!(f, "unknown sequence {s}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            DbError::TypeError(m) => write!(f, "type error: {m}"),
            DbError::SchemaError(m) => write!(f, "schema error: {m}"),
            DbError::Io(m) => write!(f, "i/o error: {m}"),
            DbError::Corrupt(m) => write!(f, "corrupt database state: {m}"),
            DbError::NoTxn => write!(f, "no open transaction"),
            DbError::TxnActive => write!(f, "a transaction is already open"),
            DbError::Locked(d) => write!(f, "database directory {d} is locked by another handle"),
            DbError::Poisoned(m) => write!(f, "durability poisoned: {m}"),
            DbError::StaleHandle => write!(
                f,
                "stale database handle: another clone has written to the shared log"
            ),
            DbError::IndexExists(i) => write!(f, "index {i} already exists"),
            DbError::ReadOnly => write!(
                f,
                "read-only snapshot handle: writes must go to the single writer"
            ),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            DbError::UnknownTable("t".into()).to_string(),
            "unknown table t"
        );
    }
}
