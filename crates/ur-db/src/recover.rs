//! Recovery: replay the WAL onto the last good snapshot, truncating
//! torn or uncommitted tails at the last committed transaction boundary.
//!
//! The invariant `Db::open` guarantees: the recovered state is exactly
//! the committed prefix of the history — every acknowledged commit is
//! present, nothing from an unfinished transaction is visible. The scan
//! stops at the first frame that is truncated, fails its CRC, fails to
//! decode, or breaks transaction bracketing; everything from the last
//! `Commit` boundary onward is then physically truncated so the file
//! never accretes garbage.
//!
//! Snapshot and WAL are paired by **generation number**: the WAL is
//! replayed only when its header generation equals the one recorded in
//! the snapshot. An older WAL is the stale log a crash stranded between
//! a checkpoint's snapshot rename and its WAL rotation — every
//! transaction in it is already inside the snapshot, so it is ignored
//! (counted in `stale_wal_ignored`), never double-applied. A *newer*
//! WAL means the snapshot it was rotated for has vanished; that is real
//! corruption and the open is refused.
//!
//! The directory is also guarded by an advisory lock on `DIR/LOCK`
//! (released automatically when the last handle — or the process —
//! dies): two live WAL handles would silently truncate each other's
//! committed transactions, so a concurrent open fails with
//! [`DbError::Locked`].

use crate::error::DbError;
use crate::table::Table;
use crate::txn::{DbStats, DurabilityConfig};
use crate::wal::{frame_crc, Wal, WalRecord, FRAME_HEADER_LEN, WAL_FILE, WAL_HEADER_LEN, WAL_MAGIC};
use std::collections::HashMap;
use std::fs::{self, File, OpenOptions, TryLockError};
use std::path::{Path, PathBuf};

/// File name of the advisory lock inside a database directory.
pub const LOCK_FILE: &str = "LOCK";

/// The durable half of a database: the open WAL plus checkpoint
/// bookkeeping. Shared (`Rc<RefCell<…>>`) between clones of a `Db`
/// handle so all of them append to the same log.
#[derive(Debug)]
pub(crate) struct Durable {
    pub dir: PathBuf,
    pub wal: Wal,
    pub config: DurabilityConfig,
    /// Next transaction id to allocate.
    pub next_txn: u64,
    /// Committed WAL records since the last checkpoint (drives
    /// `snapshot_every`).
    pub records_since_snapshot: u64,
    /// `UR_DB_CRASH=abort` was set at open: injected faults crash the
    /// process (the kill-point harness) instead of returning errors.
    pub crash_mode: bool,
    /// Why the log can no longer be appended to (a failed re-anchor
    /// after a state restore, or a failed rotation after its snapshot
    /// landed); cleared by the next successful checkpoint.
    pub poisoned: Option<String>,
    /// Writer epoch, bumped on every append and writership transfer. A
    /// `Db` clone may only write while its own `seen_epoch` matches —
    /// two clones interleaving physical records computed against
    /// divergent in-memory states would corrupt the log.
    pub epoch: u64,
    /// Held for the lifetime of the handle: the advisory lock on
    /// `DIR/LOCK`. Dropping the last clone releases it.
    #[allow(dead_code)]
    lock: File,
}

/// Result of opening a database directory.
pub(crate) struct Recovered {
    pub tables: HashMap<String, Table>,
    pub sequences: HashMap<String, i64>,
    pub durable: Durable,
    pub stats: DbStats,
}

/// Outcome of scanning a WAL byte image.
pub(crate) struct WalScan {
    /// Committed transactions in commit order.
    pub txns: Vec<(u64, Vec<WalRecord>)>,
    /// End offset of the last committed transaction (the truncation
    /// point; everything beyond is torn or uncommitted).
    pub committed_len: u64,
}

/// Scans a WAL image, returning every fully committed transaction and
/// the boundary to truncate at. Never errors on tail damage — a torn,
/// corrupt, or uncommitted suffix simply ends the scan.
pub(crate) fn scan_wal(bytes: &[u8]) -> WalScan {
    let mut txns = Vec::new();
    let mut committed_len = WAL_HEADER_LEN;
    let mut pos = WAL_HEADER_LEN as usize;
    // Operations of the currently open (not yet committed) transaction.
    let mut open: Option<(u64, Vec<WalRecord>)> = None;
    // Ends at the first truncated frame header; every other damage mode
    // breaks out of the body below.
    while let Some(header) = bytes.get(pos..pos + FRAME_HEADER_LEN) {
        let mut len4 = [0u8; 4];
        len4.copy_from_slice(&header[..4]);
        let len = u32::from_le_bytes(len4) as usize;
        let mut crc8 = [0u8; 8];
        crc8.copy_from_slice(&header[4..12]);
        let crc = u64::from_le_bytes(crc8);
        let start = pos + FRAME_HEADER_LEN;
        let Some(payload) = bytes.get(start..start + len) else {
            break; // truncated payload
        };
        if frame_crc(payload) != crc {
            break; // torn write
        }
        let Some(rec) = WalRecord::decode(payload) else {
            break; // valid CRC but undecodable: treated as corruption
        };
        pos = start + len;
        match rec {
            WalRecord::Begin { txn } => {
                if open.is_some() {
                    break; // nested Begin: bracketing broken
                }
                open = Some((txn, Vec::new()));
            }
            WalRecord::Commit { txn } => match open.take() {
                Some((id, ops)) if id == txn => {
                    txns.push((id, ops));
                    committed_len = pos as u64;
                }
                _ => break, // Commit without matching Begin
            },
            op => match open.as_mut() {
                Some((_, ops)) => ops.push(op),
                None => break, // operation outside a transaction
            },
        }
    }
    WalScan {
        txns,
        committed_len,
    }
}

/// Applies one physical WAL record to the state. Shared by the live
/// execution path (so replay and execution cannot diverge) and by
/// recovery. Returns the `Nextval` result when the record is one.
///
/// # Errors
///
/// Only on state/record mismatch — impossible on the live path, which
/// validates first; during replay it means the WAL does not match the
/// snapshot and surfaces as [`DbError::Corrupt`].
pub(crate) fn apply_record(
    tables: &mut HashMap<String, Table>,
    sequences: &mut HashMap<String, i64>,
    rec: &WalRecord,
) -> Result<Option<i64>, DbError> {
    match rec {
        WalRecord::Begin { .. } | WalRecord::Commit { .. } => Err(DbError::Corrupt(
            "transaction bracket in operation position".into(),
        )),
        WalRecord::CreateTable { name, schema } => {
            if tables.contains_key(name) {
                return Err(DbError::TableExists(name.clone()));
            }
            tables.insert(name.clone(), Table::new(schema.clone()));
            Ok(None)
        }
        WalRecord::CreateSequence { name } => {
            sequences.entry(name.clone()).or_insert(1);
            Ok(None)
        }
        WalRecord::Nextval { name } => {
            let v = sequences
                .get_mut(name)
                .ok_or_else(|| DbError::UnknownSequence(name.clone()))?;
            let out = *v;
            *v += 1;
            Ok(Some(out))
        }
        WalRecord::Insert { table, row } => {
            let t = tables
                .get_mut(table)
                .ok_or_else(|| DbError::UnknownTable(table.clone()))?;
            t.insert_row(std::sync::Arc::from(row.as_slice()));
            Ok(None)
        }
        WalRecord::Update { table, changes } => {
            let t = tables
                .get_mut(table)
                .ok_or_else(|| DbError::UnknownTable(table.clone()))?;
            for (idx, row) in changes {
                t.update_row(*idx as usize, std::sync::Arc::from(row.as_slice()))
                    .map_err(|_| {
                        DbError::Corrupt(format!("update index {idx} out of range in {table}"))
                    })?;
            }
            Ok(None)
        }
        WalRecord::Delete { table, removed } => {
            let t = tables
                .get_mut(table)
                .ok_or_else(|| DbError::UnknownTable(table.clone()))?;
            // Indices are logged ascending; `delete_rows` removes
            // back-to-front so the earlier ones stay valid, then
            // rebuilds the table's indexes.
            t.delete_rows(removed)
                .map_err(|e| DbError::Corrupt(format!("{e} in {table}")))?;
            Ok(None)
        }
        WalRecord::CreateIndex {
            name,
            table,
            column,
        } => {
            let t = tables
                .get_mut(table)
                .ok_or_else(|| DbError::UnknownTable(table.clone()))?;
            t.create_index(name, column)?;
            Ok(None)
        }
    }
}

fn io_err(ctx: &str, e: std::io::Error) -> DbError {
    DbError::Io(format!("{ctx}: {e}"))
}

/// Takes the exclusive advisory lock on `dir/LOCK`.
///
/// # Errors
///
/// [`DbError::Locked`] when another handle (this process or another)
/// holds it; [`DbError::Io`] when the lock file cannot be created.
fn take_lock(dir: &Path) -> Result<File, DbError> {
    let lock = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(dir.join(LOCK_FILE))
        .map_err(|e| io_err("lock file create", e))?;
    match lock.try_lock() {
        Ok(()) => Ok(lock),
        Err(TryLockError::WouldBlock) => Err(DbError::Locked(dir.display().to_string())),
        Err(TryLockError::Error(e)) => Err(io_err("lock acquire", e)),
    }
}

/// Opens (creating if needed) a database directory: takes the directory
/// lock, loads the snapshot, replays the committed WAL prefix when the
/// generations pair up (ignoring a stale log a checkpoint crash left
/// behind), truncates the tail, and returns the recovered state plus
/// the open durable handle.
pub(crate) fn open_dir(dir: &Path, config: DurabilityConfig) -> Result<Recovered, DbError> {
    fs::create_dir_all(dir).map_err(|e| io_err("db dir create", e))?;
    let lock = take_lock(dir)?;
    let crash_mode = std::env::var("UR_DB_CRASH").map(|v| v == "abort").unwrap_or(false);
    let mut stats = DbStats::default();

    // `snap_gen` is the generation of the WAL this snapshot pairs with;
    // a fresh database (no snapshot yet) pairs with generation 1.
    let (snap_gen, (mut tables, mut sequences)) = match crate::snapshot::load(dir)? {
        Some((gen, state)) => {
            stats.snapshot_loaded = 1;
            (gen, state)
        }
        None => (1, (HashMap::new(), HashMap::new())),
    };

    let wal_path = dir.join(WAL_FILE);
    let bytes = match fs::read(&wal_path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err("wal read", e)),
    };

    let mut next_txn = 1;
    let wal = if bytes.len() < WAL_MAGIC.len() {
        // Missing, or a crash during creation left a partial header:
        // either way there is no committed data in it. Start fresh at
        // the snapshot's generation.
        Wal::create(&wal_path, snap_gen, crash_mode)?
    } else if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        // A full-size header that is not ours is a different file, not a
        // torn write — refuse rather than destroy it.
        return Err(DbError::Corrupt("WAL has bad magic".into()));
    } else if bytes.len() < WAL_HEADER_LEN as usize {
        // Good magic but the generation field never fully landed (a
        // crash mid-rotation): no committed data, restart at the
        // snapshot's generation.
        Wal::create(&wal_path, snap_gen, crash_mode)?
    } else {
        let mut gen8 = [0u8; 8];
        gen8.copy_from_slice(&bytes[WAL_MAGIC.len()..WAL_HEADER_LEN as usize]);
        let wal_gen = u64::from_le_bytes(gen8);
        if wal_gen < snap_gen {
            // The stale log a crash stranded between a checkpoint's
            // snapshot rename and its rotation: every transaction in it
            // is already inside the snapshot. Ignore it wholesale —
            // replaying would double-apply — and restart the log at the
            // snapshot's generation.
            stats.stale_wal_ignored =
                (bytes.len() as u64).saturating_sub(WAL_HEADER_LEN);
            Wal::create(&wal_path, snap_gen, crash_mode)?
        } else if wal_gen > snap_gen {
            // A rotation for generation `wal_gen` implies a snapshot
            // tagged `wal_gen` was durably renamed first; its absence
            // means committed history is missing. Refuse rather than
            // silently recover a truncated database.
            return Err(DbError::Corrupt(format!(
                "WAL generation {wal_gen} is ahead of the snapshot ({snap_gen}): \
                 the snapshot it was rotated for is missing"
            )));
        } else {
            let scan = scan_wal(&bytes);
            for (txn, ops) in &scan.txns {
                for rec in ops {
                    apply_record(&mut tables, &mut sequences, rec).map_err(|e| {
                        DbError::Corrupt(format!("WAL replay failed (txn {txn}): {e}"))
                    })?;
                    stats.replayed_records = stats.replayed_records.saturating_add(1);
                }
                stats.recovered_txns = stats.recovered_txns.saturating_add(1);
                next_txn = next_txn.max(*txn + 1);
            }
            stats.truncated_bytes = (bytes.len() as u64).saturating_sub(scan.committed_len);
            if stats.truncated_bytes > 0 {
                let f = OpenOptions::new()
                    .write(true)
                    .open(&wal_path)
                    .map_err(|e| io_err("wal open for truncate", e))?;
                f.set_len(scan.committed_len)
                    .map_err(|e| io_err("wal tail truncate", e))?;
                f.sync_all().map_err(|e| io_err("wal truncate sync", e))?;
            }
            Wal::open_at(&wal_path, scan.committed_len, wal_gen, crash_mode)?
        }
    };

    // Remove a stale checkpoint tmp file left by a crash mid-snapshot.
    let _ = fs::remove_file(dir.join(format!("{}.tmp", crate::snapshot::SNAPSHOT_FILE)));

    let records_since_snapshot = stats.replayed_records + 2 * stats.recovered_txns;
    Ok(Recovered {
        tables,
        sequences,
        durable: Durable {
            dir: dir.to_path_buf(),
            wal,
            config,
            next_txn,
            records_since_snapshot,
            crash_mode,
            poisoned: None,
            epoch: 0,
            lock,
        },
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Schema;
    use crate::value::{ColTy, DbVal};

    fn frame(rec: &WalRecord) -> Vec<u8> {
        let payload = rec.encode();
        let mut out = Vec::new();
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&frame_crc(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    fn image(records: &[WalRecord]) -> Vec<u8> {
        let mut bytes = crate::wal::header_bytes(1).to_vec();
        for rec in records {
            bytes.extend_from_slice(&frame(rec));
        }
        bytes
    }

    fn committed_txn(txn: u64, ops: &[WalRecord]) -> Vec<WalRecord> {
        let mut v = vec![WalRecord::Begin { txn }];
        v.extend_from_slice(ops);
        v.push(WalRecord::Commit { txn });
        v
    }

    #[test]
    fn scan_accepts_committed_prefix_and_ignores_uncommitted_suffix() {
        let mut records = committed_txn(1, &[WalRecord::CreateSequence { name: "s".into() }]);
        records.push(WalRecord::Begin { txn: 2 });
        records.push(WalRecord::Nextval { name: "s".into() });
        // no Commit for txn 2
        let bytes = image(&records);
        let scan = scan_wal(&bytes);
        assert_eq!(scan.txns.len(), 1);
        assert_eq!(scan.txns[0].0, 1);
        assert!(scan.committed_len < bytes.len() as u64, "suffix truncated");
    }

    #[test]
    fn scan_stops_at_torn_frame() {
        let records = committed_txn(1, &[WalRecord::CreateSequence { name: "s".into() }]);
        let mut bytes = image(&records);
        let good_len = bytes.len() as u64;
        // A second committed txn, but its last 3 bytes never hit the disk.
        let more = committed_txn(2, &[WalRecord::Nextval { name: "s".into() }]);
        for rec in &more {
            bytes.extend_from_slice(&frame(rec));
        }
        bytes.truncate(bytes.len() - 3);
        let scan = scan_wal(&bytes);
        assert_eq!(scan.txns.len(), 1);
        assert_eq!(scan.committed_len, good_len);
    }

    #[test]
    fn scan_stops_at_crc_mismatch() {
        let records = committed_txn(1, &[WalRecord::CreateSequence { name: "s".into() }]);
        let good_len = image(&records).len() as u64;
        let mut all = records;
        all.extend(committed_txn(2, &[WalRecord::Nextval { name: "s".into() }]));
        let mut bytes = image(&all);
        // Flip one payload bit inside the second transaction.
        let idx = good_len as usize + FRAME_HEADER_LEN + 2;
        bytes[idx] ^= 0x01;
        let scan = scan_wal(&bytes);
        assert_eq!(scan.txns.len(), 1);
        assert_eq!(scan.committed_len, good_len);
    }

    #[test]
    fn scan_rejects_broken_bracketing() {
        // Commit without Begin.
        let bytes = image(&[WalRecord::Commit { txn: 9 }]);
        let scan = scan_wal(&bytes);
        assert!(scan.txns.is_empty());
        assert_eq!(scan.committed_len, WAL_HEADER_LEN);

        // Operation outside any transaction.
        let bytes = image(&[WalRecord::CreateSequence { name: "s".into() }]);
        assert!(scan_wal(&bytes).txns.is_empty());
    }

    #[test]
    fn apply_record_replays_all_ops() {
        let mut tables = HashMap::new();
        let mut seqs = HashMap::new();
        let schema = Schema::new(vec![("A".into(), ColTy::Int)]).unwrap();
        apply_record(
            &mut tables,
            &mut seqs,
            &WalRecord::CreateTable {
                name: "t".into(),
                schema,
            },
        )
        .unwrap();
        for i in 0..3 {
            apply_record(
                &mut tables,
                &mut seqs,
                &WalRecord::Insert {
                    table: "t".into(),
                    row: vec![DbVal::Int(i)],
                },
            )
            .unwrap();
        }
        apply_record(
            &mut tables,
            &mut seqs,
            &WalRecord::Update {
                table: "t".into(),
                changes: vec![(1, vec![DbVal::Int(10)])],
            },
        )
        .unwrap();
        apply_record(
            &mut tables,
            &mut seqs,
            &WalRecord::Delete {
                table: "t".into(),
                removed: vec![0, 2],
            },
        )
        .unwrap();
        assert_eq!(tables["t"].rows.len(), 1);
        assert_eq!(tables["t"].rows[0].as_ref(), &[DbVal::Int(10)]);

        apply_record(&mut tables, &mut seqs, &WalRecord::CreateSequence { name: "s".into() })
            .unwrap();
        assert_eq!(
            apply_record(&mut tables, &mut seqs, &WalRecord::Nextval { name: "s".into() })
                .unwrap(),
            Some(1)
        );
        assert_eq!(seqs["s"], 2);
    }

    #[test]
    fn apply_record_replays_create_index_identically() {
        // The satellite invariant: an index maintained record-by-record
        // through replay equals one rebuilt from a fresh scan.
        let mut tables = HashMap::new();
        let mut seqs = HashMap::new();
        let schema = Schema::new(vec![("A".into(), ColTy::Int)]).unwrap();
        let records = vec![
            WalRecord::CreateTable {
                name: "t".into(),
                schema,
            },
            WalRecord::Insert {
                table: "t".into(),
                row: vec![DbVal::Int(1)],
            },
            WalRecord::CreateIndex {
                name: "t_a".into(),
                table: "t".into(),
                column: "A".into(),
            },
            WalRecord::Insert {
                table: "t".into(),
                row: vec![DbVal::Int(2)],
            },
            WalRecord::Update {
                table: "t".into(),
                changes: vec![(0, vec![DbVal::Int(7)])],
            },
            WalRecord::Delete {
                table: "t".into(),
                removed: vec![1],
            },
        ];
        for rec in &records {
            apply_record(&mut tables, &mut seqs, rec).unwrap();
        }
        let t = &tables["t"];
        assert_eq!(t.index_defs().len(), 1);
        assert!(t.index_divergence().is_none());
        // Duplicate index in the log is a replay error, like a duplicate
        // table.
        assert!(apply_record(
            &mut tables,
            &mut seqs,
            &WalRecord::CreateIndex {
                name: "t_a".into(),
                table: "t".into(),
                column: "A".into(),
            }
        )
        .is_err());
    }

    #[test]
    fn apply_record_rejects_mismatched_state() {
        let mut tables = HashMap::new();
        let mut seqs = HashMap::new();
        assert!(apply_record(
            &mut tables,
            &mut seqs,
            &WalRecord::Insert {
                table: "ghost".into(),
                row: vec![]
            }
        )
        .is_err());
        assert!(apply_record(
            &mut tables,
            &mut seqs,
            &WalRecord::Begin { txn: 1 }
        )
        .is_err());
    }
}
