//! The database engine: tables, sequences, DML operations, and a SQL-text
//! query log.
//!
//! The log records, for every operation, the SQL statement an Ur/Web
//! deployment would have sent to a real server — useful both for the
//! examples (showing generated SQL) and for the injection-safety tests
//! (asserting the statements are correctly escaped).

use crate::error::DbError;
use crate::expr::SqlExpr;
use crate::table::{Schema, Table};
use crate::value::DbVal;
use std::collections::HashMap;

/// An in-memory relational database.
#[derive(Clone, Debug, Default)]
pub struct Db {
    tables: HashMap<String, Table>,
    sequences: HashMap<String, i64>,
    log: Vec<String>,
}

impl Db {
    pub fn new() -> Db {
        Db::default()
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// Fails with [`DbError::TableExists`] on duplicates.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), DbError> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        self.log
            .push(format!("CREATE TABLE \"{name}\" {schema};"));
        self.tables.insert(name.to_string(), Table::new(schema));
        Ok(())
    }

    /// Creates a sequence starting at 1.
    pub fn create_sequence(&mut self, name: &str) {
        self.log.push(format!("CREATE SEQUENCE \"{name}\";"));
        self.sequences.entry(name.to_string()).or_insert(1);
    }

    /// Returns the next value of a sequence, then increments it.
    ///
    /// # Errors
    ///
    /// Fails with [`DbError::UnknownSequence`] when absent.
    pub fn nextval(&mut self, name: &str) -> Result<i64, DbError> {
        let v = self
            .sequences
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownSequence(name.to_string()))?;
        let out = *v;
        *v += 1;
        self.log
            .push(format!("SELECT NEXTVAL('\"{name}\"');"));
        Ok(out)
    }

    /// The schema of a table.
    ///
    /// # Errors
    ///
    /// Fails with [`DbError::UnknownTable`] when absent.
    pub fn schema(&self, table: &str) -> Result<&Schema, DbError> {
        self.tables
            .get(table)
            .map(|t| &t.schema)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut Table, DbError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Inserts a row given as (column, value-expression) pairs; the
    /// expressions may not reference columns (Ur/Web types them in the
    /// empty environment, `exp []`).
    ///
    /// # Errors
    ///
    /// Fails on unknown table/columns or a type-invalid row.
    pub fn insert(&mut self, table: &str, values: &[(String, SqlExpr)]) -> Result<(), DbError> {
        let schema = self.table(table)?.schema.clone();
        let empty = Schema::new(vec![])?;
        let mut row = vec![DbVal::Null; schema.len()];
        let mut provided = vec![false; schema.len()];
        for (col, e) in values {
            let idx = schema
                .index_of(col)
                .ok_or_else(|| DbError::UnknownColumn(col.clone()))?;
            row[idx] = e.eval(&empty, &[])?;
            provided[idx] = true;
        }
        for (i, p) in provided.iter().enumerate() {
            if !p && !schema.columns()[i].1.nullable() {
                return Err(DbError::TypeError(format!(
                    "column {} has no value and is not nullable",
                    schema.columns()[i].0
                )));
            }
        }
        schema.check_row(&row)?;
        let cols: Vec<String> = values.iter().map(|(c, _)| format!("\"{c}\"")).collect();
        let vals: Vec<String> = values.iter().map(|(_, e)| e.to_sql()).collect();
        self.log.push(format!(
            "INSERT INTO \"{table}\" ({}) VALUES ({});",
            cols.join(", "),
            vals.join(", ")
        ));
        self.table_mut(table)?.rows.push(row);
        Ok(())
    }

    /// Deletes all rows satisfying `pred`; returns the number removed.
    ///
    /// # Errors
    ///
    /// Fails on unknown table or ill-typed predicate.
    pub fn delete(&mut self, table: &str, pred: &SqlExpr) -> Result<usize, DbError> {
        let t = self.table(table)?;
        let schema = t.schema.clone();
        pred.check(&schema)?;
        let mut kept = Vec::new();
        let mut removed = 0;
        for row in &t.rows {
            if matches!(pred.eval(&schema, row)?, DbVal::Bool(true)) {
                removed += 1;
            } else {
                kept.push(row.clone());
            }
        }
        self.log.push(format!(
            "DELETE FROM \"{table}\" WHERE {};",
            pred.to_sql()
        ));
        self.table_mut(table)?.rows = kept;
        Ok(removed)
    }

    /// Updates the given columns on all rows satisfying `pred`; returns
    /// the number of rows changed. Value expressions may reference the
    /// row's current columns.
    ///
    /// # Errors
    ///
    /// Fails on unknown table/columns or ill-typed expressions.
    pub fn update(
        &mut self,
        table: &str,
        changes: &[(String, SqlExpr)],
        pred: &SqlExpr,
    ) -> Result<usize, DbError> {
        let t = self.table(table)?;
        let schema = t.schema.clone();
        pred.check(&schema)?;
        let mut idxs = Vec::new();
        for (col, e) in changes {
            let idx = schema
                .index_of(col)
                .ok_or_else(|| DbError::UnknownColumn(col.clone()))?;
            e.check(&schema)?;
            idxs.push(idx);
        }
        let mut changed = 0;
        let mut rows = t.rows.clone();
        for row in &mut rows {
            if matches!(pred.eval(&schema, row)?, DbVal::Bool(true)) {
                let mut new_row = row.clone();
                for ((_, e), idx) in changes.iter().zip(&idxs) {
                    new_row[*idx] = e.eval(&schema, row)?;
                }
                schema.check_row(&new_row)?;
                *row = new_row;
                changed += 1;
            }
        }
        let sets: Vec<String> = changes
            .iter()
            .map(|(c, e)| format!("\"{c}\" = {}", e.to_sql()))
            .collect();
        self.log.push(format!(
            "UPDATE \"{table}\" SET {} WHERE {};",
            sets.join(", "),
            pred.to_sql()
        ));
        self.table_mut(table)?.rows = rows;
        Ok(changed)
    }

    /// Returns (a copy of) all rows satisfying `pred`, in insertion order.
    ///
    /// # Errors
    ///
    /// Fails on unknown table or ill-typed predicate.
    pub fn select(&mut self, table: &str, pred: &SqlExpr) -> Result<Vec<Vec<DbVal>>, DbError> {
        let t = self.table(table)?;
        let schema = &t.schema;
        pred.check(schema)?;
        let mut out = Vec::new();
        for row in &t.rows {
            if matches!(pred.eval(schema, row)?, DbVal::Bool(true)) {
                out.push(row.clone());
            }
        }
        self.log.push(format!(
            "SELECT * FROM \"{table}\" WHERE {};",
            pred.to_sql()
        ));
        Ok(out)
    }

    /// Returns rows satisfying `pred`, ordered ascending by `order_col`,
    /// skipping `offset` rows and returning at most `limit`.
    ///
    /// # Errors
    ///
    /// Fails on unknown table/column, ill-typed predicate, or an
    /// unorderable column.
    pub fn select_ordered(
        &mut self,
        table: &str,
        pred: &SqlExpr,
        order_col: &str,
        offset: usize,
        limit: usize,
    ) -> Result<Vec<Vec<DbVal>>, DbError> {
        let t = self.table(table)?;
        let schema = t.schema.clone();
        pred.check(&schema)?;
        let idx = schema
            .index_of(order_col)
            .ok_or_else(|| DbError::UnknownColumn(order_col.to_string()))?;
        let mut matching = Vec::new();
        for row in &t.rows {
            if matches!(pred.eval(&schema, row)?, DbVal::Bool(true)) {
                matching.push(row.clone());
            }
        }
        // Stable sort; NULLs last, as in SQL's default NULLS LAST.
        matching.sort_by(|a, b| match a[idx].sql_cmp(&b[idx]) {
            Some(o) => o,
            None => match (&a[idx], &b[idx]) {
                (DbVal::Null, DbVal::Null) => std::cmp::Ordering::Equal,
                (DbVal::Null, _) => std::cmp::Ordering::Greater,
                (_, DbVal::Null) => std::cmp::Ordering::Less,
                _ => std::cmp::Ordering::Equal,
            },
        });
        self.log.push(format!(
            "SELECT * FROM \"{table}\" WHERE {} ORDER BY \"{order_col}\" \
             LIMIT {limit} OFFSET {offset};",
            pred.to_sql()
        ));
        Ok(matching.into_iter().skip(offset).take(limit).collect())
    }

    /// Number of rows in a table.
    ///
    /// # Errors
    ///
    /// Fails on unknown table.
    pub fn row_count(&self, table: &str) -> Result<usize, DbError> {
        Ok(self.table(table)?.rows.len())
    }

    /// The SQL statements issued so far.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Clears the query log.
    pub fn clear_log(&mut self) {
        self.log.clear();
    }

    /// Names of all tables (sorted, for deterministic output).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColTy;

    fn two_col_db() -> Db {
        let mut db = Db::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ("A".into(), ColTy::Int),
                ("B".into(), ColTy::Str),
            ])
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn ins(db: &mut Db, a: i64, b: &str) {
        db.insert(
            "t",
            &[
                ("A".into(), SqlExpr::lit(DbVal::Int(a))),
                ("B".into(), SqlExpr::lit(DbVal::Str(b.into()))),
            ],
        )
        .unwrap();
    }

    #[test]
    fn insert_and_select_roundtrip() {
        let mut db = two_col_db();
        ins(&mut db, 1, "x");
        ins(&mut db, 2, "y");
        let rows = db
            .select("t", &SqlExpr::lit(DbVal::Bool(true)))
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![DbVal::Int(1), DbVal::Str("x".into())]);
    }

    #[test]
    fn select_with_predicate() {
        let mut db = two_col_db();
        ins(&mut db, 1, "x");
        ins(&mut db, 2, "y");
        let pred = SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(2)));
        let rows = db.select("t", &pred).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], DbVal::Str("y".into()));
    }

    #[test]
    fn delete_removes_matching() {
        let mut db = two_col_db();
        ins(&mut db, 1, "x");
        ins(&mut db, 2, "y");
        ins(&mut db, 3, "z");
        let pred = SqlExpr::Lt(
            Box::new(SqlExpr::col("A")),
            Box::new(SqlExpr::lit(DbVal::Int(3))),
        );
        assert_eq!(db.delete("t", &pred).unwrap(), 2);
        assert_eq!(db.row_count("t").unwrap(), 1);
    }

    #[test]
    fn update_changes_matching_rows() {
        let mut db = two_col_db();
        ins(&mut db, 1, "x");
        ins(&mut db, 2, "y");
        let pred = SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(1)));
        let changed = db
            .update(
                "t",
                &[(
                    "B".into(),
                    SqlExpr::lit(DbVal::Str("updated".into())),
                )],
                &pred,
            )
            .unwrap();
        assert_eq!(changed, 1);
        let rows = db.select("t", &pred).unwrap();
        assert_eq!(rows[0][1], DbVal::Str("updated".into()));
    }

    #[test]
    fn update_sees_old_row_values() {
        // UPDATE t SET A = A + 1 — expressions reference the pre-update row.
        let mut db = two_col_db();
        ins(&mut db, 10, "x");
        let bump = SqlExpr::Add(
            Box::new(SqlExpr::col("A")),
            Box::new(SqlExpr::lit(DbVal::Int(1))),
        );
        db.update("t", &[("A".into(), bump)], &SqlExpr::lit(DbVal::Bool(true)))
            .unwrap();
        let rows = db
            .select("t", &SqlExpr::lit(DbVal::Bool(true)))
            .unwrap();
        assert_eq!(rows[0][0], DbVal::Int(11));
    }

    #[test]
    fn insert_missing_non_nullable_fails() {
        let mut db = two_col_db();
        let err = db
            .insert("t", &[("A".into(), SqlExpr::lit(DbVal::Int(1)))])
            .unwrap_err();
        assert!(matches!(err, DbError::TypeError(_)));
    }

    #[test]
    fn insert_wrong_type_fails() {
        let mut db = two_col_db();
        let err = db
            .insert(
                "t",
                &[
                    ("A".into(), SqlExpr::lit(DbVal::Str("no".into()))),
                    ("B".into(), SqlExpr::lit(DbVal::Str("x".into()))),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::TypeError(_)));
    }

    #[test]
    fn nullable_columns_accept_null() {
        let mut db = Db::new();
        db.create_table(
            "v",
            Schema::new(vec![
                ("K".into(), ColTy::Int),
                ("D".into(), ColTy::Nullable(Box::new(ColTy::Str))),
            ])
            .unwrap(),
        )
        .unwrap();
        db.insert("v", &[("K".into(), SqlExpr::lit(DbVal::Int(1)))])
            .unwrap();
        let rows = db
            .select("v", &SqlExpr::is_null(SqlExpr::col("D")))
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn sequences() {
        let mut db = Db::new();
        db.create_sequence("s");
        assert_eq!(db.nextval("s").unwrap(), 1);
        assert_eq!(db.nextval("s").unwrap(), 2);
        assert!(db.nextval("missing").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = two_col_db();
        let err = db
            .create_table("t", Schema::new(vec![]).unwrap())
            .unwrap_err();
        assert!(matches!(err, DbError::TableExists(_)));
    }

    #[test]
    fn query_log_records_escaped_sql() {
        let mut db = two_col_db();
        ins(&mut db, 1, "Robert'); DROP TABLE Students;--");
        let log = db.log().join("\n");
        assert!(log.contains("INSERT INTO \"t\""));
        // The malicious quote is doubled in the log.
        assert!(log.contains("Robert''); DROP TABLE Students;--"));
    }

    #[test]
    fn table_names_sorted() {
        let mut db = Db::new();
        db.create_table("zz", Schema::new(vec![]).unwrap()).unwrap();
        db.create_table("aa", Schema::new(vec![]).unwrap()).unwrap();
        assert_eq!(db.table_names(), vec!["aa".to_string(), "zz".to_string()]);
    }
}

#[cfg(test)]
mod ordered_tests {
    use super::*;
    use crate::value::ColTy;

    fn db_with_rows() -> Db {
        let mut db = Db::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ("A".into(), ColTy::Int),
                ("B".into(), ColTy::Str),
            ])
            .unwrap(),
        )
        .unwrap();
        for (a, b) in [(3, "c"), (1, "a"), (2, "b"), (5, "e"), (4, "d")] {
            db.insert(
                "t",
                &[
                    ("A".into(), SqlExpr::lit(DbVal::Int(a))),
                    ("B".into(), SqlExpr::lit(DbVal::Str(b.into()))),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn ordered_select_sorts_limits_offsets() {
        let mut db = db_with_rows();
        let rows = db
            .select_ordered("t", &SqlExpr::lit(DbVal::Bool(true)), "A", 1, 2)
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], DbVal::Int(2));
        assert_eq!(rows[1][0], DbVal::Int(3));
    }

    #[test]
    fn ordered_select_respects_predicate() {
        let mut db = db_with_rows();
        let pred = SqlExpr::Lt(
            Box::new(SqlExpr::col("A")),
            Box::new(SqlExpr::lit(DbVal::Int(4))),
        );
        let rows = db.select_ordered("t", &pred, "A", 0, 10).unwrap();
        let vals: Vec<&DbVal> = rows.iter().map(|r| &r[0]).collect();
        assert_eq!(vals, vec![&DbVal::Int(1), &DbVal::Int(2), &DbVal::Int(3)]);
    }

    #[test]
    fn ordered_select_unknown_column_fails() {
        let mut db = db_with_rows();
        assert!(db
            .select_ordered("t", &SqlExpr::lit(DbVal::Bool(true)), "Z", 0, 1)
            .is_err());
    }

    #[test]
    fn ordered_select_logs_order_by() {
        let mut db = db_with_rows();
        db.select_ordered("t", &SqlExpr::lit(DbVal::Bool(true)), "B", 0, 3)
            .unwrap();
        assert!(db.log().last().unwrap().contains("ORDER BY \"B\""));
    }

    #[test]
    fn nulls_sort_last() {
        let mut db = Db::new();
        db.create_table(
            "n",
            Schema::new(vec![(
                "A".into(),
                ColTy::Nullable(Box::new(ColTy::Int)),
            )])
            .unwrap(),
        )
        .unwrap();
        for v in [DbVal::Null, DbVal::Int(2), DbVal::Int(1)] {
            db.insert("n", &[("A".into(), SqlExpr::lit(v))]).unwrap();
        }
        let rows = db
            .select_ordered("n", &SqlExpr::lit(DbVal::Bool(true)), "A", 0, 10)
            .unwrap();
        assert_eq!(rows[0][0], DbVal::Int(1));
        assert_eq!(rows[2][0], DbVal::Null);
    }
}
