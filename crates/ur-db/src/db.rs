//! The database engine: tables, sequences, DML operations, transactions,
//! a SQL-text query log, and an optional on-disk durability layer.
//!
//! The log records, for every operation, the SQL statement an Ur/Web
//! deployment would have sent to a real server — useful both for the
//! examples (showing generated SQL) and for the injection-safety tests
//! (asserting the statements are correctly escaped).
//!
//! ## Durability
//!
//! [`Db::new`] is the historical in-memory engine, unchanged.
//! [`Db::open`] backs the same API with a write-ahead log plus snapshot
//! compaction in a directory: every statement auto-commits one fsync'd
//! WAL transaction, or [`Db::begin`]/[`Db::commit`] group statements
//! into an explicit one. Reopening the directory always recovers
//! exactly the committed prefix (see `crate::recover`). The SQL-text
//! log is a per-session debug trace and is deliberately *not*
//! persisted. Cloning a durable `Db` shares the underlying WAL handle
//! (`Rc`), so a clone used as an undo snapshot (as `ur-web::Session`
//! does with its `World`) stays attached to the same files.
//!
//! Durable handles are **single-writer**: a writer epoch on the shared
//! handle tracks whose in-memory state the log's physical records were
//! computed against, and a clone whose state has fallen behind is
//! refused with [`DbError::StaleHandle`] rather than allowed to
//! interleave records that recovery would replay against the wrong
//! base. [`Db::persist_rebase`] transfers writership explicitly (the
//! undo-restore pattern). When the durable layer gets out of step with
//! memory — a failed re-anchor, a failed WAL rotation after its
//! snapshot landed — the handle is *poisoned*: appends fail with
//! [`DbError::Poisoned`] until a checkpoint succeeds and re-anchors
//! the log (each refused append first attempts that heal itself).

use crate::error::DbError;
use crate::expr::SqlExpr;
use crate::index::{Index, IndexDef};
use crate::mvcc::{DbSnapshot, MvccState};
use crate::plan::{self, Access, Plan};
use crate::recover::{self, Durable};
use crate::table::{Schema, Table};
use crate::txn::{DbStats, DurabilityConfig, TxnState};
use crate::value::DbVal;
use crate::wal::WalRecord;
use std::cell::RefCell;
use std::collections::HashMap;
use std::path::Path;
use std::rc::Rc;
use std::sync::Arc;
use ur_core::failpoint::{self, Site};

/// Capacity of the bounded EXPLAIN ring ([`Db::plan_log`]).
const PLAN_LOG_CAP: usize = 8;

/// A relational database: in-memory by default, durable when opened on
/// a directory with [`Db::open`].
#[derive(Clone, Debug, Default)]
pub struct Db {
    tables: HashMap<String, Table>,
    sequences: HashMap<String, i64>,
    log: Vec<String>,
    /// The WAL + checkpoint handle, shared between clones; `None` in
    /// the in-memory mode.
    durable: Option<Rc<RefCell<Durable>>>,
    /// The open explicit transaction, if any.
    txn: Option<TxnState>,
    stats: DbStats,
    /// Transaction-id allocator for the in-memory mode (durable mode
    /// allocates from the shared handle so ids survive reopen).
    next_mem_txn: u64,
    /// The shared writer epoch this handle's state corresponds to; a
    /// mismatch with `Durable::epoch` means another clone has written
    /// since, and this handle's appends are refused as stale.
    seen_epoch: u64,
    /// Disables index selection: every statement plans as a full scan.
    /// The probe/scan differential tests flip this; `false` (planner
    /// on) is the default.
    planner_off: bool,
    /// True for handles made by [`Db::read_only`]: every mutation is
    /// refused with [`DbError::ReadOnly`].
    read_only: bool,
    /// Bounded ring of the most recent EXPLAIN lines (oldest first).
    plan_log: Vec<String>,
    /// MVCC bookkeeping: committed-state epoch, snapshot cache, and the
    /// published-snapshot registry GC accounting runs against.
    mvcc: MvccState,
}

impl Db {
    pub fn new() -> Db {
        Db::default()
    }

    /// Opens (creating if needed) a durable database in `dir`: loads the
    /// last snapshot, replays the committed WAL prefix onto it, and
    /// truncates any torn or uncommitted tail.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on filesystem failures, [`DbError::Corrupt`] when
    /// the snapshot (or the WAL header) fails verification.
    pub fn open(dir: impl AsRef<Path>) -> Result<Db, DbError> {
        Db::open_with(dir, DurabilityConfig::default())
    }

    /// [`Db::open`] with explicit durability tunables.
    ///
    /// # Errors
    ///
    /// As [`Db::open`].
    pub fn open_with(dir: impl AsRef<Path>, config: DurabilityConfig) -> Result<Db, DbError> {
        let rec = recover::open_dir(dir.as_ref(), config)?;
        Ok(Db {
            tables: rec.tables,
            sequences: rec.sequences,
            log: Vec::new(),
            durable: Some(Rc::new(RefCell::new(rec.durable))),
            txn: None,
            stats: rec.stats,
            next_mem_txn: 0,
            seen_epoch: 0,
            planner_off: false,
            read_only: false,
            plan_log: Vec::new(),
            mvcc: MvccState::default(),
        })
    }

    /// True when this handle is backed by a WAL on disk.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// True while an explicit transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Storage-engine counters (WAL appends, fsyncs, recovery work,
    /// checkpoints) for this handle.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// Bytes in the WAL's committed prefix (0 in the in-memory mode).
    pub fn wal_len(&self) -> u64 {
        self.durable
            .as_ref()
            .map_or(0, |d| d.borrow().wal.committed_len())
    }

    /// Generation number of the WAL (0 in the in-memory mode). Bumped
    /// by every checkpoint; pairs the log with its snapshot.
    pub fn wal_generation(&self) -> u64 {
        self.durable
            .as_ref()
            .map_or(0, |d| d.borrow().wal.generation())
    }

    /// Why durable appends are currently refused, if they are (see
    /// [`DbError::Poisoned`]); `None` for a healthy or in-memory handle.
    pub fn poison_reason(&self) -> Option<String> {
        self.durable.as_ref().and_then(|d| d.borrow().poisoned.clone())
    }

    /// Attempts to heal a poisoned durable handle with one checkpoint
    /// (which re-anchors the log on the current in-memory state).
    ///
    /// # Errors
    ///
    /// [`DbError::Poisoned`] with the original reason and the heal
    /// failure when the checkpoint does not succeed.
    fn heal_poison(&mut self) -> Result<(), DbError> {
        let why = self.poison_reason();
        let Some(why) = why else { return Ok(()) };
        self.checkpoint_inner(false)
            .map_err(|e| DbError::Poisoned(format!("{why} (heal checkpoint failed: {e})")))
    }

    /// Fails with [`DbError::StaleHandle`] when another clone has
    /// written to the shared log since this handle last did.
    fn check_writer(&self) -> Result<(), DbError> {
        match &self.durable {
            Some(d) if d.borrow().epoch != self.seen_epoch => Err(DbError::StaleHandle),
            _ => Ok(()),
        }
    }

    /// Runs one mutation to completion: applies the physical record via
    /// the same interpreter recovery uses (so live execution and replay
    /// cannot diverge) and makes it durable according to the current
    /// mode — buffered in the open transaction, auto-committed through
    /// the WAL, or purely in memory.
    fn commit_effect(&mut self, rec: WalRecord, sql: String) -> Result<Option<i64>, DbError> {
        if self.read_only {
            return Err(DbError::ReadOnly);
        }
        if self.txn.is_some() {
            // Explicit transaction: apply now (the transaction reads its
            // own writes), persist at commit.
            let out = recover::apply_record(&mut self.tables, &mut self.sequences, &rec)?;
            self.log.push(sql);
            if let Some(txn) = self.txn.as_mut() {
                txn.pending.push(rec);
            }
            return Ok(out);
        }
        if let Some(durable) = self.durable.clone() {
            // Auto-commit: WAL first, then the in-memory effect, so a
            // failed append leaves no trace at all. A stale clone is
            // refused before anything is allocated; a poisoned handle
            // first tries to re-anchor the log with a checkpoint.
            self.check_writer()?;
            self.heal_poison()?;
            let txn_id = {
                let mut d = durable.borrow_mut();
                let id = d.next_txn;
                d.next_txn += 1;
                id
            };
            {
                let mut d = durable.borrow_mut();
                let sync = d.config.sync_commits;
                d.wal
                    .append_txn(txn_id, std::slice::from_ref(&rec), sync, &mut self.stats)?;
                d.records_since_snapshot = d.records_since_snapshot.saturating_add(3);
                d.epoch += 1;
                self.seen_epoch = d.epoch;
            }
            let out = recover::apply_record(&mut self.tables, &mut self.sequences, &rec)?;
            self.log.push(sql);
            self.stats.auto_commits = self.stats.auto_commits.saturating_add(1);
            self.mvcc.bump();
            self.maybe_checkpoint();
            return Ok(out);
        }
        let out = recover::apply_record(&mut self.tables, &mut self.sequences, &rec)?;
        self.log.push(sql);
        self.mvcc.bump();
        Ok(out)
    }

    /// Opens an explicit transaction; returns its id.
    ///
    /// # Errors
    ///
    /// [`DbError::TxnActive`] when one is already open (no nesting).
    pub fn begin(&mut self) -> Result<u64, DbError> {
        if self.read_only {
            return Err(DbError::ReadOnly);
        }
        if self.txn.is_some() {
            return Err(DbError::TxnActive);
        }
        let id = match &self.durable {
            Some(d) => {
                let mut d = d.borrow_mut();
                let id = d.next_txn;
                d.next_txn += 1;
                id
            }
            None => {
                self.next_mem_txn += 1;
                self.next_mem_txn
            }
        };
        self.txn = Some(TxnState {
            id,
            pending: Vec::new(),
            undo_tables: self.tables.clone(),
            undo_sequences: self.sequences.clone(),
            undo_log_len: self.log.len(),
        });
        Ok(id)
    }

    /// Commits the open transaction: one fsync'd WAL append of all its
    /// records (a no-op in memory). On a durable failure the transaction
    /// is rolled back — the in-memory state never runs ahead of the log.
    ///
    /// # Errors
    ///
    /// [`DbError::NoTxn`] without an open transaction; [`DbError::Io`]
    /// when the WAL append fails (the state is then as before `begin`);
    /// [`DbError::StaleHandle`]/[`DbError::Poisoned`] when this clone
    /// may not write (also rolled back).
    pub fn commit(&mut self) -> Result<(), DbError> {
        let txn = self.txn.take().ok_or(DbError::NoTxn)?;
        if let Some(durable) = self.durable.clone() {
            // The transaction's effects are already applied in memory
            // (it reads its own writes), so a failed durable step must
            // restore the undo snapshot before surfacing the error.
            let rollback = |db: &mut Db, e: DbError| {
                db.tables = txn.undo_tables.clone();
                db.sequences = txn.undo_sequences.clone();
                db.log.truncate(txn.undo_log_len);
                db.stats.txn_rollbacks = db.stats.txn_rollbacks.saturating_add(1);
                Err(e)
            };
            if let Err(e) = self.check_writer() {
                return rollback(self, e);
            }
            if self.poison_reason().is_some() {
                // Heal against the *pre-transaction* state: the heal
                // checkpoint's snapshot must not contain this
                // transaction's effects, because the append below can
                // still fail and roll them back — a snapshot holding
                // them would make an uncommitted transaction durable.
                let mut t = txn.undo_tables.clone();
                let mut s = txn.undo_sequences.clone();
                std::mem::swap(&mut self.tables, &mut t);
                std::mem::swap(&mut self.sequences, &mut s);
                let healed = self.heal_poison();
                std::mem::swap(&mut self.tables, &mut t);
                std::mem::swap(&mut self.sequences, &mut s);
                if let Err(e) = healed {
                    return rollback(self, e);
                }
            }
            let res = {
                let mut d = durable.borrow_mut();
                let sync = d.config.sync_commits;
                d.wal.append_txn(txn.id, &txn.pending, sync, &mut self.stats)
            };
            if let Err(e) = res {
                return rollback(self, e);
            }
            {
                let mut d = durable.borrow_mut();
                d.records_since_snapshot = d
                    .records_since_snapshot
                    .saturating_add(txn.pending.len() as u64 + 2);
                d.epoch += 1;
                self.seen_epoch = d.epoch;
            }
            self.stats.txn_commits = self.stats.txn_commits.saturating_add(1);
            self.mvcc.bump();
            self.maybe_checkpoint();
            return Ok(());
        }
        self.stats.txn_commits = self.stats.txn_commits.saturating_add(1);
        self.mvcc.bump();
        Ok(())
    }

    /// Rolls the open transaction back to the `begin` snapshot.
    ///
    /// # Errors
    ///
    /// [`DbError::NoTxn`] without an open transaction.
    pub fn rollback(&mut self) -> Result<(), DbError> {
        let txn = self.txn.take().ok_or(DbError::NoTxn)?;
        self.tables = txn.undo_tables;
        self.sequences = txn.undo_sequences;
        self.log.truncate(txn.undo_log_len);
        self.stats.txn_rollbacks = self.stats.txn_rollbacks.saturating_add(1);
        Ok(())
    }

    /// Checkpoint compaction: writes the full state as a snapshot tagged
    /// with the next WAL generation, then rotates the WAL to it. A no-op
    /// in memory. A successful checkpoint also heals a poisoned handle —
    /// the fresh snapshot + empty log *are* the current state.
    ///
    /// # Errors
    ///
    /// [`DbError::TxnActive`] mid-transaction; [`DbError::StaleHandle`]
    /// from a clone that has fallen behind; [`DbError::Io`] when the
    /// snapshot write fails (the WAL is kept — nothing is lost) or the
    /// WAL rotation fails after its snapshot landed (the handle is then
    /// poisoned: appends to the superseded log would be ignored by
    /// recovery, so they are refused until a checkpoint succeeds).
    pub fn checkpoint(&mut self) -> Result<(), DbError> {
        self.checkpoint_inner(false)
    }

    /// [`Db::checkpoint`]; with `adopt` the handle first takes over
    /// writership (bumping the shared epoch) instead of requiring it —
    /// the `persist_rebase` path, where superseding the other clones'
    /// history is exactly the point.
    fn checkpoint_inner(&mut self, adopt: bool) -> Result<(), DbError> {
        if self.txn.is_some() {
            return Err(DbError::TxnActive);
        }
        let Some(durable) = self.durable.clone() else {
            // In-memory checkpoints still run the MVCC accounting pass.
            self.fold_gc();
            return Ok(());
        };
        if adopt {
            let mut d = durable.borrow_mut();
            d.epoch += 1;
            self.seen_epoch = d.epoch;
        } else {
            self.check_writer()?;
        }
        let mut d = durable.borrow_mut();
        let next_gen = d.wal.generation() + 1;
        if let Err(e) =
            crate::snapshot::write(&d.dir, &self.tables, &self.sequences, next_gen, d.crash_mode)
        {
            self.stats.snapshot_errs = self.stats.snapshot_errs.saturating_add(1);
            return Err(e);
        }
        // The snapshot for `next_gen` is on disk: from here until the
        // rotation lands, the old-generation WAL is stale — recovery
        // ignores it — so failing to rotate must poison the handle
        // rather than let appends vanish into the superseded log.
        if failpoint::fire(Site::WalRotate) {
            if d.crash_mode {
                std::process::abort();
            }
            d.poisoned =
                Some("injected WAL rotate failure after its snapshot landed".to_string());
            self.stats.rotate_errs = self.stats.rotate_errs.saturating_add(1);
            return Err(DbError::Io("injected WAL rotate failure".into()));
        }
        if let Err(e) = d.wal.rotate(next_gen) {
            d.poisoned = Some(format!(
                "WAL rotation to generation {next_gen} failed after its snapshot landed: {e}"
            ));
            self.stats.rotate_errs = self.stats.rotate_errs.saturating_add(1);
            return Err(e);
        }
        d.records_since_snapshot = 0;
        d.poisoned = None;
        self.stats.snapshots_written = self.stats.snapshots_written.saturating_add(1);
        drop(d);
        self.fold_gc();
        Ok(())
    }

    /// Checkpoint-time MVCC accounting: moves every table's superseded
    /// version count into the registry's pending pool, prunes dead
    /// snapshot handles, and folds the pool into `versions_gcd` once no
    /// published snapshot is live (the versions' memory was freed by
    /// the last `Arc` drop; this is when the engine can *count* them).
    fn fold_gc(&mut self) {
        let newly: u64 = self
            .tables
            .values_mut()
            .map(|t| std::mem::take(&mut t.superseded))
            .sum();
        self.mvcc.registry.note_dead(newly);
        let gcd = self.mvcc.registry.collect();
        self.stats.versions_gcd = self.stats.versions_gcd.saturating_add(gcd);
    }

    fn maybe_checkpoint(&mut self) {
        let due = match &self.durable {
            Some(d) => {
                let d = d.borrow();
                d.config.snapshot_every > 0
                    && d.records_since_snapshot >= d.config.snapshot_every
            }
            None => false,
        };
        if due && self.txn.is_none() {
            // Best-effort: a failed snapshot write keeps the WAL and is
            // retried after the next commit (counted in snapshot_errs);
            // a failed rotation poisons the handle, and the next append
            // retries the checkpoint as its heal.
            let _ = self.checkpoint();
        }
    }

    /// Re-anchors durability after the in-memory state was *restored*
    /// from a clone (the incremental engine's base-world rebuild, a
    /// session rollback): takes over writership of the shared handle,
    /// writes a snapshot of the restored state, and rotates the WAL, so
    /// a crash recovers the restored state rather than the abandoned
    /// history. On failure the handle is **poisoned** — the on-disk log
    /// still describes the abandoned history, so further appends are
    /// refused (each retrying the re-anchor first) rather than allowed
    /// to extend it; the failure is also counted in `snapshot_errs` /
    /// `rotate_errs`. A no-op in memory.
    pub fn persist_rebase(&mut self) {
        if self.durable.is_none() {
            return;
        }
        // A wholesale state restore abandons any open transaction.
        self.txn = None;
        if let Err(e) = self.checkpoint_inner(true) {
            if let Some(durable) = self.durable.clone() {
                let mut d = durable.borrow_mut();
                if d.poisoned.is_none() {
                    d.poisoned = Some(format!(
                        "re-anchor checkpoint after a state restore failed: {e}"
                    ));
                }
            }
        }
    }

    /// Grafts `state`'s relational contents (tables, sequences) onto
    /// this durable handle and re-anchors the on-disk log on them via
    /// [`Db::persist_rebase`], taking over writership. `ur-serve` uses
    /// this after a session rebuild: declarations were replayed into a
    /// fresh in-memory world, and the shared durable store must adopt
    /// that world as the new truth rather than have the replay appended
    /// on top of the old one (which would double-apply every effect).
    /// Failure poisons the handle exactly like `persist_rebase`; a
    /// no-op on in-memory handles.
    pub fn adopt_state(&mut self, state: &Db) {
        if self.durable.is_none() {
            return;
        }
        self.tables = state.tables.clone();
        self.sequences = state.sequences.clone();
        self.mvcc.bump();
        self.persist_rebase();
    }

    /// Deterministic full-state dump (tables sorted by name, rows in
    /// insertion order, sequences sorted): the oracle-comparison format
    /// of the crash harness.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for name in self.table_names() {
            if let Some(t) = self.tables.get(&name) {
                out.push_str(&format!("table {name} {}\n", t.schema));
                for row in &t.rows {
                    let vals: Vec<String> = row.iter().map(|v| v.to_sql()).collect();
                    out.push_str(&format!("  ({})\n", vals.join(", ")));
                }
            }
        }
        let mut seqs: Vec<(&String, &i64)> = self.sequences.iter().collect();
        seqs.sort();
        for (name, v) in seqs {
            out.push_str(&format!("sequence {name} = {v}\n"));
        }
        out
    }

    /// Creates a table.
    ///
    /// # Errors
    ///
    /// Fails with [`DbError::TableExists`] on duplicates.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<(), DbError> {
        if self.tables.contains_key(name) {
            return Err(DbError::TableExists(name.to_string()));
        }
        let sql = format!("CREATE TABLE \"{name}\" {schema};");
        self.commit_effect(
            WalRecord::CreateTable {
                name: name.to_string(),
                schema,
            },
            sql,
        )?;
        Ok(())
    }

    /// Creates a sequence starting at 1 (idempotent). Infallible in the
    /// in-memory mode; in durable mode a WAL failure is swallowed after
    /// rolling the effect back — use [`Db::try_create_sequence`] to
    /// observe it.
    pub fn create_sequence(&mut self, name: &str) {
        let _ = self.try_create_sequence(name);
    }

    /// [`Db::create_sequence`], surfacing durable-layer failures.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] when the WAL append fails (no state change).
    pub fn try_create_sequence(&mut self, name: &str) -> Result<(), DbError> {
        let sql = format!("CREATE SEQUENCE \"{name}\";");
        self.commit_effect(
            WalRecord::CreateSequence {
                name: name.to_string(),
            },
            sql,
        )?;
        Ok(())
    }

    /// Returns the next value of a sequence, then increments it.
    ///
    /// # Errors
    ///
    /// Fails with [`DbError::UnknownSequence`] when absent.
    pub fn nextval(&mut self, name: &str) -> Result<i64, DbError> {
        if !self.sequences.contains_key(name) {
            return Err(DbError::UnknownSequence(name.to_string()));
        }
        let sql = format!("SELECT NEXTVAL('\"{name}\"');");
        match self.commit_effect(
            WalRecord::Nextval {
                name: name.to_string(),
            },
            sql,
        )? {
            Some(v) => Ok(v),
            None => Err(DbError::Corrupt("nextval yielded no value".into())),
        }
    }

    /// The schema of a table.
    ///
    /// # Errors
    ///
    /// Fails with [`DbError::UnknownTable`] when absent.
    pub fn schema(&self, table: &str) -> Result<&Schema, DbError> {
        self.tables
            .get(table)
            .map(|t| &t.schema)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))
    }

    fn table(&self, name: &str) -> Result<&Table, DbError> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Creates an ordered secondary index `name` on `table (column)`
    /// and builds it over the existing rows. Durable: the WAL record is
    /// replayed at the same point in the stream, so a recovered index
    /// is rebuilt over exactly the rows live execution saw.
    ///
    /// # Errors
    ///
    /// [`DbError::UnknownTable`]/[`DbError::UnknownColumn`] when the
    /// target does not exist, [`DbError::IndexExists`] on a duplicate
    /// name, plus the durable-layer errors of any statement.
    pub fn create_index(&mut self, name: &str, table: &str, column: &str) -> Result<(), DbError> {
        let t = self.table(table)?;
        if t.index_defs().iter().any(|d| d.name == name) {
            return Err(DbError::IndexExists(name.to_string()));
        }
        Index::resolve_col(t.schema.columns(), column)?;
        let sql = format!("CREATE INDEX \"{name}\" ON \"{table}\" (\"{column}\");");
        self.commit_effect(
            WalRecord::CreateIndex {
                name: name.to_string(),
                table: table.to_string(),
                column: column.to_string(),
            },
            sql,
        )?;
        Ok(())
    }

    /// Definitions of the secondary indexes on `table`.
    ///
    /// # Errors
    ///
    /// Fails with [`DbError::UnknownTable`] when absent.
    pub fn indexes(&self, table: &str) -> Result<Vec<IndexDef>, DbError> {
        Ok(self.table(table)?.index_defs())
    }

    /// Enables or disables the access-path planner. With the planner
    /// off every statement runs as a full scan; result sets must be
    /// identical either way (the differential tests gate on it).
    pub fn set_planner(&mut self, enabled: bool) {
        self.planner_off = !enabled;
    }

    /// True when index selection is active (the default).
    pub fn planner_enabled(&self) -> bool {
        !self.planner_off
    }

    /// The most recent EXPLAIN lines (oldest first, bounded ring).
    pub fn plan_log(&self) -> &[String] {
        &self.plan_log
    }

    /// The plan the engine would use for a statement over `table` with
    /// predicate `pred`, rendered as the machine-readable single-line
    /// JSON EXPLAIN. Does not execute anything or touch the plan log.
    ///
    /// # Errors
    ///
    /// Fails on unknown table or ill-typed predicate.
    pub fn explain(&self, table: &str, pred: &SqlExpr) -> Result<String, DbError> {
        let t = self.table(table)?;
        pred.check(&t.schema)?;
        Ok(self.plan_for(table, t, pred).explain())
    }

    /// Cross-checks every secondary index against a fresh rebuild from
    /// its table's rows; `Err` describes the first divergence. The
    /// post-recovery oracle of the crash harness: maintained and
    /// replayed indexes must always equal the from-scratch rebuild.
    ///
    /// # Errors
    ///
    /// The divergence description, when one exists.
    pub fn verify_indexes(&self) -> Result<(), String> {
        for name in self.table_names() {
            if let Some(t) = self.tables.get(&name) {
                if let Some(d) = t.index_divergence() {
                    return Err(format!("table {name}: {d}"));
                }
            }
        }
        Ok(())
    }

    /// Publishes an immutable [`DbSnapshot`] of the last **committed**
    /// state (mid-transaction, that is the `begin` snapshot): a
    /// handle-copy of the `Arc`-shared tables, cached per epoch —
    /// repeated publishes between commits return the same `Arc` — and
    /// registered for the checkpoint GC accounting.
    pub fn publish_snapshot(&mut self) -> Arc<DbSnapshot> {
        if let Some(s) = &self.mvcc.cache {
            if s.epoch() == self.mvcc.epoch {
                return Arc::clone(s);
            }
        }
        let (tables, sequences) = match &self.txn {
            Some(t) => (&t.undo_tables, &t.undo_sequences),
            None => (&self.tables, &self.sequences),
        };
        let snap = Arc::new(DbSnapshot {
            epoch: self.mvcc.epoch,
            tables: tables.clone(),
            sequences: sequences.clone(),
        });
        self.mvcc.registry.register(&snap);
        self.mvcc.cache = Some(Arc::clone(&snap));
        snap
    }

    /// An in-memory read-only handle over a published snapshot: reads
    /// observe exactly the snapshot's committed state (counted as
    /// `snapshot_reads`), every mutation is refused with
    /// [`DbError::ReadOnly`]. The snapshot is `Send + Sync`; the handle
    /// is not — build it *inside* the reader thread.
    pub fn read_only(snap: &Arc<DbSnapshot>) -> Db {
        Db {
            tables: snap.tables.clone(),
            sequences: snap.sequences.clone(),
            read_only: true,
            mvcc: MvccState {
                epoch: snap.epoch(),
                ..MvccState::default()
            },
            ..Db::default()
        }
    }

    /// True for handles made by [`Db::read_only`].
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    /// The committed-state epoch of this handle — what a published
    /// snapshot pins, bumped by every committed change.
    pub fn snapshot_epoch(&self) -> u64 {
        self.mvcc.epoch
    }

    /// Plans the access path for a statement, honoring the planner
    /// toggle.
    fn plan_for(&self, table: &str, t: &Table, pred: &SqlExpr) -> Plan {
        if self.planner_off {
            plan::scan_plan(table, t)
        } else {
            plan::plan(table, t, pred)
        }
    }

    /// Records an executed plan: engine counters plus the EXPLAIN ring.
    fn note_plan(&mut self, plan: &Plan) {
        match plan.access {
            Access::FullScan => {
                self.stats.full_scans = self.stats.full_scans.saturating_add(1);
            }
            _ => {
                self.stats.index_probes = self.stats.index_probes.saturating_add(1);
            }
        }
        if plan.fallback.is_some() {
            self.stats.planner_fallbacks = self.stats.planner_fallbacks.saturating_add(1);
        }
        if self.plan_log.len() >= PLAN_LOG_CAP {
            self.plan_log.remove(0);
        }
        self.plan_log.push(plan.explain());
    }

    /// Inserts a row given as (column, value-expression) pairs; the
    /// expressions may not reference columns (Ur/Web types them in the
    /// empty environment, `exp []`).
    ///
    /// # Errors
    ///
    /// Fails on unknown table/columns or a type-invalid row.
    pub fn insert(&mut self, table: &str, values: &[(String, SqlExpr)]) -> Result<(), DbError> {
        let schema = self.table(table)?.schema.clone();
        let empty = Schema::new(vec![])?;
        let mut row = vec![DbVal::Null; schema.len()];
        let mut provided = vec![false; schema.len()];
        for (col, e) in values {
            let idx = schema
                .index_of(col)
                .ok_or_else(|| DbError::UnknownColumn(col.clone()))?;
            row[idx] = e.eval(&empty, &[])?;
            provided[idx] = true;
        }
        for (i, p) in provided.iter().enumerate() {
            if !p && !schema.columns()[i].1.nullable() {
                return Err(DbError::TypeError(format!(
                    "column {} has no value and is not nullable",
                    schema.columns()[i].0
                )));
            }
        }
        schema.check_row(&row)?;
        let cols: Vec<String> = values.iter().map(|(c, _)| format!("\"{c}\"")).collect();
        let vals: Vec<String> = values.iter().map(|(_, e)| e.to_sql()).collect();
        let sql = format!(
            "INSERT INTO \"{table}\" ({}) VALUES ({});",
            cols.join(", "),
            vals.join(", ")
        );
        self.commit_effect(
            WalRecord::Insert {
                table: table.to_string(),
                row,
            },
            sql,
        )?;
        Ok(())
    }

    /// Deletes all rows satisfying `pred`; returns the number removed.
    ///
    /// # Errors
    ///
    /// Fails on unknown table or ill-typed predicate.
    pub fn delete(&mut self, table: &str, pred: &SqlExpr) -> Result<usize, DbError> {
        if self.read_only {
            return Err(DbError::ReadOnly);
        }
        let t = self.table(table)?;
        pred.check(&t.schema)?;
        let plan = self.plan_for(table, t, pred);
        let removed: Vec<u64> = matching_positions(t, pred, &plan.access)?
            .into_iter()
            .map(|i| i as u64)
            .collect();
        let n = removed.len();
        self.note_plan(&plan);
        let sql = format!("DELETE FROM \"{table}\" WHERE {};", pred.to_sql());
        self.commit_effect(
            WalRecord::Delete {
                table: table.to_string(),
                removed,
            },
            sql,
        )?;
        Ok(n)
    }

    /// Updates the given columns on all rows satisfying `pred`; returns
    /// the number of rows changed. Value expressions may reference the
    /// row's current columns.
    ///
    /// # Errors
    ///
    /// Fails on unknown table/columns or ill-typed expressions.
    pub fn update(
        &mut self,
        table: &str,
        changes: &[(String, SqlExpr)],
        pred: &SqlExpr,
    ) -> Result<usize, DbError> {
        if self.read_only {
            return Err(DbError::ReadOnly);
        }
        let t = self.table(table)?;
        let schema = t.schema.clone();
        pred.check(&schema)?;
        let mut idxs = Vec::new();
        for (col, e) in changes {
            let idx = schema
                .index_of(col)
                .ok_or_else(|| DbError::UnknownColumn(col.clone()))?;
            e.check(&schema)?;
            idxs.push(idx);
        }
        let plan = self.plan_for(table, t, pred);
        let mut mods: Vec<(u64, Vec<DbVal>)> = Vec::new();
        for i in matching_positions(t, pred, &plan.access)? {
            let row = &t.rows[i];
            let mut new_row = row.to_vec();
            for ((_, e), idx) in changes.iter().zip(&idxs) {
                new_row[*idx] = e.eval(&schema, row)?;
            }
            schema.check_row(&new_row)?;
            mods.push((i as u64, new_row));
        }
        let changed = mods.len();
        self.note_plan(&plan);
        let sets: Vec<String> = changes
            .iter()
            .map(|(c, e)| format!("\"{c}\" = {}", e.to_sql()))
            .collect();
        let sql = format!(
            "UPDATE \"{table}\" SET {} WHERE {};",
            sets.join(", "),
            pred.to_sql()
        );
        self.commit_effect(
            WalRecord::Update {
                table: table.to_string(),
                changes: mods,
            },
            sql,
        )?;
        Ok(changed)
    }

    /// Returns (a copy of) all rows satisfying `pred`, in insertion order.
    ///
    /// # Errors
    ///
    /// Fails on unknown table or ill-typed predicate.
    pub fn select(&mut self, table: &str, pred: &SqlExpr) -> Result<Vec<Vec<DbVal>>, DbError> {
        let t = self.table(table)?;
        pred.check(&t.schema)?;
        let plan = self.plan_for(table, t, pred);
        let out: Vec<Vec<DbVal>> = matching_positions(t, pred, &plan.access)?
            .into_iter()
            .map(|i| t.rows[i].to_vec())
            .collect();
        self.note_plan(&plan);
        if self.read_only {
            self.stats.snapshot_reads = self.stats.snapshot_reads.saturating_add(1);
        }
        self.log.push(format!(
            "SELECT * FROM \"{table}\" WHERE {};",
            pred.to_sql()
        ));
        Ok(out)
    }

    /// Returns rows satisfying `pred`, ordered ascending by `order_col`,
    /// skipping `offset` rows and returning at most `limit`.
    ///
    /// # Errors
    ///
    /// Fails on unknown table/column, ill-typed predicate, or an
    /// unorderable column.
    pub fn select_ordered(
        &mut self,
        table: &str,
        pred: &SqlExpr,
        order_col: &str,
        offset: usize,
        limit: usize,
    ) -> Result<Vec<Vec<DbVal>>, DbError> {
        let t = self.table(table)?;
        let schema = t.schema.clone();
        pred.check(&schema)?;
        let idx = schema
            .index_of(order_col)
            .ok_or_else(|| DbError::UnknownColumn(order_col.to_string()))?;
        let plan = self.plan_for(table, t, pred);
        let mut matching: Vec<Vec<DbVal>> = matching_positions(t, pred, &plan.access)?
            .into_iter()
            .map(|i| t.rows[i].to_vec())
            .collect();
        self.note_plan(&plan);
        if self.read_only {
            self.stats.snapshot_reads = self.stats.snapshot_reads.saturating_add(1);
        }
        // Stable sort; NULLs last, as in SQL's default NULLS LAST.
        matching.sort_by(|a, b| match a[idx].sql_cmp(&b[idx]) {
            Some(o) => o,
            None => match (&a[idx], &b[idx]) {
                (DbVal::Null, DbVal::Null) => std::cmp::Ordering::Equal,
                (DbVal::Null, _) => std::cmp::Ordering::Greater,
                (_, DbVal::Null) => std::cmp::Ordering::Less,
                _ => std::cmp::Ordering::Equal,
            },
        });
        self.log.push(format!(
            "SELECT * FROM \"{table}\" WHERE {} ORDER BY \"{order_col}\" \
             LIMIT {limit} OFFSET {offset};",
            pred.to_sql()
        ));
        Ok(matching.into_iter().skip(offset).take(limit).collect())
    }

    /// Number of rows in a table.
    ///
    /// # Errors
    ///
    /// Fails on unknown table.
    pub fn row_count(&self, table: &str) -> Result<usize, DbError> {
        Ok(self.table(table)?.rows.len())
    }

    /// The SQL statements issued so far.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// Clears the query log.
    pub fn clear_log(&mut self) {
        self.log.clear();
    }

    /// Names of all tables (sorted, for deterministic output).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }
}

/// Positions (ascending) of the rows satisfying the full predicate,
/// visiting only the plan's candidates. A probe yields a candidate
/// *superset*: the complete predicate is re-evaluated on every
/// candidate row, never skipped, so planner-on and planner-off return
/// identical result sets (and surface identical row-level evaluation
/// errors for the rows a probe visits). A plan whose index has
/// vanished degrades to the scan, not to an empty result.
fn matching_positions(t: &Table, pred: &SqlExpr, access: &Access) -> Result<Vec<usize>, DbError> {
    let schema = &t.schema;
    let scan = |out: &mut Vec<usize>| -> Result<(), DbError> {
        for (i, row) in t.rows.iter().enumerate() {
            if matches!(pred.eval(schema, row)?, DbVal::Bool(true)) {
                out.push(i);
            }
        }
        Ok(())
    };
    let mut out = Vec::new();
    match access {
        Access::FullScan => scan(&mut out)?,
        Access::IndexEq { column, key, .. } => match t.index_on(column) {
            Some(idx) => {
                for &pos in idx.probe_eq(key) {
                    if matches!(pred.eval(schema, &t.rows[pos])?, DbVal::Bool(true)) {
                        out.push(pos);
                    }
                }
            }
            None => scan(&mut out)?,
        },
        Access::IndexRange { column, lo, hi, .. } => {
            let like = lo.as_ref().or(hi.as_ref()).map(|(v, _)| v);
            match (t.index_on(column), like) {
                (Some(idx), Some(like)) => {
                    let lo_b = lo.as_ref().map(|(v, incl)| (v, *incl));
                    let hi_b = hi.as_ref().map(|(v, incl)| (v, *incl));
                    for pos in idx.probe_range(lo_b, hi_b, like) {
                        if matches!(pred.eval(schema, &t.rows[pos])?, DbVal::Bool(true)) {
                            out.push(pos);
                        }
                    }
                }
                _ => scan(&mut out)?,
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColTy;

    fn two_col_db() -> Db {
        let mut db = Db::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ("A".into(), ColTy::Int),
                ("B".into(), ColTy::Str),
            ])
            .unwrap(),
        )
        .unwrap();
        db
    }

    fn ins(db: &mut Db, a: i64, b: &str) {
        db.insert(
            "t",
            &[
                ("A".into(), SqlExpr::lit(DbVal::Int(a))),
                ("B".into(), SqlExpr::lit(DbVal::Str(b.into()))),
            ],
        )
        .unwrap();
    }

    #[test]
    fn insert_and_select_roundtrip() {
        let mut db = two_col_db();
        ins(&mut db, 1, "x");
        ins(&mut db, 2, "y");
        let rows = db
            .select("t", &SqlExpr::lit(DbVal::Bool(true)))
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], vec![DbVal::Int(1), DbVal::Str("x".into())]);
    }

    #[test]
    fn select_with_predicate() {
        let mut db = two_col_db();
        ins(&mut db, 1, "x");
        ins(&mut db, 2, "y");
        let pred = SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(2)));
        let rows = db.select("t", &pred).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], DbVal::Str("y".into()));
    }

    #[test]
    fn delete_removes_matching() {
        let mut db = two_col_db();
        ins(&mut db, 1, "x");
        ins(&mut db, 2, "y");
        ins(&mut db, 3, "z");
        let pred = SqlExpr::Lt(
            Box::new(SqlExpr::col("A")),
            Box::new(SqlExpr::lit(DbVal::Int(3))),
        );
        assert_eq!(db.delete("t", &pred).unwrap(), 2);
        assert_eq!(db.row_count("t").unwrap(), 1);
    }

    #[test]
    fn update_changes_matching_rows() {
        let mut db = two_col_db();
        ins(&mut db, 1, "x");
        ins(&mut db, 2, "y");
        let pred = SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(1)));
        let changed = db
            .update(
                "t",
                &[(
                    "B".into(),
                    SqlExpr::lit(DbVal::Str("updated".into())),
                )],
                &pred,
            )
            .unwrap();
        assert_eq!(changed, 1);
        let rows = db.select("t", &pred).unwrap();
        assert_eq!(rows[0][1], DbVal::Str("updated".into()));
    }

    #[test]
    fn update_sees_old_row_values() {
        // UPDATE t SET A = A + 1 — expressions reference the pre-update row.
        let mut db = two_col_db();
        ins(&mut db, 10, "x");
        let bump = SqlExpr::Add(
            Box::new(SqlExpr::col("A")),
            Box::new(SqlExpr::lit(DbVal::Int(1))),
        );
        db.update("t", &[("A".into(), bump)], &SqlExpr::lit(DbVal::Bool(true)))
            .unwrap();
        let rows = db
            .select("t", &SqlExpr::lit(DbVal::Bool(true)))
            .unwrap();
        assert_eq!(rows[0][0], DbVal::Int(11));
    }

    #[test]
    fn insert_missing_non_nullable_fails() {
        let mut db = two_col_db();
        let err = db
            .insert("t", &[("A".into(), SqlExpr::lit(DbVal::Int(1)))])
            .unwrap_err();
        assert!(matches!(err, DbError::TypeError(_)));
    }

    #[test]
    fn insert_wrong_type_fails() {
        let mut db = two_col_db();
        let err = db
            .insert(
                "t",
                &[
                    ("A".into(), SqlExpr::lit(DbVal::Str("no".into()))),
                    ("B".into(), SqlExpr::lit(DbVal::Str("x".into()))),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::TypeError(_)));
    }

    #[test]
    fn nullable_columns_accept_null() {
        let mut db = Db::new();
        db.create_table(
            "v",
            Schema::new(vec![
                ("K".into(), ColTy::Int),
                ("D".into(), ColTy::Nullable(Box::new(ColTy::Str))),
            ])
            .unwrap(),
        )
        .unwrap();
        db.insert("v", &[("K".into(), SqlExpr::lit(DbVal::Int(1)))])
            .unwrap();
        let rows = db
            .select("v", &SqlExpr::is_null(SqlExpr::col("D")))
            .unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn sequences() {
        let mut db = Db::new();
        db.create_sequence("s");
        assert_eq!(db.nextval("s").unwrap(), 1);
        assert_eq!(db.nextval("s").unwrap(), 2);
        assert!(db.nextval("missing").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = two_col_db();
        let err = db
            .create_table("t", Schema::new(vec![]).unwrap())
            .unwrap_err();
        assert!(matches!(err, DbError::TableExists(_)));
    }

    #[test]
    fn query_log_records_escaped_sql() {
        let mut db = two_col_db();
        ins(&mut db, 1, "Robert'); DROP TABLE Students;--");
        let log = db.log().join("\n");
        assert!(log.contains("INSERT INTO \"t\""));
        // The malicious quote is doubled in the log.
        assert!(log.contains("Robert''); DROP TABLE Students;--"));
    }

    #[test]
    fn table_names_sorted() {
        let mut db = Db::new();
        db.create_table("zz", Schema::new(vec![]).unwrap()).unwrap();
        db.create_table("aa", Schema::new(vec![]).unwrap()).unwrap();
        assert_eq!(db.table_names(), vec!["aa".to_string(), "zz".to_string()]);
    }

    #[test]
    fn in_memory_txn_commit_keeps_and_rollback_restores() {
        let mut db = two_col_db();
        ins(&mut db, 1, "kept");
        db.begin().unwrap();
        ins(&mut db, 2, "committed");
        db.commit().unwrap();
        assert_eq!(db.row_count("t").unwrap(), 2);

        db.begin().unwrap();
        ins(&mut db, 3, "doomed");
        db.create_sequence("s");
        let log_len = db.log().len();
        db.rollback().unwrap();
        assert_eq!(db.row_count("t").unwrap(), 2);
        assert!(db.nextval("s").is_err(), "sequence rolled back");
        assert!(db.log().len() < log_len, "log rolled back too");
        assert_eq!(db.stats().txn_commits, 1);
        assert_eq!(db.stats().txn_rollbacks, 1);
    }

    #[test]
    fn txn_misuse_yields_stable_errors() {
        let mut db = two_col_db();
        assert_eq!(db.commit().unwrap_err(), DbError::NoTxn);
        assert_eq!(db.rollback().unwrap_err(), DbError::NoTxn);
        db.begin().unwrap();
        assert_eq!(db.begin().unwrap_err(), DbError::TxnActive);
        db.commit().unwrap();
        assert!(!db.in_txn());
        assert!(!db.is_durable());
    }

    #[test]
    fn txn_reads_its_own_writes() {
        let mut db = two_col_db();
        db.begin().unwrap();
        ins(&mut db, 7, "mine");
        let rows = db
            .select("t", &SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(7))))
            .unwrap();
        assert_eq!(rows.len(), 1);
        db.commit().unwrap();
    }

    #[test]
    fn dump_is_deterministic_and_sorted() {
        let mut db = Db::new();
        db.create_table("zz", Schema::new(vec![("A".into(), ColTy::Int)]).unwrap())
            .unwrap();
        db.create_table("aa", Schema::new(vec![("B".into(), ColTy::Str)]).unwrap())
            .unwrap();
        db.create_sequence("s2");
        db.create_sequence("s1");
        db.insert("zz", &[("A".into(), SqlExpr::lit(DbVal::Int(1)))])
            .unwrap();
        let d = db.dump();
        let aa = d.find("table aa").unwrap();
        let zz = d.find("table zz").unwrap();
        assert!(aa < zz, "tables sorted in {d}");
        let s1 = d.find("sequence s1").unwrap();
        let s2 = d.find("sequence s2").unwrap();
        assert!(s1 < s2, "sequences sorted in {d}");
        assert_eq!(d, db.clone().dump(), "clone dumps identically");
    }

    #[test]
    fn checkpoint_and_persist_rebase_are_noops_in_memory() {
        let mut db = two_col_db();
        db.checkpoint().unwrap();
        db.persist_rebase();
        assert_eq!(db.stats().snapshots_written, 0);
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use crate::value::ColTy;

    fn indexed_db(n: i64) -> Db {
        let mut db = Db::new();
        db.create_table(
            "t",
            Schema::new(vec![("A".into(), ColTy::Int), ("B".into(), ColTy::Str)]).unwrap(),
        )
        .unwrap();
        for i in 0..n {
            db.insert(
                "t",
                &[
                    ("A".into(), SqlExpr::lit(DbVal::Int(i % 10))),
                    ("B".into(), SqlExpr::lit(DbVal::Str(format!("s{i}")))),
                ],
            )
            .unwrap();
        }
        db.create_index("t_a", "t", "A").unwrap();
        db
    }

    fn eq_pred(v: i64) -> SqlExpr {
        SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(v)))
    }

    #[test]
    fn create_index_validates_and_rejects_duplicates() {
        let mut db = indexed_db(5);
        assert!(matches!(
            db.create_index("t_a", "t", "A").unwrap_err(),
            DbError::IndexExists(_)
        ));
        assert!(matches!(
            db.create_index("i2", "t", "Z").unwrap_err(),
            DbError::UnknownColumn(_)
        ));
        assert!(matches!(
            db.create_index("i2", "missing", "A").unwrap_err(),
            DbError::UnknownTable(_)
        ));
        assert_eq!(db.indexes("t").unwrap().len(), 1);
        assert!(db.log().iter().any(|l| l.contains("CREATE INDEX \"t_a\"")));
    }

    #[test]
    fn probe_and_scan_agree_and_are_counted() {
        let mut db = indexed_db(50);
        let probed = db.select("t", &eq_pred(3)).unwrap();
        assert_eq!(db.stats().index_probes, 1);
        db.set_planner(false);
        assert!(!db.planner_enabled());
        let scanned = db.select("t", &eq_pred(3)).unwrap();
        assert_eq!(probed, scanned);
        assert_eq!(db.stats().full_scans, 1);
        db.set_planner(true);
        // Unprobeable predicate over an indexed table → fallback.
        db.select("t", &SqlExpr::eq(SqlExpr::col("B"), SqlExpr::lit(DbVal::Str("s1".into()))))
            .unwrap();
        assert_eq!(db.stats().planner_fallbacks, 1);
        assert_eq!(db.stats().full_scans, 2);
    }

    #[test]
    fn mutations_through_probes_match_scans() {
        let mut probed = indexed_db(40);
        let mut scanned = indexed_db(40);
        scanned.set_planner(false);
        for db in [&mut probed, &mut scanned] {
            assert_eq!(db.delete("t", &eq_pred(4)).unwrap(), 4);
            assert_eq!(
                db.update(
                    "t",
                    &[("A".into(), SqlExpr::lit(DbVal::Int(4)))],
                    &eq_pred(7),
                )
                .unwrap(),
                4
            );
        }
        assert_eq!(probed.dump(), scanned.dump());
        probed.verify_indexes().unwrap();
        scanned.verify_indexes().unwrap();
    }

    #[test]
    fn explain_and_plan_log_surface_plans() {
        let mut db = indexed_db(30);
        let e = db.explain("t", &eq_pred(1)).unwrap();
        assert!(e.contains("\"access\":\"index_eq\""), "{e}");
        assert!(db.plan_log().is_empty(), "explain alone does not log");
        db.select("t", &eq_pred(1)).unwrap();
        assert_eq!(db.plan_log().len(), 1);
        for _ in 0..20 {
            db.select("t", &eq_pred(2)).unwrap();
        }
        assert!(db.plan_log().len() <= PLAN_LOG_CAP, "ring is bounded");
    }

    #[test]
    fn snapshot_reads_are_isolated_from_later_writes() {
        let mut db = indexed_db(20);
        let snap = db.publish_snapshot();
        let again = db.publish_snapshot();
        assert!(Arc::ptr_eq(&snap, &again), "same epoch, same snapshot");
        db.delete("t", &SqlExpr::lit(DbVal::Bool(true))).unwrap();
        assert_ne!(
            db.publish_snapshot().epoch(),
            snap.epoch(),
            "a committed write moves the epoch"
        );

        let mut reader = Db::read_only(&snap);
        assert!(reader.is_read_only());
        let rows = reader.select("t", &eq_pred(3)).unwrap();
        assert_eq!(rows.len(), 2, "snapshot still sees the deleted rows");
        assert_eq!(reader.stats().snapshot_reads, 1);
        assert!(matches!(
            reader
                .insert(
                    "t",
                    &[
                        ("A".into(), SqlExpr::lit(DbVal::Int(1))),
                        ("B".into(), SqlExpr::lit(DbVal::Str("b".into()))),
                    ],
                )
                .unwrap_err(),
            DbError::ReadOnly
        ));
        assert!(matches!(reader.begin().unwrap_err(), DbError::ReadOnly));
        assert!(matches!(
            reader.delete("t", &eq_pred(1)).unwrap_err(),
            DbError::ReadOnly
        ));
        reader.verify_indexes().unwrap();
    }

    #[test]
    fn snapshot_mid_txn_sees_the_begin_state() {
        let mut db = indexed_db(10);
        let before = db.publish_snapshot();
        db.begin().unwrap();
        db.delete("t", &SqlExpr::lit(DbVal::Bool(true))).unwrap();
        let during = db.publish_snapshot();
        assert_eq!(during.epoch(), before.epoch());
        assert_eq!(during.row_count("t"), Some(10), "uncommitted delete invisible");
        db.commit().unwrap();
        assert_eq!(db.publish_snapshot().row_count("t"), Some(0));
    }

    #[test]
    fn gc_counts_versions_once_snapshots_die() {
        let mut db = indexed_db(10);
        let snap = db.publish_snapshot();
        db.update(
            "t",
            &[("B".into(), SqlExpr::lit(DbVal::Str("x".into())))],
            &SqlExpr::lit(DbVal::Bool(true)),
        )
        .unwrap();
        db.checkpoint().unwrap();
        assert_eq!(
            db.stats().versions_gcd,
            0,
            "a live snapshot pins the superseded versions"
        );
        drop(snap);
        db.checkpoint().unwrap();
        assert_eq!(db.stats().versions_gcd, 10);
    }
}

#[cfg(test)]
mod ordered_tests {
    use super::*;
    use crate::value::ColTy;

    fn db_with_rows() -> Db {
        let mut db = Db::new();
        db.create_table(
            "t",
            Schema::new(vec![
                ("A".into(), ColTy::Int),
                ("B".into(), ColTy::Str),
            ])
            .unwrap(),
        )
        .unwrap();
        for (a, b) in [(3, "c"), (1, "a"), (2, "b"), (5, "e"), (4, "d")] {
            db.insert(
                "t",
                &[
                    ("A".into(), SqlExpr::lit(DbVal::Int(a))),
                    ("B".into(), SqlExpr::lit(DbVal::Str(b.into()))),
                ],
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn ordered_select_sorts_limits_offsets() {
        let mut db = db_with_rows();
        let rows = db
            .select_ordered("t", &SqlExpr::lit(DbVal::Bool(true)), "A", 1, 2)
            .unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], DbVal::Int(2));
        assert_eq!(rows[1][0], DbVal::Int(3));
    }

    #[test]
    fn ordered_select_respects_predicate() {
        let mut db = db_with_rows();
        let pred = SqlExpr::Lt(
            Box::new(SqlExpr::col("A")),
            Box::new(SqlExpr::lit(DbVal::Int(4))),
        );
        let rows = db.select_ordered("t", &pred, "A", 0, 10).unwrap();
        let vals: Vec<&DbVal> = rows.iter().map(|r| &r[0]).collect();
        assert_eq!(vals, vec![&DbVal::Int(1), &DbVal::Int(2), &DbVal::Int(3)]);
    }

    #[test]
    fn ordered_select_unknown_column_fails() {
        let mut db = db_with_rows();
        assert!(db
            .select_ordered("t", &SqlExpr::lit(DbVal::Bool(true)), "Z", 0, 1)
            .is_err());
    }

    #[test]
    fn ordered_select_logs_order_by() {
        let mut db = db_with_rows();
        db.select_ordered("t", &SqlExpr::lit(DbVal::Bool(true)), "B", 0, 3)
            .unwrap();
        assert!(db.log().last().unwrap().contains("ORDER BY \"B\""));
    }

    #[test]
    fn nulls_sort_last() {
        let mut db = Db::new();
        db.create_table(
            "n",
            Schema::new(vec![(
                "A".into(),
                ColTy::Nullable(Box::new(ColTy::Int)),
            )])
            .unwrap(),
        )
        .unwrap();
        for v in [DbVal::Null, DbVal::Int(2), DbVal::Int(1)] {
            db.insert("n", &[("A".into(), SqlExpr::lit(v))]).unwrap();
        }
        let rows = db
            .select_ordered("n", &SqlExpr::lit(DbVal::Bool(true)), "A", 0, 10)
            .unwrap();
        assert_eq!(rows[0][0], DbVal::Int(1));
        assert_eq!(rows[2][0], DbVal::Null);
    }
}
