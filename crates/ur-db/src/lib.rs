// Library code must be panic-free: unwrap/expect/panic are denied
// outside cfg(test) (see docs/ROBUSTNESS.md).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! # ur-db — in-memory relational engine substrate
//!
//! The paper's case studies (§2.2, §6) generate SQL commands against a
//! database server; Ur/Web's typed `table`/`exp` embedding guarantees the
//! generated SQL is schema-correct and injection-free. This crate is the
//! substitute substrate: an in-memory engine executing the same command
//! ASTs, with a SQL-text log whose statements are escaped exactly as a
//! real deployment's wire statements would be (see DESIGN.md §3).
//!
//! [`Db::open`] backs the same API with a crash-safe durability layer:
//! a CRC-tagged, fsync'd write-ahead log ([`wal`]) plus snapshot
//! compaction ([`snapshot`]), explicit transactions ([`Db::begin`] /
//! [`Db::commit`] / [`Db::rollback`]), and recovery that replays
//! exactly the committed prefix ([`recover`]) — torn or uncommitted WAL
//! tails are truncated at the last committed transaction boundary. See
//! `docs/ROBUSTNESS.md` §7.
//!
//! ## Example
//!
//! ```
//! use ur_db::{ColTy, Db, DbVal, Schema, SqlExpr};
//!
//! let mut db = Db::new();
//! db.create_table(
//!     "t",
//!     Schema::new(vec![("A".into(), ColTy::Int), ("B".into(), ColTy::Str)])?,
//! )?;
//! db.insert(
//!     "t",
//!     &[
//!         ("A".into(), SqlExpr::lit(DbVal::Int(1))),
//!         ("B".into(), SqlExpr::lit(DbVal::Str("hello".into()))),
//!     ],
//! )?;
//! let rows = db.select("t", &SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(1))))?;
//! assert_eq!(rows.len(), 1);
//! # Ok::<(), ur_db::DbError>(())
//! ```

pub mod db;
pub mod error;
pub mod expr;
pub mod index;
pub mod mvcc;
pub mod plan;
pub mod recover;
pub mod retry;
pub mod snapshot;
pub mod table;
pub mod txn;
pub mod value;
pub mod wal;

pub use db::Db;
pub use error::DbError;
pub use expr::SqlExpr;
pub use index::{IndexDef, Row};
pub use mvcc::DbSnapshot;
pub use plan::{Access, Plan};
pub use retry::RetryConfig;
pub use snapshot::SNAPSHOT_FILE;
pub use table::{Schema, Table};
pub use txn::{DbStats, DurabilityConfig};
pub use value::{ColTy, DbVal};
pub use wal::{WalRecord, WAL_FILE};
