// Library code must be panic-free: unwrap/expect/panic are denied
// outside cfg(test) (see docs/ROBUSTNESS.md).
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used, clippy::panic))]

//! # ur-db — in-memory relational engine substrate
//!
//! The paper's case studies (§2.2, §6) generate SQL commands against a
//! database server; Ur/Web's typed `table`/`exp` embedding guarantees the
//! generated SQL is schema-correct and injection-free. This crate is the
//! substitute substrate: an in-memory engine executing the same command
//! ASTs, with a SQL-text log whose statements are escaped exactly as a
//! real deployment's wire statements would be (see DESIGN.md §3).
//!
//! ## Example
//!
//! ```
//! use ur_db::{ColTy, Db, DbVal, Schema, SqlExpr};
//!
//! let mut db = Db::new();
//! db.create_table(
//!     "t",
//!     Schema::new(vec![("A".into(), ColTy::Int), ("B".into(), ColTy::Str)])?,
//! )?;
//! db.insert(
//!     "t",
//!     &[
//!         ("A".into(), SqlExpr::lit(DbVal::Int(1))),
//!         ("B".into(), SqlExpr::lit(DbVal::Str("hello".into()))),
//!     ],
//! )?;
//! let rows = db.select("t", &SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(1))))?;
//! assert_eq!(rows.len(), 1);
//! # Ok::<(), ur_db::DbError>(())
//! ```

pub mod db;
pub mod error;
pub mod expr;
pub mod table;
pub mod value;

pub use db::Db;
pub use error::DbError;
pub use expr::SqlExpr;
pub use table::{Schema, Table};
pub use value::{ColTy, DbVal};
