//! MVCC snapshot reads: immutable, `Send + Sync` database snapshots at
//! a committed epoch, concurrent with the single writer.
//!
//! The engine's rows are `Arc`-shared versions (`crate::index::Row`)
//! and its index maps are `Arc`-shared with copy-on-write maintenance,
//! so publishing a snapshot ([`crate::Db::publish_snapshot`]) is a
//! handle-copy of the table map — no row data moves. A snapshot is
//! pinned to the **epoch** of the last committed transaction: the
//! writer's later updates replace row slots with *new* versions and
//! never mutate the ones a snapshot holds, which is the whole
//! stale/torn-read argument — a reader observes exactly the committed
//! state at its epoch, however the writer races ahead.
//!
//! Readers run in their own threads: a [`DbSnapshot`] crosses the
//! thread boundary (it is `Send + Sync`; the compile-time assertion
//! below enforces it), and [`crate::Db::read_only`] wraps it back into
//! a `Db` handle whose mutating operations are refused with
//! [`crate::DbError::ReadOnly`]. Reads through such a handle are
//! counted as `snapshot_reads`.
//!
//! **Garbage collection** is accounting, not tracing: superseded row
//! versions are freed by the last `Arc` drop the moment no snapshot
//! pins them, and the engine *counts* them at checkpoint time — each
//! table tracks how many versions its updates/deletes superseded, and
//! a checkpoint folds those into the `versions_gcd` counter once the
//! registry of published snapshots holds no live readers (dead `Weak`
//! handles are pruned on every checkpoint). Tying the fold to
//! checkpoints keeps the counter meaningful: it advances exactly when
//! the durable layer compacts, the same cadence the WAL itself is
//! garbage-collected on.

use crate::table::Table;
use std::collections::HashMap;
use std::sync::{Arc, Weak};

/// An immutable snapshot of the full database state at one committed
/// epoch. Cheap to clone (`Arc` inside), safe to move across threads.
#[derive(Debug)]
pub struct DbSnapshot {
    pub(crate) epoch: u64,
    pub(crate) tables: HashMap<String, Table>,
    pub(crate) sequences: HashMap<String, i64>,
}

impl DbSnapshot {
    /// The committed epoch this snapshot observes.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Names of all tables in the snapshot (sorted).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().cloned().collect();
        names.sort();
        names
    }

    /// Row count of a table, `None` when absent.
    pub fn row_count(&self, table: &str) -> Option<usize> {
        self.tables.get(table).map(|t| t.rows.len())
    }
}

// A snapshot must be shippable to reader threads; if a non-Send/Sync
// type ever sneaks into `Table`, this fails to compile rather than at
// runtime in the serving layer.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<DbSnapshot>()
};

/// The writer-side ledger of published snapshots and not-yet-counted
/// dead versions.
#[derive(Clone, Debug, Default)]
pub(crate) struct SnapRegistry {
    /// Weak handles to every published snapshot; pruned at checkpoint.
    published: Vec<Weak<DbSnapshot>>,
    /// Superseded row versions not yet folded into `versions_gcd`
    /// (they may still be pinned by a live snapshot).
    pending_dead: u64,
}

impl SnapRegistry {
    pub fn register(&mut self, snap: &Arc<DbSnapshot>) {
        self.published.push(Arc::downgrade(snap));
    }

    /// Adds newly superseded versions to the pending pool.
    pub fn note_dead(&mut self, n: u64) {
        self.pending_dead = self.pending_dead.saturating_add(n);
    }

    /// Prunes dead snapshot handles; when no published snapshot is
    /// still alive, every pending version is reclaimable — returns the
    /// count to fold into `versions_gcd` (0 otherwise).
    pub fn collect(&mut self) -> u64 {
        self.published.retain(|w| w.strong_count() > 0);
        if self.published.is_empty() {
            std::mem::take(&mut self.pending_dead)
        } else {
            0
        }
    }

    /// Published snapshots still alive (after an explicit prune).
    #[cfg(test)]
    pub fn live(&mut self) -> usize {
        self.published.retain(|w| w.strong_count() > 0);
        self.published.len()
    }
}

/// Per-handle MVCC bookkeeping carried by `Db`.
#[derive(Clone, Debug, Default)]
pub(crate) struct MvccState {
    /// Monotone count of committed state changes through this handle —
    /// the epoch a published snapshot is pinned to.
    pub epoch: u64,
    /// The snapshot published for the current epoch, if any — repeated
    /// publishes between commits are handle copies.
    pub cache: Option<Arc<DbSnapshot>>,
    pub registry: SnapRegistry,
}

impl MvccState {
    /// A committed state change: invalidate the epoch cache.
    pub fn bump(&mut self) {
        self.epoch += 1;
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_folds_only_when_no_reader_is_live() {
        let mut reg = SnapRegistry::default();
        let snap = Arc::new(DbSnapshot {
            epoch: 1,
            tables: HashMap::new(),
            sequences: HashMap::new(),
        });
        reg.register(&snap);
        reg.note_dead(5);
        assert_eq!(reg.collect(), 0, "a live snapshot pins the versions");
        assert_eq!(reg.live(), 1);
        drop(snap);
        assert_eq!(reg.collect(), 5, "all pending fold once readers are gone");
        assert_eq!(reg.collect(), 0, "folded once");
        reg.note_dead(2);
        assert_eq!(reg.collect(), 2);
    }

    #[test]
    fn bump_invalidates_cache() {
        let mut m = MvccState {
            cache: Some(Arc::new(DbSnapshot {
                epoch: 0,
                tables: HashMap::new(),
                sequences: HashMap::new(),
            })),
            ..MvccState::default()
        };
        m.bump();
        assert_eq!(m.epoch, 1);
        assert!(m.cache.is_none());
    }
}
