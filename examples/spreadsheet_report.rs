//! A sales report built from the SQL-backed spreadsheet case study:
//! stored columns persist in the database, computed columns and
//! aggregates are evaluated per render.
//!
//! ```sh
//! cargo run -p ur --example spreadsheet_report
//! ```

use ur::studies::study;
use ur::Session;

fn main() -> Result<(), ur::SessionError> {
    let mut sess = Session::new()?;
    for dep in ["folders", "spreadsheet", "spreadsheet_sql"] {
        sess.run(study(dep).implementation())?;
    }

    sess.run(
        "val report = sqlSheetSame \"Q3 Sales\" \"sales\"\n\
           {Region = {Label = \"Region\", Show = fn (s : string) => s, SqlType = sqlString},\n\
            Units = {Label = \"Units\", Show = showInt, SqlType = sqlInt},\n\
            Price = {Label = \"Unit price\", Show = showInt, SqlType = sqlInt}}\n\
           {Revenue = {Label = \"Revenue\", Fn = fn x => x.Units * x.Price, Show = showInt}}\n\
           {TotalUnits = {Label = \"Total units\", Init = 0,\n\
                          Step = fn x n => x.Units + n, Show = showInt},\n\
            Rows = {Label = \"Rows\", Init = 0, Step = fn x n => n + 1, Show = showInt}}",
    )?;

    sess.run(
        "val i1 = report.Insert {Region = \"north\", Units = 10, Price = 7}\n\
         val i2 = report.Insert {Region = \"south\", Units = 4, Price = 12}\n\
         val i3 = report.Insert {Region = \"west\", Units = 9, Price = 5}\n\
         val html = report.Render ()\n\
         val totals = report.Totals ()",
    )?;

    println!("rendered sheet:\n{}\n", sess.get_str("html")?);
    println!("summary row: {}", sess.get_str("totals")?);
    println!("\ninference statistics: {}", sess.stats());
    Ok(())
}
