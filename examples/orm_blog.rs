//! A small blog backend built from the ORM case study: the metaprogram
//! generates all the SQL, and the generated statements are shown at the
//! end (every one injection-escaped by construction).
//!
//! ```sh
//! cargo run -p ur --example orm_blog
//! ```

use ur::studies::study;
use ur::Session;

fn main() -> Result<(), ur::SessionError> {
    let mut sess = Session::new()?;
    sess.run(study("selector").implementation())?;
    sess.run(study("orm").implementation())?;

    // Instantiate the ORM for a posts table — this is all the
    // application-specific code a "novice" writes.
    sess.run(
        "val posts = ormTable \"posts\"\n\
           {Title = {SqlType = sqlString, Show = fn (s : string) => s},\n\
            Author = {SqlType = sqlString, Show = fn (s : string) => s},\n\
            Score = {SqlType = sqlInt, Show = showInt}}",
    )?;

    sess.run(
        "val u1 = posts.Add {Title = \"Typed rows\", Author = \"adam\", Score = 42}\n\
         val u2 = posts.Add {Title = \"Records & names\", Author = \"mia\", Score = 17}\n\
         val u3 = posts.Add {Title = \"'; DROP TABLE posts; --\", Author = \"mallory\", Score = 0}\n\
         val n = posts.Count ()",
    )?;
    println!("posts in table: {}", sess.get_int("n")?);

    // Delete by record match (the §2.3 selector behind the scenes).
    sess.run(
        "val gone = posts.Delete {Title = \"'; DROP TABLE posts; --\", \
                                  Author = \"mallory\", Score = 0}\n\
         val n2 = posts.Count ()",
    )?;
    println!(
        "deleted {} malicious post(s); {} remain",
        sess.get_int("gone")?,
        sess.get_int("n2")?
    );

    sess.run("val listing = posts.List ()\nval m = lengthList listing")?;
    println!("listing has {} rows", sess.get_int("m")?);

    println!("\ngenerated SQL (note the escaped quote in the attack row):");
    for stmt in sess.db().log() {
        println!("  {stmt}");
    }
    Ok(())
}
