//! A tiny wiki with full page history, built on the versioned-database
//! case study: every edit stores NULL for unchanged columns, and any past
//! revision can be reconstructed.
//!
//! ```sh
//! cargo run -p ur --example versioned_wiki
//! ```

use ur::studies::study;
use ur::Session;

fn main() -> Result<(), ur::SessionError> {
    let mut sess = Session::new()?;
    for dep in ["folders", "selector", "versioned"] {
        sess.run(study(dep).implementation())?;
    }

    sess.run(
        "val wiki = verTable \"wiki\"\n\
           {Slug = sqlString}\n\
           {Title = {SqlType = sqlString, Eq = eqString},\n\
            Body = {SqlType = sqlString, Eq = eqString}}",
    )?;

    sess.run(
        "val e1 = wiki.Save {Slug = \"ur\"} \
             {Title = \"Ur\", Body = \"A language.\"}\n\
         val e2 = wiki.SaveDelta {Slug = \"ur\"} \
             {Title = \"Ur\", Body = \"A language.\"} \
             {Title = \"Ur\", Body = \"A language with type-level records.\"}\n\
         val e3 = wiki.SaveDelta {Slug = \"ur\"} \
             {Title = \"Ur\", Body = \"A language with type-level records.\"} \
             {Title = \"Ur/Web\", Body = \"A language with type-level records.\"}",
    )?;

    sess.run("val vs = wiki.Versions {Slug = \"ur\"}\nval nv = lengthList vs")?;
    println!("revisions of page 'ur': {}", sess.get_int("nv")?);

    for v in 1..=3 {
        sess.run(&format!(
            "val r{v} = wiki.Reconstruct {{Slug = \"ur\"}} {v} \
                 {{Title = \"\", Body = \"\"}}\n\
             val t{v} = r{v}.Title\n\
             val b{v} = r{v}.Body"
        ))?;
        println!(
            "  v{v}: {} — {}",
            sess.get_str(&format!("t{v}"))?,
            sess.get_str(&format!("b{v}"))?
        );
    }

    println!("\nconcrete storage (NULL = column unchanged in that revision):");
    for stmt in sess.db().log().iter().filter(|s| s.starts_with("INSERT")) {
        println!("  {stmt}");
    }
    Ok(())
}
