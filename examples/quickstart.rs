//! Quickstart: the paper's §2 examples end to end.
//!
//! ```sh
//! cargo run -p ur --example quickstart
//! ```

use ur::Session;

fn main() -> Result<(), ur::SessionError> {
    let mut sess = Session::new()?;

    // §2: a generic record-field projection function. One definition works
    // for every record shape; the call sites are plain ML.
    sess.run(
        "fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
             (x : $([nm = t] ++ r)) = x.nm\n\
         val a = proj [#A] {A = 1, B = 2.3}\n\
         val d = proj [#D] {C = True, D = \"xyz\", E = 8}",
    )?;
    println!("proj [#A] {{A = 1, B = 2.3}}          = {}", sess.get_int("a")?);
    println!("proj [#D] {{C = True, D = ..., E = 8}} = {}", sess.get_str("d")?);

    // §2.1: the generic table formatter. The type-level record
    // [A = int, B = float] is *inferred* by reverse-engineering
    // unification, and the folder is generated automatically.
    sess.run(
        "type meta (t :: Type) = {Label : string, Show : t -> string}\n\
         fun mkTable [r :: {Type}] (fl : folder r) (mr : $(map meta r)) (x : $r) : string =\n\
           fl [fn r => $(map meta r) -> $r -> string]\n\
              (fn [nm] [t] [r] [[nm] ~ r] acc mr x =>\n\
                 \"<tr> <th>\" ^ mr.nm.Label ^ \"</th> <td>\" ^ mr.nm.Show x.nm ^ \"</td> </tr> \" ^\n\
                 acc (mr -- nm) (x -- nm))\n\
              (fn _ _ => \"\") mr x\n\
         val f = mkTable {A = {Label = \"A\", Show = showInt},\n\
                          B = {Label = \"B\", Show = showFloat}}\n\
         val html = f {A = 2, B = 3.4}",
    )?;
    println!("\nmkTable output (the paper's §2.1 expected result):");
    println!("  {}", sess.get_str("html")?);

    // The same formatter over the injection-proof XML tree type: strings
    // can only enter documents through the escaping cdata constructor.
    sess.run(
        "fun mkRows [r :: {Type}] (fl : folder r) (mr : $(map meta r)) (x : $r) : xml #table =\n\
           fl [fn r => $(map meta r) -> $r -> xml #table]\n\
              (fn [nm] [t] [r] [[nm] ~ r] acc mr x =>\n\
                 xcat (tagTr (xcat (tagTh (cdata mr.nm.Label))\n\
                                   (tagTd (cdata (mr.nm.Show x.nm)))))\n\
                      (acc (mr -- nm) (x -- nm)))\n\
              (fn _ _ => xempty) mr x\n\
         val g = mkRows {N = {Label = \"Note\", Show = fn (s : string) => s}}\n\
         val attack = renderXml (tagTable (g {N = \"<script>alert(1)</script>\"}))",
    )?;
    println!("\nXML version neutralizes injection:");
    println!("  {}", sess.get_str("attack")?);

    // Inference statistics: the machinery the paper's Figure 5 counts.
    println!("\ninference statistics: {}", sess.stats());
    Ok(())
}
