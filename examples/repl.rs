//! A minimal Ur REPL on top of [`ur::Session`].
//!
//! ```sh
//! cargo run -p ur --example repl [-- --db-dir DIR] [--eval=vm|interp]
//! ```
//!
//! Enter expressions to evaluate them, declarations (`val`/`fun`/`type`/
//! `con`) to extend the session, `:t e` for the type of an expression,
//! `:stats` for the Figure-5 counters plus the memo-cache, intern-table,
//! self-healing, and eval-engine columns, `:health` for the
//! circuit-breaker/fault report, `:db` for the database report (tables,
//! WAL, durability counters), and `:quit` to exit. With `--db-dir DIR`
//! the session's database effects go through the crash-safe WAL +
//! snapshot store; `--eval=` picks the execution engine (the bytecode VM
//! by default, the tree-walking interpreter as the oracle).

use std::io::{BufRead, Write};
use ur::{Session, SessionError};

/// Renders elaboration errors in the coded diagnostic format the
/// declaration path uses, so every REPL error looks the same.
fn render(e: SessionError) -> String {
    match e {
        SessionError::Elab(e) => ur::syntax::Diagnostic::from(e).to_string(),
        other => other.to_string(),
    }
}

fn main() {
    let mut sess = match Session::new() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start session: {e}");
            std::process::exit(1);
        }
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--db-dir" => {
                let Some(dir) = args.next().filter(|d| !d.is_empty()) else {
                    continue; // empty = in-memory, same as urc
                };
                match ur::db::Db::open(&dir) {
                    Ok(db) => *sess.db() = db,
                    Err(e) => {
                        eprintln!("--db-dir {dir}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            other if other.starts_with("--eval=") => {
                let name = &other["--eval=".len()..];
                match ur::eval::EvalEngine::parse(name) {
                    Some(engine) => sess.engine = engine,
                    None => {
                        eprintln!("--eval=: unknown engine {name} (vm|interp)");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!(
                    "unknown option {other} (supported: --db-dir DIR, --eval=vm|interp)"
                );
                std::process::exit(2);
            }
        }
    }
    println!(
        "Ur REPL — :t <expr> for types, :stats for counters, :health for the \
         self-healing report, :db for the database, :quit to exit"
    );
    let stdin = std::io::stdin();
    loop {
        print!("ur> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":stats" {
            println!("{}", sess.stats_snapshot());
            println!("eval engine: {}", sess.engine.name());
            continue;
        }
        if line == ":health" {
            print!("{}", sess.health_report());
            continue;
        }
        if line == ":db" {
            print!("{}", sess.db_report());
            continue;
        }
        if let Some(rest) = line.strip_prefix(":t ") {
            match sess.type_of(rest) {
                Ok(t) => println!("{rest} : {t}"),
                Err(e) => println!("{}", render(e)),
            }
            continue;
        }
        let is_decl = ["val ", "fun ", "type ", "con "]
            .iter()
            .any(|kw| line.starts_with(kw));
        if is_decl {
            // Multi-error mode: a line holding several declarations
            // reports every error and still defines the good ones; the
            // session survives arbitrary malformed input.
            let (defs, diags) = sess.run_all(line);
            for d in &diags {
                println!("{d}");
            }
            for (name, v) in defs {
                println!("{name} = {v}");
            }
        } else {
            match sess.eval(line) {
                Ok(v) => println!("{v}"),
                Err(e) => println!("{}", render(e)),
            }
        }
    }
}
