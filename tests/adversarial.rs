//! Adversarial-input harness: pathological programs must yield a
//! structured diagnostic within the resource budget — never a panic, a
//! stack overflow, or a hang.
//!
//! Three families of hostile input, mirroring the fuel dimensions
//! (`ur_core::limits`):
//!
//! * **deep** — ≥10k-deep nesting (parser recursion, constructor
//!   recursion, map nests);
//! * **cyclic** — programs whose constraints loop back on themselves
//!   (occurs checks, self-application);
//! * **wide** — ≥5k-field rows whose disjointness goals have quadratic
//!   cross products.
//!
//! Plus the multi-error contract: one elaboration pass reports every
//! independent error.

use std::time::{Duration, Instant};
use ur::core::prelude::*;
use ur::infer::{Elaborator, Unify};
use ur::syntax::{Code, Diagnostic};

/// Generous wall-clock ceiling per adversarial case (debug builds on slow
/// CI runners included). The point is "terminates promptly", not a
/// micro-benchmark.
const TIME_BUDGET: Duration = Duration::from_secs(60);

fn assert_bounded(start: Instant, what: &str) {
    let elapsed = start.elapsed();
    assert!(
        elapsed < TIME_BUDGET,
        "{what} took {elapsed:?}, over the {TIME_BUDGET:?} budget"
    );
}

// ---------------- deep ----------------

#[test]
fn ten_k_nested_parens_diagnose_not_overflow() {
    let start = Instant::now();
    let src = format!("{}1{}", "(".repeat(10_000), ")".repeat(10_000));
    let err = ur::syntax::parse_expr(&src).expect_err("should be rejected");
    let d: Diagnostic = err.into();
    assert_eq!(d.code, Code::ParseTooDeep, "got: {d}");
    assert_bounded(start, "deep parens");
}

#[test]
fn ten_k_nested_parens_in_type_position_diagnose() {
    let start = Instant::now();
    let src = format!("{}int{}", "(".repeat(12_000), ")".repeat(12_000));
    let err = ur::syntax::parse_con(&src).expect_err("should be rejected");
    let d: Diagnostic = err.into();
    assert_eq!(d.code, Code::ParseTooDeep);
    assert_bounded(start, "deep type parens");
}

#[test]
fn ten_k_deep_map_nest_normalizes_within_budget() {
    // map f (map f (... r)) nested 10,000 deep. The fusion law collapses
    // adjacent maps one iterative step at a time, and every step charges
    // fuel — so this terminates whether or not the budget runs out.
    let start = Instant::now();
    let mut env = Env::new();
    let mut cx = Cx::new();
    let f = Sym::fresh("f");
    let r = Sym::fresh("r");
    env.bind_con(f, Kind::arrow(Kind::Type, Kind::Type));
    env.bind_con(r, Kind::row(Kind::Type));
    let mut c = Con::var(&r);
    for _ in 0..10_000 {
        c = Con::map_app(Kind::Type, Kind::Type, Con::var(&f), c);
    }
    let _nf = ur::core::hnf::hnf(&env, &mut cx, &c);
    assert!(
        cx.fuel.norm_steps_used() <= cx.fuel.limits.max_norm_steps,
        "normalization must stay within its step budget"
    );
    assert_bounded(start, "10k map nest");
}

#[test]
fn ten_k_deep_arrow_defeq_hits_depth_budget() {
    // Two 10,000-deep arrow types that differ only at the innermost leaf.
    // (Identical chains would be hash-consed to the *same* node and compare
    // in O(1), so the near-miss is what forces structural recursion.)
    // That recursion would need 10k stack frames; the depth budget (512)
    // cuts it off and returns the conservative answer.
    let start = Instant::now();
    let env = Env::new();
    let mut cx = Cx::new();
    let deep = |leaf: ur::core::con::RCon, n: usize| {
        let mut c = leaf;
        for _ in 0..n {
            c = Con::arrow(c, Con::int());
        }
        c
    };
    let (a, b) = (deep(Con::int(), 10_000), deep(Con::float(), 10_000));
    let eq = ur::core::defeq::defeq(&env, &mut cx, &a, &b);
    assert_eq!(
        cx.fuel.exhausted(),
        Some(ResourceKind::Depth),
        "10k-deep recursion must trip the depth budget"
    );
    // The degenerate answer is the conservative "not equal", never a
    // false positive.
    assert!(!eq);
    assert_bounded(start, "deep defeq");
}

#[test]
fn ten_k_deep_arrow_unify_postpones_not_overflows() {
    // As above: distinct leaves keep the chains from being hash-consed to
    // one shared node, so unification actually has to walk them.
    let start = Instant::now();
    let env = Env::new();
    let mut cx = Cx::new();
    let deep = |leaf: ur::core::con::RCon, n: usize| {
        let mut c = leaf;
        for _ in 0..n {
            c = Con::arrow(c, Con::int());
        }
        c
    };
    let (a, b) = (deep(Con::int(), 10_000), deep(Con::float(), 10_000));
    let out = ur::infer::unify(&env, &mut cx, &a, &b);
    assert!(
        !matches!(out, Unify::Fail(_)),
        "budget exhaustion must degrade to Solved/Postpone, got {out:?}"
    );
    assert_bounded(start, "deep unify");
}

#[test]
fn deep_program_text_is_rejected_with_span() {
    let start = Instant::now();
    let mut elab = Elaborator::new();
    let src = format!("val x = {}1{}", "(".repeat(20_000), ")".repeat(20_000));
    let err = elab.elab_source(&src).expect_err("should be rejected");
    assert_eq!(err.code(), Code::ParseTooDeep);
    // The session survives and works afterwards.
    assert!(elab.elab_source("val ok = 1").is_ok());
    assert_bounded(start, "deep program");
}

// ---------------- cyclic ----------------

#[test]
fn cyclic_meta_fails_occurs_check_not_hangs() {
    let start = Instant::now();
    let env = Env::new();
    let mut cx = Cx::new();
    let m = cx.metas.fresh_con(Kind::Type, "t");
    let cyclic = Con::arrow(m, Con::int());
    assert!(matches!(
        ur::infer::unify(&env, &mut cx, &m, &cyclic),
        Unify::Fail(_)
    ));
    assert_bounded(start, "cyclic meta");
}

#[test]
fn self_application_program_errors_not_hangs() {
    // fn x => x x: the classic occurs-check program. Must produce a
    // diagnostic, not loop.
    let start = Instant::now();
    let mut elab = Elaborator::new();
    let err = elab
        .elab_source("val omega = fn x => x x")
        .expect_err("self-application must not typecheck");
    assert!(!err.message.is_empty());
    assert!(elab.elab_source("val ok = 2").is_ok(), "session survives");
    assert_bounded(start, "self application");
}

#[test]
fn mutually_cyclic_row_metas_terminate() {
    // ?a = [A = int] ++ ?b and ?b = [B = int] ++ ?a: the second solve
    // must either fail the occurs check or postpone — never diverge.
    let start = Instant::now();
    let env = Env::new();
    let mut cx = Cx::new();
    let a = cx.metas.fresh_con(Kind::row(Kind::Type), "a");
    let b = cx.metas.fresh_con(Kind::row(Kind::Type), "b");
    let lhs1 = a;
    let rhs1 = Con::row_cat(
        Con::row_one(Con::name("A"), Con::int()),
        b,
    );
    let first = ur::infer::unify(&env, &mut cx, &lhs1, &rhs1);
    assert!(!matches!(first, Unify::Fail(_)), "first equation is fine");
    let lhs2 = b;
    let rhs2 = Con::row_cat(
        Con::row_one(Con::name("B"), Con::int()),
        a,
    );
    let second = ur::infer::unify(&env, &mut cx, &lhs2, &rhs2);
    assert!(
        !matches!(second, Unify::Solved),
        "cyclic second equation must not claim success, got {second:?}"
    );
    assert_bounded(start, "cyclic rows");
}

// ---------------- wide ----------------

fn wide_row(prefix: &str, n: usize) -> ur::core::con::RCon {
    Con::row_of(
        Kind::Type,
        (0..n)
            .map(|i| (Con::name(format!("{prefix}{i}")), Con::int()))
            .collect(),
    )
}

#[test]
fn five_k_field_disjointness_exhausts_budget_not_time() {
    // 2,600 × 2,600 distinct literal names = 6.76M cross pairs, over the
    // 2M default budget: the prover must stop at the budget with the
    // conservative NotYet, never claim Proved, and never hang.
    let start = Instant::now();
    let env = Env::new();
    let mut cx = Cx::new();
    let r1 = wide_row("A", 2_600);
    let r2 = wide_row("B", 2_600);
    let out = ur::core::disjoint::prove(&env, &mut cx, &r1, &r2);
    assert_eq!(out, ur::core::disjoint::ProveResult::NotYet);
    assert_eq!(cx.fuel.exhausted(), Some(ResourceKind::ProverPairs));
    assert_bounded(start, "wide disjointness");
}

#[test]
fn wide_row_program_yields_resource_diagnostic() {
    // End-to-end: a record concatenation whose disjointness goal is over
    // budget surfaces as an E0900 diagnostic at the declaration, and the
    // elaborator stays usable.
    let start = Instant::now();
    let mut elab = Elaborator::new();
    elab.cx = Cx::with_limits(Limits::strict());
    let fields = |prefix: &str, n: usize| {
        (0..n)
            .map(|i| format!("{prefix}{i} = {i}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let src = format!(
        "val wide = {{{}}} ++ {{{}}}",
        fields("A", 150),
        fields("B", 150)
    );
    let err = elab.elab_source(&src).expect_err("over budget");
    assert_eq!(err.code(), Code::ResourceExhausted, "got: {err}");
    // Fuel was reset at the declaration boundary: small programs still
    // work in the same session.
    assert!(elab.elab_source("val ok = {A = 1}.A").is_ok());
    assert_bounded(start, "wide program");
}

#[test]
fn five_k_field_record_literal_elaborates_or_diagnoses() {
    // A single 5,000-field record literal (no disjointness pressure) is
    // legitimate input and must elaborate — wideness alone is not an
    // error.
    let start = Instant::now();
    let mut elab = Elaborator::new();
    let body = (0..5_000)
        .map(|i| format!("F{i} = {i}"))
        .collect::<Vec<_>>()
        .join(", ");
    let src = format!("val big = {{{body}}}");
    elab.elab_source(&src).expect("a flat wide record is fine");
    assert_bounded(start, "5k-field record");
}

// ---------------- multi-error ----------------

#[test]
fn three_independent_errors_reported_in_one_pass() {
    let mut elab = Elaborator::new();
    let src = "val a : int = \"not an int\"\n\
               val b = missingVariable\n\
               val c : string = 42\n\
               val good = 7";
    let (decls, diags) = elab.elab_source_all(src);
    assert!(
        diags.len() >= 3,
        "expected at least 3 diagnostics, got {}: {:?}",
        diags.len(),
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>()
    );
    // Recovery at declaration boundaries: the clean declaration made it.
    assert!(decls.iter().any(|d| d.name() == "good"));
    // Spans point at three different lines.
    let mut lines: Vec<u32> = diags.iter().map(|d| d.span.line).collect();
    lines.dedup();
    assert!(lines.len() >= 3, "spans should cover distinct declarations");
}

#[test]
fn multi_error_pass_classifies_codes() {
    let mut elab = Elaborator::new();
    let src = "val a : int = \"s\"\nval b = nowhere\nval c : string = 42";
    let (_, diags) = elab.elab_source_all(src);
    assert!(diags.iter().any(|d| d.code == Code::Unbound));
    assert!(diags
        .iter()
        .any(|d| matches!(d.code, Code::TypeMismatch | Code::Unresolved)));
}

#[test]
fn parse_error_in_multi_mode_is_a_single_diagnostic() {
    let mut elab = Elaborator::new();
    let (decls, diags) = elab.elab_source_all("val x = (((");
    assert!(decls.is_empty());
    assert_eq!(diags.len(), 1);
    assert!(matches!(diags[0].code, Code::Parse | Code::ParseTooDeep));
}

// ---------------- session survival ----------------

#[test]
fn session_survives_a_gauntlet_of_malformed_input() {
    let start = Instant::now();
    let mut sess = ur::Session::new().expect("prelude installs");
    let hostile = [
        "val x = ",
        "val = 3",
        "}{",
        "val s = \"unterminated",
        "val t : = 1",
        "fun f [ = 2",
        "val u = {A = 1, A = 2} ++ {A = 3}",
        "val v = missing ++ alsoMissing",
        "con k :: Type = #A #B #C",
    ];
    for src in hostile {
        assert!(sess.run(src).is_err(), "hostile input accepted: {src}");
    }
    // After all of that, the session still elaborates and evaluates.
    sess.run("val fine = 1 + 2").expect("session survives");
    assert_eq!(sess.get_int("fine").expect("fine exists"), 3);
    assert_bounded(start, "gauntlet");
}
