//! Chaos differential suite: seeded fault injection against the
//! self-healing elaboration pipeline (`ur_core::failpoint`,
//! `ur_infer::batch`, `ur_web::Session`).
//!
//! The contract under test: **faults cost retries and recomputation,
//! never results.** Every test elaborates a batch under a deterministic
//! fault schedule and compares declarations (up to fresh symbol ids) and
//! diagnostics against the clean sequential run, while asserting that
//! the intended recovery path actually ran (via the healing counters in
//! `Stats` and the per-site injection counters).
//!
//! Requires `--features failpoints`:
//!
//! ```sh
//! cargo test -p ur --features failpoints --test chaos
//! ```
//!
//! Every failure message carries the seed; reproduce a CI failure by
//! re-running with `UR_CHAOS_SEED=<seed>` (see docs/ROBUSTNESS.md).

use ur::core::failpoint::{self, FpConfig, FpCounters, Site};
use ur::core::prelude::{Fuel, Limits, Stats};
use ur::infer::Elaborator;
use ur::web::BreakerConfig;
use ur::Session;

const THREADS: &[usize] = &[1, 2, 4, 8];
const MATRIX_SEEDS: &[u64] = &[0xA11CE, 0xB0B, 0xC4A05];

/// Shrinks the coordinator's watchdog so injected stalls and lost
/// results cost tens of milliseconds instead of seconds. Spurious trips
/// only cause dup-guarded re-dispatches, so this never affects results.
fn short_watchdog() {
    std::env::set_var("UR_WATCHDOG_MS", "50");
}

/// Erases gensym counters (`foo#123` -> `foo#`) so runs drawing
/// different fresh-symbol numbers compare structurally.
fn strip_sym_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == '#' {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
        }
    }
    out
}

/// A metaprogramming batch with parallel width: a record metaprogram,
/// then independent clients (each a root of the dependency graph).
fn corpus() -> String {
    use std::fmt::Write as _;
    let mut src = String::from(
        "fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
            (x : $([nm = t] ++ r)) = x.nm\n\
         fun snd [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
            (x : $([nm = t] ++ r)) (y : t) = y",
    );
    for c in 0..6 {
        let _ = write!(
            src,
            "\nval a{c} = proj [#A] {{A = {c}, B = \"x\", C = {c}.5}}\
             \nval b{c} = snd [#B] {{A = {c}, B = \"x\"}} \"y\"",
        );
    }
    src
}

/// A fault schedule touching every site at moderate rates, capped below
/// the retry budgets so healing always converges.
fn balanced(seed: u64) -> FpConfig {
    FpConfig::new(seed)
        .with_max_per_site(2)
        .with_rate(Site::WorkerSpawn, 120)
        .with_rate(Site::WorkerExec, 180)
        .with_rate(Site::WorkerSend, 120)
        .with_rate(Site::WorkerStall, 60)
        .with_rate(Site::MemoLoad, 60)
        .with_rate(Site::MemoStore, 60)
        .with_rate(Site::InternGrow, 40)
        .with_rate(Site::FuelCharge, 4)
}

/// Elaborates `src` once in a fresh session under `cfg` (clean when
/// `None`; the schedule starts after the prelude is installed). Returns
/// (decl fingerprints, diag fingerprints, stats, faults injected).
fn run_batch(
    src: &str,
    threads: usize,
    cfg: Option<FpConfig>,
) -> (Vec<String>, Vec<String>, Stats, FpCounters) {
    let mut sess = Session::new().expect("session");
    let _ = failpoint::take_counters();
    failpoint::install(cfg);
    let (decls, diags) = sess.elab.elab_source_all_threads(src, threads);
    failpoint::install(None);
    let fp = failpoint::take_counters();
    let decl_fps = decls
        .iter()
        .map(|d| strip_sym_ids(&format!("{d:?}")))
        .collect();
    let diag_fps = diags.iter().map(|d| d.to_string()).collect();
    (decl_fps, diag_fps, sess.elab.cx.stats.clone(), fp)
}

// ---------------- the differential matrix ----------------

/// Fixed seeds x thread counts, all sites active: results must equal
/// the clean sequential baseline, always.
#[test]
fn seeded_chaos_matrix_never_diverges() {
    short_watchdog();
    let src = corpus();
    let (base_decls, base_diags, _, fp) = run_batch(&src, 1, None);
    assert_eq!(fp, FpCounters::default(), "baseline must be fault-free");
    assert!(base_diags.is_empty(), "corpus must be clean: {base_diags:?}");

    let mut seeds: Vec<u64> = MATRIX_SEEDS.to_vec();
    // CI repro hook: an extra externally-chosen seed.
    if let Some(s) = std::env::var("UR_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        seeds.push(s);
    }
    for seed in seeds {
        for &t in THREADS {
            let (decls, diags, _, _) = run_batch(&src, t, Some(balanced(seed)));
            assert_eq!(
                decls, base_decls,
                "declarations diverged under chaos: UR_CHAOS_SEED={seed} threads={t}"
            );
            assert_eq!(
                diags, base_diags,
                "diagnostics diverged under chaos: UR_CHAOS_SEED={seed} threads={t}"
            );
        }
    }
}

/// One randomized-seed run per invocation (the CI chaos job relies on
/// this): the seed is printed and embedded in every assertion message,
/// so any failure reproduces with `UR_CHAOS_SEED=<seed>`.
#[test]
fn randomized_seed_run_embeds_its_seed_in_failures() {
    short_watchdog();
    let seed: u64 = std::env::var("UR_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
                .unwrap_or(0xDEFA17);
            nanos | 1
        });
    println!("chaos randomized seed: UR_CHAOS_SEED={seed}");
    let src = corpus();
    let (base_decls, base_diags, _, _) = run_batch(&src, 1, None);
    let (decls, diags, _, _) = run_batch(&src, 4, Some(balanced(seed)));
    assert_eq!(
        decls, base_decls,
        "diverged — reproduce with UR_CHAOS_SEED={seed}"
    );
    assert_eq!(
        diags, base_diags,
        "diverged — reproduce with UR_CHAOS_SEED={seed}"
    );
}

// ---------------- per-site recovery paths ----------------

/// Satellite: the scheduler's "missing outcomes" fallback. Every worker
/// dies on its first task; the merge loop must elaborate the entire
/// batch sequentially at the coordinator, with identical results.
#[test]
fn all_workers_dying_falls_back_to_sequential_merge() {
    short_watchdog();
    let src = corpus();
    let (base_decls, base_diags, _, _) = run_batch(&src, 1, None);
    let cfg = FpConfig::new(7)
        .with_max_per_site(64)
        .with_rate(Site::WorkerExec, 1000);
    let (decls, diags, stats, fp) = run_batch(&src, 4, Some(cfg));
    assert_eq!(decls, base_decls, "fallback changed declarations");
    assert_eq!(diags, base_diags, "fallback changed diagnostics");
    assert!(fp.injected[Site::WorkerExec.index()] >= 1, "{fp:?}");
    assert!(stats.par_worker_deaths >= 1, "{stats:?}");
    // Nobody survived to produce an outcome: everything came from the
    // sequential fallback.
    assert_eq!(stats.par_decls, 0, "{stats:?}");
}

/// A worker finishing a task but losing the result must trip the
/// watchdog; the task is re-dispatched (or falls back), and the batch
/// still matches the clean run.
#[test]
fn lost_results_trip_the_watchdog_and_heal() {
    short_watchdog();
    let src = corpus();
    let (base_decls, base_diags, _, _) = run_batch(&src, 1, None);
    let cfg = FpConfig::new(11)
        .with_max_per_site(1)
        .with_rate(Site::WorkerSend, 1000);
    let (decls, diags, stats, fp) = run_batch(&src, 4, Some(cfg));
    assert_eq!(decls, base_decls, "lost-result recovery changed declarations");
    assert_eq!(diags, base_diags, "lost-result recovery changed diagnostics");
    assert!(fp.injected[Site::WorkerSend.index()] >= 1, "{fp:?}");
    assert!(stats.watchdog_trips >= 1, "{stats:?}");
    assert!(stats.par_retries >= 1, "{stats:?}");
}

/// Corrupt memo entries (at store or load time) must be caught by the
/// per-entry integrity check, evicted, and recomputed — results equal,
/// rejections counted.
#[test]
fn memo_corruption_is_rejected_and_recomputed() {
    let src = corpus();
    let (base_decls, base_diags, _, _) = run_batch(&src, 1, None);
    let cfg = FpConfig::new(13)
        .with_max_per_site(64)
        .with_rate(Site::MemoLoad, 500)
        .with_rate(Site::MemoStore, 500);
    let (decls, diags, _, fp) = run_batch(&src, 1, Some(cfg));
    assert_eq!(decls, base_decls, "memo corruption leaked into results");
    assert_eq!(diags, base_diags, "memo corruption leaked into diagnostics");
    assert!(
        fp.injected[Site::MemoLoad.index()] + fp.injected[Site::MemoStore.index()] >= 1,
        "{fp:?}"
    );
    assert!(fp.integrity_rejections >= 1, "{fp:?}");
}

/// Phantom fuel bursts cause a spurious resource exhaustion; the
/// bounded declaration retry (whose final attempt is guaranteed
/// fault-free by the per-site cap) must converge to the clean result
/// with no diagnostic.
#[test]
fn phantom_fuel_exhaustion_is_retried_to_the_clean_result() {
    let src = "fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
               (x : $([nm = t] ++ r)) = x.nm";
    let mut clean = Elaborator::new();
    let decls = clean.elab_source(src).expect("clean elaboration");
    let clean_fps: Vec<String> = decls
        .iter()
        .map(|d| strip_sym_ids(&format!("{d:?}")))
        .collect();
    let used = clean.cx.fuel.lifetime_norm_steps();
    assert!(used > 0, "corpus must charge fuel");

    // Budget 2x the real need: the clean run fits easily, but three
    // injected bursts of budget/4+1 steps each force an exhaustion on
    // the first attempt no matter how the real steps interleave.
    let mut el = Elaborator::new();
    el.cx.fuel = Fuel::new(Limits {
        max_norm_steps: used * 2,
        ..Limits::default()
    });
    let _ = failpoint::take_counters();
    failpoint::install(Some(
        FpConfig::new(17)
            .with_max_per_site(3)
            .with_rate(Site::FuelCharge, 1000),
    ));
    let (decls2, diags) = el.elab_source_all_threads(src, 1);
    failpoint::install(None);
    let fp = failpoint::take_counters();
    let fps2: Vec<String> = decls2
        .iter()
        .map(|d| strip_sym_ids(&format!("{d:?}")))
        .collect();
    assert!(
        diags.is_empty(),
        "phantom exhaustion leaked a diagnostic: {diags:?}"
    );
    assert_eq!(fps2, clean_fps, "retry produced a different declaration");
    assert!(fp.injected[Site::FuelCharge.index()] >= 1, "{fp:?}");
    assert!(el.cx.stats.decl_retries >= 1, "{:?}", el.cx.stats);
}

/// Intern-table growth faults (forced rehash) are semantically
/// invisible: hash-consing still canonicalizes, results still match.
#[test]
fn intern_growth_faults_are_invisible() {
    let src = corpus();
    let (base_decls, base_diags, _, _) = run_batch(&src, 1, None);
    let cfg = FpConfig::new(19)
        .with_max_per_site(64)
        .with_rate(Site::InternGrow, 1000);
    let (decls, diags, _, fp) = run_batch(&src, 1, Some(cfg));
    assert_eq!(decls, base_decls);
    assert_eq!(diags, base_diags);
    assert!(fp.injected[Site::InternGrow.index()] >= 1, "{fp:?}");
}

// ---------------- session-level self-healing ----------------

/// Satellite: a chaos-aborted batch must leave no trace after
/// `rollback` — env, folder caches, memo tables, stats, and database
/// all return to the pre-batch snapshot.
#[test]
fn chaos_batch_rolls_back_to_prebatch_state() {
    short_watchdog();
    let mut sess = Session::new().expect("session");
    sess.threads = 4;
    sess.run("val base = 10").expect("base decl");
    let stats_before = sess.stats().clone();
    let snap = sess.snapshot();

    let _ = failpoint::take_counters();
    failpoint::install(Some(balanced(23)));
    let (_defs, _diags) = sess.run_all(&format!(
        "{}\nval bad : int = \"nope\"\nval t = createTable \"chaos_t\" {{K = sqlInt}}",
        corpus()
    ));
    failpoint::install(None);
    let _ = failpoint::take_counters();

    sess.rollback(snap);
    assert_eq!(
        *sess.stats(),
        stats_before,
        "stats drifted across a rolled-back chaos batch"
    );
    assert!(sess.get("a0").is_none(), "binding survived rollback");
    assert!(sess.get("t").is_none(), "table binding survived rollback");
    assert!(
        sess.world.db.row_count("chaos_t").is_err(),
        "database table survived rollback"
    );
    assert_eq!(sess.get_int("base").expect("base survives"), 10);

    // The rolled-back session elaborates and evaluates normally.
    sess.run("val after = base + 32").expect("post-rollback decl");
    assert_eq!(sess.get_int("after").expect("after"), 42);
}

/// Sustained worker deaths must trip the session's circuit breaker; the
/// next batch runs degraded (sequential, memo off) and still correct.
#[test]
fn sustained_faults_trip_the_breaker_and_degrade() {
    short_watchdog();
    let mut sess = Session::new().expect("session");
    sess.threads = 4;
    sess.breaker.config = BreakerConfig {
        window: 2,
        threshold: 1,
        ..BreakerConfig::default()
    };

    let _ = failpoint::take_counters();
    failpoint::install(Some(
        FpConfig::new(29)
            .with_max_per_site(64)
            .with_rate(Site::WorkerExec, 1000),
    ));
    let (defs, diags) = sess.run_all("val a1 = 1\nval a2 = 2\nval a3 = 3\nval a4 = 4");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(defs.len(), 4);
    assert!(
        sess.breaker.is_open(),
        "worker deaths must trip the breaker:\n{}",
        sess.health_report()
    );
    assert_eq!(sess.stats().breaker_trips, 1);

    // Degraded batch: sequential, so the worker-death schedule (still
    // installed) has nothing to bite — and memoization is off.
    let (defs2, diags2) = sess.run_all("val b1 = 5\nval b2 = 6");
    failpoint::install(None);
    let _ = failpoint::take_counters();
    assert!(diags2.is_empty(), "{diags2:?}");
    assert_eq!(defs2.len(), 2);
    assert_eq!(sess.stats().breaker_degraded_batches, 1);
    assert!(!sess.elab.cx.memo.enabled, "memo must be off while open");
    assert_eq!(sess.get_int("b2").expect("b2"), 6);

    let report = sess.health_report();
    assert!(report.contains("OPEN (degraded)"), "{report}");
    assert!(report.contains("worker_deaths"), "{report}");
}

/// The failpoint counters surface end to end: `Stats` display (the
/// REPL's `:stats`) and the health report both carry nonzero fault and
/// healing numbers after a chaotic batch.
#[test]
fn stats_and_health_surface_fault_counters() {
    let mut sess = Session::new().expect("session");
    let _ = failpoint::take_counters();
    failpoint::install(Some(
        FpConfig::new(31)
            .with_max_per_site(64)
            .with_rate(Site::MemoStore, 800)
            .with_rate(Site::MemoLoad, 800),
    ));
    let (_defs, diags) = sess.run_all(&corpus());
    failpoint::install(None);
    assert!(diags.is_empty(), "{diags:?}");

    // NB: the counters are left in place — `capture_failpoints` reads
    // the live thread-locals, so clearing them here would zero the
    // snapshot.
    let snap = sess.stats_snapshot();
    assert!(snap.fp_faults_injected >= 1, "{snap:?}");
    assert!(snap.fp_memo_rejections >= 1, "{snap:?}");
    let display = snap.to_string();
    assert!(display.contains("faults["), "{display}");

    let report = sess.health_report();
    assert!(report.contains("fault injection: injected="), "{report}");
    assert!(!report.contains("injected=0"), "{report}");
}

// ---------------- durability-layer fault injection ----------------

mod wal_chaos {
    use super::*;
    use ur::db::{ColTy, Db, DbError, DbVal, Schema, SqlExpr};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ur-chaos-db-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn schema_ab() -> Schema {
        Schema::new(vec![("A".into(), ColTy::Int), ("B".into(), ColTy::Str)]).unwrap()
    }

    fn ins(db: &mut Db, a: i64, b: &str) -> Result<(), DbError> {
        db.insert(
            "t",
            &[
                ("A".into(), SqlExpr::lit(DbVal::Int(a))),
                ("B".into(), SqlExpr::lit(DbVal::Str(b.into()))),
            ],
        )
    }

    /// Arms exactly one deterministic fault at `site` (first draw fires).
    fn arm(site: Site) {
        let _ = failpoint::take_counters();
        failpoint::install(Some(
            FpConfig::new(7).with_rate(site, 1000).with_max_per_site(1),
        ));
    }

    /// A failed WAL append is an error with *no trace*: the in-memory
    /// state is unchanged, later commits work, and a reopen sees only
    /// the successful ones.
    #[test]
    fn wal_append_fault_leaves_no_trace() {
        let dir = tmpdir("append");
        let mut db = Db::open(&dir).expect("open");
        db.create_table("t", schema_ab()).unwrap();
        arm(Site::WalAppend);
        let err = ins(&mut db, 1, "doomed").unwrap_err();
        failpoint::install(None);
        assert!(matches!(err, DbError::Io(_)), "{err}");
        assert_eq!(db.row_count("t").unwrap(), 0, "failed commit left state");
        assert!(db.stats().wal_append_errs >= 1, "{}", db.stats());

        ins(&mut db, 2, "kept").unwrap();
        let dump = db.dump();
        drop(db);
        let db2 = Db::open(&dir).expect("reopen");
        assert_eq!(db2.dump(), dump);
        assert_eq!(db2.row_count("t").unwrap(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A fsync failure fails the *explicit* transaction commit and rolls
    /// the whole transaction back — in memory and on disk.
    #[test]
    fn wal_sync_fault_rolls_back_explicit_txn() {
        let dir = tmpdir("sync");
        let mut db = Db::open(&dir).expect("open");
        db.create_table("t", schema_ab()).unwrap();
        db.begin().unwrap();
        ins(&mut db, 1, "a").unwrap();
        ins(&mut db, 2, "b").unwrap();
        arm(Site::WalSync);
        let err = db.commit().unwrap_err();
        failpoint::install(None);
        assert!(matches!(err, DbError::Io(_)), "{err}");
        assert!(!db.in_txn(), "failed commit must close the transaction");
        assert_eq!(db.row_count("t").unwrap(), 0, "rolled-back rows visible");
        assert_eq!(db.stats().txn_rollbacks, 1, "{}", db.stats());
        drop(db);
        assert_eq!(Db::open(&dir).expect("reopen").row_count("t").unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An injected torn commit record deliberately stays on disk: the
    /// live handle reports the failure and stays consistent, and the
    /// recovery path truncates the corrupt tail.
    #[test]
    fn torn_commit_record_is_truncated_on_recovery() {
        let dir = tmpdir("torn");
        let mut db = Db::open(&dir).expect("open");
        db.create_table("t", schema_ab()).unwrap();
        let committed = db.wal_len();
        arm(Site::WalCorrupt);
        let err = ins(&mut db, 1, "torn").unwrap_err();
        failpoint::install(None);
        assert!(matches!(err, DbError::Io(_)), "{err}");
        assert_eq!(db.row_count("t").unwrap(), 0);
        // The corrupt tail is really on disk, past the committed prefix.
        let disk_len = std::fs::metadata(dir.join(ur::db::WAL_FILE)).unwrap().len();
        assert!(disk_len > committed, "disk_len={disk_len} committed={committed}");
        drop(db);
        let db2 = Db::open(&dir).expect("recovery over torn tail");
        assert_eq!(db2.row_count("t").unwrap(), 0);
        assert!(db2.stats().truncated_bytes > 0, "{}", db2.stats());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A failed snapshot write fails the checkpoint but loses nothing:
    /// the WAL is kept, the data stays recoverable, and the failure is
    /// counted.
    #[test]
    fn snapshot_write_fault_keeps_wal_and_data() {
        let dir = tmpdir("snap");
        let mut db = Db::open(&dir).expect("open");
        db.create_table("t", schema_ab()).unwrap();
        ins(&mut db, 1, "precious").unwrap();
        let wal_before = db.wal_len();
        arm(Site::SnapshotWrite);
        let err = db.checkpoint().unwrap_err();
        failpoint::install(None);
        assert!(matches!(err, DbError::Io(_)), "{err}");
        assert_eq!(db.stats().snapshot_errs, 1, "{}", db.stats());
        assert_eq!(db.wal_len(), wal_before, "failed checkpoint touched the WAL");
        let dump = db.dump();
        drop(db);
        let db2 = Db::open(&dir).expect("reopen");
        assert_eq!(db2.dump(), dump, "data lost by a failed checkpoint");
        assert_eq!(db2.stats().snapshot_loaded, 0, "partial snapshot was loaded");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A failed WAL rotation *after* its snapshot landed poisons the
    /// handle — the old-generation log is superseded, so appends to it
    /// would be silently ignored at recovery. While poisoned, appends
    /// fail with the poison reason; each one first retries the
    /// checkpoint as its heal, so once the fault stops firing the next
    /// append succeeds and clears the poison.
    #[test]
    fn wal_rotate_fault_poisons_then_heals() {
        let dir = tmpdir("rotate");
        let mut db = Db::open(&dir).expect("open");
        db.create_table("t", schema_ab()).unwrap();
        ins(&mut db, 1, "kept").unwrap();
        assert_eq!(db.wal_generation(), 1);

        arm(Site::WalRotate);
        let err = db.checkpoint().unwrap_err();
        assert!(matches!(err, DbError::Io(_)), "{err}");
        assert!(db.poison_reason().is_some(), "rotate failure must poison");
        assert_eq!(db.stats().rotate_errs, 1, "{}", db.stats());

        // Still poisoned and the fault still firing: the append's heal
        // checkpoint fails too, and the append is refused.
        arm(Site::WalRotate);
        let err = ins(&mut db, 2, "refused").unwrap_err();
        assert!(matches!(err, DbError::Poisoned(_)), "{err}");
        assert_eq!(db.row_count("t").unwrap(), 1, "refused append left state");

        // Fault gone: the next append self-heals, then lands normally.
        failpoint::install(None);
        ins(&mut db, 2, "after-heal").unwrap();
        assert!(db.poison_reason().is_none(), "heal did not clear the poison");
        assert_eq!(db.wal_generation(), 2, "heal checkpoint rotated the log");

        let dump = db.dump();
        drop(db);
        let db2 = Db::open(&dir).expect("reopen after heal");
        assert_eq!(db2.dump(), dump);
        assert_eq!(db2.row_count("t").unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The live handle stays fully usable across an injected torn write:
    /// the next append overwrites the corrupt tail in place.
    #[test]
    fn live_handle_overwrites_torn_tail() {
        let dir = tmpdir("overwrite");
        let mut db = Db::open(&dir).expect("open");
        db.create_table("t", schema_ab()).unwrap();
        arm(Site::WalCorrupt);
        assert!(ins(&mut db, 1, "torn").is_err());
        failpoint::install(None);
        ins(&mut db, 2, "after").unwrap();
        let dump = db.dump();
        drop(db);
        let db2 = Db::open(&dir).expect("reopen");
        assert_eq!(db2.dump(), dump);
        assert_eq!(db2.row_count("t").unwrap(), 1);
        assert_eq!(db2.stats().truncated_bytes, 0, "tail survived the overwrite");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
