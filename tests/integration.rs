//! Cross-crate integration tests: the full pipeline (parse → elaborate →
//! evaluate) over the paper's examples and every case study.

use ur::studies::{run_study, studies, study};
use ur::{Session, SessionError};

#[test]
fn all_studies_run_end_to_end() {
    for s in studies() {
        let rep = run_study(&s).unwrap_or_else(|e| panic!("study {} failed: {e}", s.id));
        assert!(rep.impl_loc > 0);
        assert!(!rep.usage_values.is_empty(), "study {} has no usage output", s.id);
    }
}

#[test]
fn figure5_shape_holds() {
    // The qualitative claims of Figure 5 (see EXPERIMENTS.md):
    // implementations dominate interfaces; the disjointness prover is
    // invoked far more often than the algebraic laws; map-heavy
    // components exercise distributivity and fusion.
    let mut total_disj = 0;
    let mut total_laws = 0;
    for s in studies() {
        let rep = run_study(&s).unwrap();
        assert!(
            rep.impl_loc > rep.interface_loc,
            "{}: impl {} <= int {}",
            s.id,
            rep.impl_loc,
            rep.interface_loc
        );
        total_disj += rep.stats.disjoint_prover_calls;
        total_laws += rep.stats.law_map_identity
            + rep.stats.law_map_distrib
            + rep.stats.law_map_fusion;
    }
    assert!(
        total_disj > total_laws,
        "prover calls ({total_disj}) should dominate law uses ({total_laws})"
    );
    // Law-heavy rows.
    let sql_sheet = run_study(&study("spreadsheet_sql")).unwrap();
    assert!(sql_sheet.stats.law_map_fusion >= 1);
    assert!(sql_sheet.stats.law_map_identity >= 1);
    assert!(sql_sheet.stats.law_map_distrib >= 1);
    let versioned = run_study(&study("versioned")).unwrap();
    assert!(versioned.stats.law_map_fusion >= 1);
}

#[test]
fn swap_without_retyping_is_rejected() {
    // {a = x.b, b = x.a} has type $([a = u] ++ [b = t]); annotating the
    // *unswapped* type must be a static error.
    let mut sess = Session::new().unwrap();
    sess.run(
        "fun swap [a :: Name] [b :: Name] [t :: Type] [u :: Type] [[a] ~ [b]] \
             (x : $([a = t] ++ [b = u])) : $([a = t] ++ [b = u]) = {a = x.b, b = x.a}",
    )
    .unwrap_err();
}

#[test]
fn swap_with_retyping_is_accepted() {
    // The same body with the honest (swapped) result type is fine.
    let mut sess = Session::new().unwrap();
    sess.run(
        "fun swap [a :: Name] [b :: Name] [t :: Type] [u :: Type] [[a] ~ [b]] \
             (x : $([a = t] ++ [b = u])) : $([a = u] ++ [b = t]) = {a = x.b, b = x.a}\n\
         val y = swap [#P] [#Q] {P = 1, Q = \"s\"}\n\
         val q = y.P",
    )
    .unwrap();
    assert_eq!(sess.get_str("q").unwrap(), "s");
}

#[test]
fn swap_with_correct_types_accepted() {
    let mut sess = Session::new().unwrap();
    sess.run(
        "fun swap [a :: Name] [b :: Name] [t :: Type] [u :: Type] [[a] ~ [b]] \
             (x : $([a = t] ++ [b = u])) = {a = x.a, b = x.b}\n\
         val y = swap [#P] [#Q] {P = 1, Q = \"s\"}\n\
         val p = y.P",
    )
    .unwrap();
    assert_eq!(sess.get_int("p").unwrap(), 1);
}

#[test]
fn metaprogram_misuse_is_a_type_error_not_a_crash() {
    let mut sess = Session::new().unwrap();
    sess.run(study("mktable").implementation()).unwrap();
    // Wrong Show type for the field value.
    let err = sess
        .run(
            "val f = mkTable {A = {Label = \"A\", Show = showInt}}\n\
             val bad = f {A = \"not an int\"}",
        )
        .unwrap_err();
    assert!(matches!(err, SessionError::Elab(_)));
}

#[test]
fn duplicate_columns_rejected_statically() {
    let mut sess = Session::new().unwrap();
    sess.run(study("selector").implementation()).unwrap();
    let err = sess
        .run("val p = selector ({A = 1} ++ {A = 2})")
        .unwrap_err();
    assert!(matches!(err, SessionError::Elab(_)));
}

#[test]
fn database_state_persists_across_runs_in_a_session() {
    let mut sess = Session::new().unwrap();
    sess.run("val t = createTable \"kv\" {K = sqlString, V = sqlInt}")
        .unwrap();
    sess.run("val a = insert t {K = const \"x\", V = const 1}")
        .unwrap();
    sess.run("val b = insert t {K = const \"y\", V = const 2}")
        .unwrap();
    assert_eq!(sess.db().row_count("kv").unwrap(), 2);
    let n = sess.eval("rowCount t").unwrap();
    assert_eq!(n.as_int().unwrap(), 2);
}

#[test]
fn xml_and_sql_injection_are_both_neutralized() {
    let mut sess = Session::new().unwrap();
    let payload = "\\\"'><script>alert(1)</script>; DROP TABLE x; --";
    sess.run(&format!(
        "val t = createTable \"msgs\" {{Body = sqlString}}\n\
         val u = insert t {{Body = const \"{payload}\"}}\n\
         val rows = selectAll t (sqlTrue)\n\
         val render = renderXml (tagP (cdata \"{payload}\"))"
    ))
    .unwrap();
    let render = sess.get_str("render").unwrap();
    assert!(!render.contains("<script>"));
    assert_eq!(sess.db().row_count("msgs").unwrap(), 1);
    // The raw payload survives as data.
    let rows = sess.eval("selectAll t (sqlTrue)").unwrap();
    let body = rows.as_list().unwrap()[0].as_record().unwrap()["Body"]
        .as_str()
        .unwrap();
    assert!(body.contains("DROP TABLE"));
}

#[test]
fn stats_accumulate_monotonically() {
    let mut sess = Session::new().unwrap();
    let s0 = sess.stats().clone();
    sess.run(study("mktable").implementation()).unwrap();
    let s1 = sess.stats().clone();
    let d = s1.since(&s0);
    assert!(d.unify_calls > 0);
    assert!(d.row_normalizations > 0);
}

#[test]
fn usage_code_requires_no_fancy_types() {
    // Design principle 2, checked syntactically: no usage file contains a
    // kind annotation (`::`), a disjointness guard, or a `$` record-type
    // former — except the documented `fn (x : t) => ...` parameter
    // annotations and explicit name arguments, which mainstream languages
    // have.
    for s in studies() {
        if s.id == "folders" {
            // The folder-combinator usage is itself metaprogramming (it
            // defines a generic countFields); it is expert-facing.
            continue;
        }
        let usage = s.usage;
        assert!(
            !usage.contains("::"),
            "study {} usage contains a kind annotation",
            s.id
        );
        assert!(
            !usage.contains('~'),
            "study {} usage contains a disjointness constraint",
            s.id
        );
        assert!(
            !usage.contains('$'),
            "study {} usage contains a record-type former",
            s.id
        );
    }
}
