//! Property-based tests on the core invariants: the Figure-3 equational
//! theory realized by row normalization, unification soundness with
//! respect to definitional equality, disjointness-prover consistency, and
//! substrate round trips.

use proptest::prelude::*;
use std::rc::Rc;
use ur::core::con::{Con, RCon};
use ur::core::defeq::defeq;
use ur::core::disjoint::{prove, ProveResult};
use ur::core::env::Env;
use ur::core::kind::Kind;
use ur::core::prelude::Cx;
use ur::core::row::{canon_con, normalize_row};
use ur::core::sym::Sym;
use ur::infer::{unify, Unify};

/// A small pool of field names so that collisions actually happen.
fn field_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["A", "B", "C", "D", "E", "F", "G", "H"])
        .prop_map(|s| s.to_string())
}

fn prim_type() -> impl Strategy<Value = RCon> {
    prop::sample::select(vec![
        Con::int(),
        Con::float(),
        Con::string(),
        Con::bool_(),
    ])
}

/// A random literal row with distinct field names.
fn lit_row() -> impl Strategy<Value = Vec<(String, RCon)>> {
    lit_row_pub()
}

/// Public variant usable by submodules.
fn lit_row_pub() -> impl Strategy<Value = Vec<(String, RCon)>> {
    prop::collection::btree_map(field_name(), prim_type(), 0..6)
        .prop_map(|m| m.into_iter().collect())
}


fn to_row(fields: &[(String, RCon)]) -> RCon {
    Con::row_of(
        Kind::Type,
        fields
            .iter()
            .map(|(n, t)| (Con::name(n.as_str()), Rc::clone(t)))
            .collect(),
    )
}

/// Splits a row into a tree of concatenations following `shape` bits.
fn random_assoc(fields: &[(String, RCon)], shape: u64) -> RCon {
    if fields.is_empty() {
        return Con::row_nil(Kind::Type);
    }
    if fields.len() == 1 {
        return to_row(fields);
    }
    let mid = 1 + (shape as usize % (fields.len() - 1));
    Con::row_cat(
        random_assoc(&fields[..mid], shape / 2),
        random_assoc(&fields[mid..], shape / 3 + 1),
    )
}

proptest! {
    /// Any two concatenation trees over the same fields are definitionally
    /// equal (commutativity + associativity + unit, Figure 3).
    #[test]
    fn concat_trees_normalize_equally(fields in lit_row(), s1 in any::<u64>(), s2 in any::<u64>()) {
        let env = Env::new();
        let mut cx = Cx::new();
        let t1 = random_assoc(&fields, s1);
        let t2 = random_assoc(&fields, s2);
        prop_assert!(defeq(&env, &mut cx, &t1, &t2));
    }

    /// Normalization is idempotent: to_con of a normal form re-normalizes
    /// to the same canonical string.
    #[test]
    fn normalization_idempotent(fields in lit_row(), s in any::<u64>()) {
        let env = Env::new();
        let mut cx = Cx::new();
        let t = random_assoc(&fields, s);
        let n1 = normalize_row(&env, &mut cx, &t);
        let c1 = n1.to_con();
        let n2 = normalize_row(&env, &mut cx, &c1);
        prop_assert_eq!(canon_con(&n1.to_con()), canon_con(&n2.to_con()));
    }

    /// map identity is a definitional no-op on random rows.
    #[test]
    fn map_identity_noop(fields in lit_row(), s in any::<u64>()) {
        let env = Env::new();
        let mut cx = Cx::new();
        let t = random_assoc(&fields, s);
        let a = Sym::fresh("a");
        let idf = Con::lam(a.clone(), Kind::Type, Con::var(&a));
        let mapped = Con::map_app(Kind::Type, Kind::Type, idf, t.clone());
        prop_assert!(defeq(&env, &mut cx, &mapped, &t));
    }

    /// map distributes over any split of the fields.
    #[test]
    fn map_distributes(fields in lit_row(), split in any::<prop::sample::Index>()) {
        let env = Env::new();
        let mut cx = Cx::new();
        let k = if fields.is_empty() { 0 } else { split.index(fields.len() + 1) };
        let (l, r) = fields.split_at(k);
        let a = Sym::fresh("a");
        let f = Con::lam(a.clone(), Kind::Type, Con::arrow(Con::var(&a), Con::var(&a)));
        let whole = Con::map_app(
            Kind::Type, Kind::Type, f.clone(),
            Con::row_cat(to_row(l), to_row(r)),
        );
        let split_map = Con::row_cat(
            Con::map_app(Kind::Type, Kind::Type, f.clone(), to_row(l)),
            Con::map_app(Kind::Type, Kind::Type, f, to_row(r)),
        );
        prop_assert!(defeq(&env, &mut cx, &whole, &split_map));
    }

    /// If unification says Solved, the two sides are definitionally equal
    /// afterwards (soundness of the §4.3 heuristics).
    #[test]
    fn unify_solved_implies_defeq(fields in lit_row(), s1 in any::<u64>(), hole in any::<prop::sample::Index>()) {
        let env = Env::new();
        let mut cx = Cx::new();
        let full = to_row(&fields);
        // Left side: some prefix of the fields plus a metavariable tail.
        let k = if fields.is_empty() { 0 } else { hole.index(fields.len() + 1) };
        let m = cx.metas.fresh_con(Kind::row(Kind::Type), "tail");
        let left = Con::row_cat(random_assoc(&fields[..k], s1), m);
        match unify(&env, &mut cx, &left, &full) {
            Unify::Solved => prop_assert!(defeq(&env, &mut cx, &left, &full)),
            other => prop_assert!(false, "expected Solved, got {:?}", other),
        }
    }

    /// The disjointness prover agrees with literal-name set disjointness
    /// on closed rows.
    #[test]
    fn prover_matches_set_semantics(f1 in lit_row(), f2 in lit_row()) {
        let env = Env::new();
        let mut cx = Cx::new();
        let r1 = to_row(&f1);
        let r2 = to_row(&f2);
        let names1: std::collections::HashSet<&str> = f1.iter().map(|(n, _)| n.as_str()).collect();
        let names2: std::collections::HashSet<&str> = f2.iter().map(|(n, _)| n.as_str()).collect();
        let expected = if names1.is_disjoint(&names2) {
            ProveResult::Proved
        } else {
            ProveResult::Refuted
        };
        prop_assert_eq!(prove(&env, &mut cx, &r1, &r2), expected);
    }

    /// Projection typing agrees with the field map, whatever the
    /// concatenation shape.
    #[test]
    fn projection_finds_every_field(fields in lit_row(), s in any::<u64>()) {
        prop_assume!(!fields.is_empty());
        let env = Env::new();
        let mut cx = Cx::new();
        let t = random_assoc(&fields, s);
        let nf = normalize_row(&env, &mut cx, &t);
        for (n, ty) in &fields {
            let got = nf.field_lit(n).expect("field present");
            prop_assert!(defeq(&env, &mut cx, got, ty));
        }
        prop_assert_eq!(nf.fields.len(), fields.len());
    }
}

mod db_props {
    use proptest::prelude::*;
    use ur_db::{ColTy, Db, DbVal, Schema, SqlExpr};

    fn db_val() -> impl Strategy<Value = DbVal> {
        prop_oneof![
            any::<i64>().prop_map(DbVal::Int),
            "[ -~]{0,20}".prop_map(DbVal::Str),
        ]
    }

    proptest! {
        /// insert → select round-trips arbitrary strings (including quote
        /// and backslash torture) byte-for-byte.
        #[test]
        fn insert_select_roundtrip(s in "\\PC{0,40}") {
            let mut db = Db::new();
            db.create_table(
                "t",
                Schema::new(vec![("S".into(), ColTy::Str)]).unwrap(),
            ).unwrap();
            db.insert("t", &[("S".into(), SqlExpr::lit(DbVal::Str(s.clone())))]).unwrap();
            let rows = db.select("t", &SqlExpr::lit(DbVal::Bool(true))).unwrap();
            prop_assert_eq!(&rows[0][0], &DbVal::Str(s));
        }

        /// Rendered SQL literals never contain an unescaped quote.
        #[test]
        fn sql_literals_always_escaped(s in "\\PC{0,40}") {
            let lit = DbVal::Str(s).to_sql();
            let inner = &lit[1..lit.len() - 1];
            prop_assert!(!inner.replace("''", "").contains('\''));
        }

        /// delete removes exactly the matching rows.
        #[test]
        fn delete_is_exact(vals in prop::collection::vec(db_val(), 0..20)) {
            let mut db = Db::new();
            db.create_table(
                "t",
                Schema::new(vec![("A".into(), ColTy::Int)]).unwrap(),
            ).unwrap();
            let ints: Vec<i64> = vals.iter().filter_map(|v| match v {
                DbVal::Int(n) => Some(*n % 10),
                _ => None,
            }).collect();
            for n in &ints {
                db.insert("t", &[("A".into(), SqlExpr::lit(DbVal::Int(*n)))]).unwrap();
            }
            let pred = SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(3)));
            let removed = db.delete("t", &pred).unwrap();
            let expected = ints.iter().filter(|n| **n == 3).count();
            prop_assert_eq!(removed, expected);
            prop_assert_eq!(db.row_count("t").unwrap(), ints.len() - expected);
        }
    }
}

mod xml_props {
    use proptest::prelude::*;
    use ur::eval::value::{escape_attr, escape_text, XmlVal};

    proptest! {
        /// Rendered text never contains raw markup characters from the
        /// input.
        #[test]
        fn text_is_always_escaped(s in "\\PC{0,60}") {
            let rendered = XmlVal::Text(s).render();
            prop_assert!(!rendered.contains('<'));
            prop_assert!(!rendered.contains('>'));
        }

        /// Escaping is injective-enough: unescaping recovers the input.
        #[test]
        fn escape_roundtrip(s in "\\PC{0,60}") {
            let e = escape_text(&s);
            let back = e
                .replace("&lt;", "<")
                .replace("&gt;", ">")
                .replace("&amp;", "&");
            prop_assert_eq!(back, s);
        }

        /// Attribute escaping removes quotes.
        #[test]
        fn attrs_have_no_raw_quotes(s in "\\PC{0,60}") {
            let e = escape_attr(&s);
            prop_assert!(!e.contains('"'));
            prop_assert!(!e.contains('\''));
        }
    }
}

mod defeq_equivalence {
    //! Definitional equality is an equivalence relation on row-shaped
    //! constructors including `map` applications.

    use super::*;

    fn id_fun() -> RCon {
        let a = Sym::fresh("a");
        Con::lam(a.clone(), Kind::Type, Con::var(&a))
    }

    fn wrap_fun() -> RCon {
        let a = Sym::fresh("a");
        Con::lam(
            a.clone(),
            Kind::Type,
            Con::arrow(Con::var(&a), Con::var(&a)),
        )
    }

    /// Random row-shaped constructor: a concat tree, possibly under maps.
    fn mapped(fields: &[(String, RCon)], shape: u64, wraps: u8) -> RCon {
        let mut c = random_assoc_pub(fields, shape);
        for i in 0..(wraps % 3) {
            let f = if i % 2 == 0 { id_fun() } else { wrap_fun() };
            c = Con::map_app(Kind::Type, Kind::Type, f, c);
        }
        c
    }

    fn random_assoc_pub(fields: &[(String, RCon)], shape: u64) -> RCon {
        if fields.is_empty() {
            return Con::row_nil(Kind::Type);
        }
        if fields.len() == 1 {
            return Con::row_of(
                Kind::Type,
                fields
                    .iter()
                    .map(|(n, t)| (Con::name(n.as_str()), Rc::clone(t)))
                    .collect(),
            );
        }
        let mid = 1 + (shape as usize % (fields.len() - 1));
        Con::row_cat(
            random_assoc_pub(&fields[..mid], shape / 2),
            random_assoc_pub(&fields[mid..], shape / 3 + 1),
        )
    }

    proptest! {
        #[test]
        fn reflexive(fields in super::lit_row_pub(), s in any::<u64>(), w in any::<u8>()) {
            let env = Env::new();
            let mut cx = Cx::new();
            let c = mapped(&fields, s, w);
            prop_assert!(defeq(&env, &mut cx, &c, &c));
        }

        #[test]
        fn symmetric(fields in super::lit_row_pub(), s1 in any::<u64>(), s2 in any::<u64>(), w in any::<u8>()) {
            let env = Env::new();
            let mut cx = Cx::new();
            let c1 = mapped(&fields, s1, w);
            let c2 = mapped(&fields, s2, w);
            let fwd = defeq(&env, &mut cx, &c1, &c2);
            let bwd = defeq(&env, &mut cx, &c2, &c1);
            prop_assert_eq!(fwd, bwd);
        }

        #[test]
        fn transitive_on_reassociations(fields in super::lit_row_pub(), s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>()) {
            let env = Env::new();
            let mut cx = Cx::new();
            let c1 = random_assoc_pub(&fields, s1);
            let c2 = random_assoc_pub(&fields, s2);
            let c3 = random_assoc_pub(&fields, s3);
            prop_assert!(defeq(&env, &mut cx, &c1, &c2));
            prop_assert!(defeq(&env, &mut cx, &c2, &c3));
            prop_assert!(defeq(&env, &mut cx, &c1, &c3));
        }

        /// Identity-wrapped rows stay equal to the bare row, whatever the
        /// number of identity layers.
        #[test]
        fn identity_layers_are_invisible(fields in super::lit_row_pub(), s in any::<u64>(), layers in 0u8..4) {
            let env = Env::new();
            let mut cx = Cx::new();
            let bare = random_assoc_pub(&fields, s);
            let mut wrapped = bare.clone();
            for _ in 0..layers {
                wrapped = Con::map_app(Kind::Type, Kind::Type, id_fun(), wrapped);
            }
            prop_assert!(defeq(&env, &mut cx, &wrapped, &bare));
        }
    }
}
