//! Property-based tests on the core invariants: the Figure-3 equational
//! theory realized by row normalization, unification soundness with
//! respect to definitional equality, disjointness-prover consistency, and
//! substrate round trips.
//!
//! Randomness comes from the in-repo deterministic [`ur_testutil::Rng`]
//! (the build runs offline, so `proptest` is unavailable); every test
//! fixes its seed, so failures reproduce exactly.

use std::collections::BTreeMap;
use ur::core::con::{Con, RCon};
use ur::core::defeq::defeq;
use ur::core::disjoint::{prove, ProveResult};
use ur::core::env::Env;
use ur::core::kind::Kind;
use ur::core::prelude::Cx;
use ur::core::row::{canon_con, normalize_row};
use ur::core::sym::Sym;
use ur::infer::{unify, Unify};
use ur_testutil::Rng;

const CASES: usize = 128;

/// A small pool of field names so that collisions actually happen.
const NAME_POOL: &[&str] = &["A", "B", "C", "D", "E", "F", "G", "H"];

fn prim_type(rng: &mut Rng) -> RCon {
    match rng.below(4) {
        0 => Con::int(),
        1 => Con::float(),
        2 => Con::string(),
        _ => Con::bool_(),
    }
}

/// A random literal row with distinct field names (0..6 fields).
fn lit_row(rng: &mut Rng) -> Vec<(String, RCon)> {
    let n = rng.below(6);
    let mut m = BTreeMap::new();
    for _ in 0..n {
        let name = rng.pick(NAME_POOL).to_string();
        let ty = prim_type(rng);
        m.insert(name, ty);
    }
    m.into_iter().collect()
}

fn to_row(fields: &[(String, RCon)]) -> RCon {
    Con::row_of(
        Kind::Type,
        fields
            .iter()
            .map(|(n, t)| (Con::name(n.as_str()), (*t)))
            .collect(),
    )
}

/// Splits a row into a tree of concatenations following `shape` bits.
fn random_assoc(fields: &[(String, RCon)], shape: u64) -> RCon {
    if fields.is_empty() {
        return Con::row_nil(Kind::Type);
    }
    if fields.len() == 1 {
        return to_row(fields);
    }
    let mid = 1 + (shape as usize % (fields.len() - 1));
    Con::row_cat(
        random_assoc(&fields[..mid], shape / 2),
        random_assoc(&fields[mid..], shape / 3 + 1),
    )
}

/// Any two concatenation trees over the same fields are definitionally
/// equal (commutativity + associativity + unit, Figure 3).
#[test]
fn concat_trees_normalize_equally() {
    let mut rng = Rng::new(0xF16_3A01);
    for _ in 0..CASES {
        let fields = lit_row(&mut rng);
        let (s1, s2) = (rng.next_u64(), rng.next_u64());
        let env = Env::new();
        let mut cx = Cx::new();
        let t1 = random_assoc(&fields, s1);
        let t2 = random_assoc(&fields, s2);
        assert!(defeq(&env, &mut cx, &t1, &t2), "fields={fields:?}");
    }
}

/// Normalization is idempotent: to_con of a normal form re-normalizes
/// to the same canonical string.
#[test]
fn normalization_idempotent() {
    let mut rng = Rng::new(0xF16_3A02);
    for _ in 0..CASES {
        let fields = lit_row(&mut rng);
        let s = rng.next_u64();
        let env = Env::new();
        let mut cx = Cx::new();
        let t = random_assoc(&fields, s);
        let n1 = normalize_row(&env, &mut cx, &t);
        let c1 = n1.to_con();
        let n2 = normalize_row(&env, &mut cx, &c1);
        assert_eq!(canon_con(&n1.to_con()), canon_con(&n2.to_con()));
    }
}

/// map identity is a definitional no-op on random rows.
#[test]
fn map_identity_noop() {
    let mut rng = Rng::new(0xF16_3A03);
    for _ in 0..CASES {
        let fields = lit_row(&mut rng);
        let s = rng.next_u64();
        let env = Env::new();
        let mut cx = Cx::new();
        let t = random_assoc(&fields, s);
        let a = Sym::fresh("a");
        let idf = Con::lam(a, Kind::Type, Con::var(&a));
        let mapped = Con::map_app(Kind::Type, Kind::Type, idf, t);
        assert!(defeq(&env, &mut cx, &mapped, &t), "fields={fields:?}");
    }
}

/// map distributes over any split of the fields.
#[test]
fn map_distributes() {
    let mut rng = Rng::new(0xF16_3A04);
    for _ in 0..CASES {
        let fields = lit_row(&mut rng);
        let env = Env::new();
        let mut cx = Cx::new();
        let k = rng.below(fields.len() + 1);
        let (l, r) = fields.split_at(k);
        let a = Sym::fresh("a");
        let f = Con::lam(a, Kind::Type, Con::arrow(Con::var(&a), Con::var(&a)));
        let whole = Con::map_app(
            Kind::Type,
            Kind::Type,
            f,
            Con::row_cat(to_row(l), to_row(r)),
        );
        let split_map = Con::row_cat(
            Con::map_app(Kind::Type, Kind::Type, f, to_row(l)),
            Con::map_app(Kind::Type, Kind::Type, f, to_row(r)),
        );
        assert!(defeq(&env, &mut cx, &whole, &split_map), "fields={fields:?}");
    }
}

/// If unification says Solved, the two sides are definitionally equal
/// afterwards (soundness of the §4.3 heuristics).
#[test]
fn unify_solved_implies_defeq() {
    let mut rng = Rng::new(0xF16_3A05);
    for _ in 0..CASES {
        let fields = lit_row(&mut rng);
        let s1 = rng.next_u64();
        let env = Env::new();
        let mut cx = Cx::new();
        let full = to_row(&fields);
        // Left side: some prefix of the fields plus a metavariable tail.
        let k = rng.below(fields.len() + 1);
        let m = cx.metas.fresh_con(Kind::row(Kind::Type), "tail");
        let left = Con::row_cat(random_assoc(&fields[..k], s1), m);
        match unify(&env, &mut cx, &left, &full) {
            Unify::Solved => assert!(defeq(&env, &mut cx, &left, &full)),
            other => panic!("expected Solved, got {other:?} on fields={fields:?}"),
        }
    }
}

/// The disjointness prover agrees with literal-name set disjointness
/// on closed rows.
#[test]
fn prover_matches_set_semantics() {
    let mut rng = Rng::new(0xF16_3A06);
    for _ in 0..CASES {
        let f1 = lit_row(&mut rng);
        let f2 = lit_row(&mut rng);
        let env = Env::new();
        let mut cx = Cx::new();
        let r1 = to_row(&f1);
        let r2 = to_row(&f2);
        let names1: std::collections::HashSet<&str> =
            f1.iter().map(|(n, _)| n.as_str()).collect();
        let names2: std::collections::HashSet<&str> =
            f2.iter().map(|(n, _)| n.as_str()).collect();
        let expected = if names1.is_disjoint(&names2) {
            ProveResult::Proved
        } else {
            ProveResult::Refuted
        };
        assert_eq!(prove(&env, &mut cx, &r1, &r2), expected);
    }
}

/// Projection typing agrees with the field map, whatever the
/// concatenation shape.
#[test]
fn projection_finds_every_field() {
    let mut rng = Rng::new(0xF16_3A07);
    let mut done = 0;
    while done < CASES {
        let fields = lit_row(&mut rng);
        if fields.is_empty() {
            continue;
        }
        done += 1;
        let s = rng.next_u64();
        let env = Env::new();
        let mut cx = Cx::new();
        let t = random_assoc(&fields, s);
        let nf = normalize_row(&env, &mut cx, &t);
        for (n, ty) in &fields {
            let got = nf.field_lit(n).expect("field present");
            assert!(defeq(&env, &mut cx, got, ty));
        }
        assert_eq!(nf.fields.len(), fields.len());
    }
}

mod db_props {
    use ur_db::{ColTy, Db, DbVal, Schema, SqlExpr};
    use ur_testutil::Rng;

    fn db_val(rng: &mut Rng) -> DbVal {
        if rng.bool_() {
            DbVal::Int(rng.next_u64() as i64)
        } else {
            DbVal::Str(rng.torture_string(20))
        }
    }

    /// insert → select round-trips arbitrary strings (including quote
    /// and backslash torture) byte-for-byte.
    #[test]
    fn insert_select_roundtrip() {
        let mut rng = Rng::new(0xDB_0001);
        for _ in 0..super::CASES {
            let s = rng.torture_string(40);
            let mut db = Db::new();
            db.create_table("t", Schema::new(vec![("S".into(), ColTy::Str)]).unwrap())
                .unwrap();
            db.insert("t", &[("S".into(), SqlExpr::lit(DbVal::Str(s.clone())))])
                .unwrap();
            let rows = db.select("t", &SqlExpr::lit(DbVal::Bool(true))).unwrap();
            assert_eq!(&rows[0][0], &DbVal::Str(s));
        }
    }

    /// Rendered SQL literals never contain an unescaped quote.
    #[test]
    fn sql_literals_always_escaped() {
        let mut rng = Rng::new(0xDB_0002);
        for _ in 0..super::CASES {
            let s = rng.torture_string(40);
            let lit = DbVal::Str(s).to_sql();
            let inner = &lit[1..lit.len() - 1];
            assert!(!inner.replace("''", "").contains('\''));
        }
    }

    /// delete removes exactly the matching rows.
    #[test]
    fn delete_is_exact() {
        let mut rng = Rng::new(0xDB_0003);
        for _ in 0..super::CASES {
            let vals: Vec<DbVal> = (0..rng.below(20)).map(|_| db_val(&mut rng)).collect();
            let mut db = Db::new();
            db.create_table("t", Schema::new(vec![("A".into(), ColTy::Int)]).unwrap())
                .unwrap();
            let ints: Vec<i64> = vals
                .iter()
                .filter_map(|v| match v {
                    DbVal::Int(n) => Some(*n % 10),
                    _ => None,
                })
                .collect();
            for n in &ints {
                db.insert("t", &[("A".into(), SqlExpr::lit(DbVal::Int(*n)))])
                    .unwrap();
            }
            let pred = SqlExpr::eq(SqlExpr::col("A"), SqlExpr::lit(DbVal::Int(3)));
            let removed = db.delete("t", &pred).unwrap();
            let expected = ints.iter().filter(|n| **n == 3).count();
            assert_eq!(removed, expected);
            assert_eq!(db.row_count("t").unwrap(), ints.len() - expected);
        }
    }
}

mod xml_props {
    use ur::eval::value::{escape_attr, escape_text, XmlVal};
    use ur_testutil::Rng;

    /// Rendered text never contains raw markup characters from the
    /// input.
    #[test]
    fn text_is_always_escaped() {
        let mut rng = Rng::new(0x3117_0001);
        for _ in 0..super::CASES {
            let s = rng.torture_string(60);
            let rendered = XmlVal::Text(s).render();
            assert!(!rendered.contains('<'));
            assert!(!rendered.contains('>'));
        }
    }

    /// Escaping is injective-enough: unescaping recovers the input.
    #[test]
    fn escape_roundtrip() {
        let mut rng = Rng::new(0x3117_0002);
        for _ in 0..super::CASES {
            let s = rng.torture_string(60);
            let e = escape_text(&s);
            let back = e
                .replace("&lt;", "<")
                .replace("&gt;", ">")
                .replace("&amp;", "&");
            assert_eq!(back, s);
        }
    }

    /// Attribute escaping removes quotes.
    #[test]
    fn attrs_have_no_raw_quotes() {
        let mut rng = Rng::new(0x3117_0003);
        for _ in 0..super::CASES {
            let s = rng.torture_string(60);
            let e = escape_attr(&s);
            assert!(!e.contains('"'));
            assert!(!e.contains('\''));
        }
    }
}

mod defeq_equivalence {
    //! Definitional equality is an equivalence relation on row-shaped
    //! constructors including `map` applications.

    use super::*;

    fn id_fun() -> RCon {
        let a = Sym::fresh("a");
        Con::lam(a, Kind::Type, Con::var(&a))
    }

    fn wrap_fun() -> RCon {
        let a = Sym::fresh("a");
        Con::lam(a, Kind::Type, Con::arrow(Con::var(&a), Con::var(&a)))
    }

    /// Random row-shaped constructor: a concat tree, possibly under maps.
    fn mapped(fields: &[(String, RCon)], shape: u64, wraps: u8) -> RCon {
        let mut c = random_assoc(fields, shape);
        for i in 0..(wraps % 3) {
            let f = if i % 2 == 0 { id_fun() } else { wrap_fun() };
            c = Con::map_app(Kind::Type, Kind::Type, f, c);
        }
        c
    }

    #[test]
    fn reflexive() {
        let mut rng = Rng::new(0xDEF_E001);
        for _ in 0..CASES {
            let fields = lit_row(&mut rng);
            let s = rng.next_u64();
            let w = rng.below(256) as u8;
            let env = Env::new();
            let mut cx = Cx::new();
            let c = mapped(&fields, s, w);
            assert!(defeq(&env, &mut cx, &c, &c));
        }
    }

    #[test]
    fn symmetric() {
        let mut rng = Rng::new(0xDEF_E002);
        for _ in 0..CASES {
            let fields = lit_row(&mut rng);
            let (s1, s2) = (rng.next_u64(), rng.next_u64());
            let w = rng.below(256) as u8;
            let env = Env::new();
            let mut cx = Cx::new();
            let c1 = mapped(&fields, s1, w);
            let c2 = mapped(&fields, s2, w);
            let fwd = defeq(&env, &mut cx, &c1, &c2);
            let bwd = defeq(&env, &mut cx, &c2, &c1);
            assert_eq!(fwd, bwd);
        }
    }

    #[test]
    fn transitive_on_reassociations() {
        let mut rng = Rng::new(0xDEF_E003);
        for _ in 0..CASES {
            let fields = lit_row(&mut rng);
            let (s1, s2, s3) = (rng.next_u64(), rng.next_u64(), rng.next_u64());
            let env = Env::new();
            let mut cx = Cx::new();
            let c1 = random_assoc(&fields, s1);
            let c2 = random_assoc(&fields, s2);
            let c3 = random_assoc(&fields, s3);
            assert!(defeq(&env, &mut cx, &c1, &c2));
            assert!(defeq(&env, &mut cx, &c2, &c3));
            assert!(defeq(&env, &mut cx, &c1, &c3));
        }
    }

    /// Identity-wrapped rows stay equal to the bare row, whatever the
    /// number of identity layers.
    #[test]
    fn identity_layers_are_invisible() {
        let mut rng = Rng::new(0xDEF_E004);
        for _ in 0..CASES {
            let fields = lit_row(&mut rng);
            let s = rng.next_u64();
            let layers = rng.below(4);
            let env = Env::new();
            let mut cx = Cx::new();
            let bare = random_assoc(&fields, s);
            let mut wrapped = bare;
            for _ in 0..layers {
                wrapped = Con::map_app(Kind::Type, Kind::Type, id_fun(), wrapped);
            }
            assert!(defeq(&env, &mut cx, &wrapped, &bare));
        }
    }
}
