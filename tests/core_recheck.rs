//! The strongest internal soundness check: every elaborated value body of
//! every case study (and its usage code) must re-typecheck under the
//! declarative core judgment of Figure 4, with a type definitionally
//! equal to the one inference assigned.
//!
//! This replays the paper's §3.3 observation — the elaborative semantics
//! guarantees type preservation by construction — as an executable test.

use ur::core::defeq::defeq;
use ur::core::typing::type_of;
use ur::infer::ElabDecl;
use ur::studies::{studies, study};
use ur::Session;

fn recheck_session(sess: &mut Session, context: &str) {
    let decls = sess.elab.decls.clone();
    let env = sess.elab.genv.clone();
    let mut checked = 0;
    for d in &decls {
        if let ElabDecl::Val {
            name,
            ty,
            body: Some(body),
            ..
        } = d
        {
            let got = type_of(&env, &mut sess.elab.cx, body).unwrap_or_else(|e| {
                panic!("[{context}] core re-check of {name} failed: {e}\nterm: {body}")
            });
            assert!(
                defeq(&env, &mut sess.elab.cx, &got, ty),
                "[{context}] {name}: core says {got}, inference said {ty}"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "[{context}] nothing was checked");
}

#[test]
fn every_study_rechecks_in_core() {
    for s in studies() {
        let mut sess = Session::new().unwrap();
        fn load(sess: &mut Session, s: &ur::studies::Study) {
            for d in s.deps {
                load(sess, &study(d));
                sess.run(study(d).implementation()).unwrap();
            }
        }
        load(&mut sess, &s);
        sess.run(s.implementation())
            .unwrap_or_else(|e| panic!("{}: {e}", s.id));
        sess.run(s.usage).unwrap_or_else(|e| panic!("{} usage: {e}", s.id));
        recheck_session(&mut sess, s.id);
    }
}

#[test]
fn generated_folders_recheck_in_core() {
    // Folder generation (§4.4) emits core terms; they are inside the
    // elaborated bodies and therefore re-checked above, but this test
    // pins the mechanism in isolation with a wide record.
    let mut sess = Session::new().unwrap();
    sess.run(study("mktable").implementation()).unwrap();
    sess.run(
        "val wide = mkTable {C1 = {Label = \"1\", Show = showInt},\n\
                             C2 = {Label = \"2\", Show = showInt},\n\
                             C3 = {Label = \"3\", Show = showInt},\n\
                             C4 = {Label = \"4\", Show = showInt},\n\
                             C5 = {Label = \"5\", Show = showInt},\n\
                             C6 = {Label = \"6\", Show = showInt},\n\
                             C7 = {Label = \"7\", Show = showInt},\n\
                             C8 = {Label = \"8\", Show = showInt}}\n\
         val out = wide {C1 = 1, C2 = 2, C3 = 3, C4 = 4, C5 = 5, C6 = 6, C7 = 7, C8 = 8}",
    )
    .unwrap();
    recheck_session(&mut sess, "wide folder");
    // Field order in the output follows source order (§4.4).
    let out = sess.get_str("out").unwrap();
    let positions: Vec<usize> = (1..=8)
        .map(|i| out.find(&format!("<th>{i}</th>")).expect("column present"))
        .collect();
    let mut sorted = positions.clone();
    sorted.sort_unstable();
    assert_eq!(positions, sorted, "columns out of source order: {out}");
}

#[test]
fn prelude_primitives_have_wellformed_types() {
    let mut sess = Session::new().unwrap();
    let env = sess.elab.genv.clone();
    let decls = sess.elab.decls.clone();
    for d in &decls {
        if let ElabDecl::Val { name, ty, .. } = d {
            let k = ur::core::kinding::kind_of(&env, &mut sess.elab.cx, ty)
                .unwrap_or_else(|e| panic!("prelude {name}: {e}"));
            assert_eq!(
                format!("{k}"),
                "Type",
                "prelude {name} has kind {k}, expected Type"
            );
        }
    }
}
