//! Hash-consing and memoization properties: the interned core
//! ([`ur::core::intern`]) and the judgment memo tables
//! ([`ur::core::memo`]).
//!
//! Three layers of guarantees are pinned down here:
//!
//! 1. **Interning soundness/completeness** — structurally identical closed
//!    constructors built independently intern to the *same* node (pointer
//!    equality), and equal intern ids always imply definitional equality.
//! 2. **Memo transparency** — every memoized judgment (`hnf`, `defeq`,
//!    `normalize_row`, `prove`) returns the same answers with the memo
//!    tables enabled and disabled, on random inputs and on the adversarial
//!    fuel-exhaustion shapes.
//! 3. **End-to-end transparency** — the Figure-5 case studies elaborate to
//!    identical results with caching on and off, and the cached run
//!    actually hits the tables.
//!
//! Randomness comes from the deterministic [`ur_testutil::Rng`]; every
//! test fixes its seed, so failures reproduce exactly.

use ur::core::con::{Con, RCon};
use ur::core::defeq::defeq;
use ur::core::disjoint::prove;
use ur::core::env::Env;
use ur::core::intern;
use ur::core::kind::Kind;
use ur::core::prelude::Cx;
use ur::core::row::{canon_con, normalize_row};
use ur::core::sym::Sym;
use ur_testutil::Rng;

const CASES: usize = 96;

const NAME_POOL: &[&str] = &["A", "B", "C", "D", "E", "F", "G", "H"];

fn prim_type(rng: &mut Rng) -> RCon {
    match rng.below(4) {
        0 => Con::int(),
        1 => Con::float(),
        2 => Con::string(),
        _ => Con::bool_(),
    }
}

/// A random *closed* constructor (no variables, no metavariables) of
/// bounded depth. Two generators driven by equal-seeded `Rng`s produce
/// structurally identical terms, which is what the sharing tests exploit.
fn gen_closed(rng: &mut Rng, depth: u32) -> RCon {
    if depth == 0 {
        return prim_type(rng);
    }
    match rng.below(7) {
        0 => prim_type(rng),
        1 => Con::arrow(gen_closed(rng, depth - 1), gen_closed(rng, depth - 1)),
        2 => Con::pair(gen_closed(rng, depth - 1), gen_closed(rng, depth - 1)),
        3 => Con::name(*rng.pick(NAME_POOL)),
        4 => Con::row_one(Con::name(*rng.pick(NAME_POOL)), gen_closed(rng, depth - 1)),
        5 => Con::row_cat(
            Con::row_one(Con::name(*rng.pick(NAME_POOL)), gen_closed(rng, depth - 1)),
            Con::row_nil(Kind::Type),
        ),
        _ => Con::record(Con::row_one(
            Con::name(*rng.pick(NAME_POOL)),
            gen_closed(rng, depth - 1),
        )),
    }
}

/// A random literal row with distinct field names (0..6 fields).
fn lit_row(rng: &mut Rng) -> Vec<(String, RCon)> {
    let n = rng.below(6);
    let mut m = std::collections::BTreeMap::new();
    for _ in 0..n {
        m.insert(rng.pick(NAME_POOL).to_string(), prim_type(rng));
    }
    m.into_iter().collect()
}

fn to_row(fields: &[(String, RCon)]) -> RCon {
    Con::row_of(
        Kind::Type,
        fields
            .iter()
            .map(|(n, t)| (Con::name(n.as_str()), (*t)))
            .collect(),
    )
}

fn random_assoc(fields: &[(String, RCon)], shape: u64) -> RCon {
    if fields.is_empty() {
        return Con::row_nil(Kind::Type);
    }
    if fields.len() == 1 {
        return to_row(fields);
    }
    let mid = 1 + (shape as usize % (fields.len() - 1));
    Con::row_cat(
        random_assoc(&fields[..mid], shape / 2),
        random_assoc(&fields[mid..], shape / 3 + 1),
    )
}

/// A `Cx` with the memo tables switched off (interning still applies —
/// it is global and semantics-free).
fn uncached_cx() -> Cx {
    let mut cx = Cx::new();
    cx.memo.enabled = false;
    cx
}

// ---------------------------------------------------------------------
// 1. Interning: structural sharing and id-equality soundness.
// ---------------------------------------------------------------------

/// Independently built, structurally identical closed terms intern to
/// one shared node: handles are pointer-equal and carry one `ConId`.
#[test]
fn identical_builds_share_one_node() {
    for seed in 0..CASES as u64 {
        let mut r1 = Rng::new(0x1A7E_0000 + seed);
        let mut r2 = Rng::new(0x1A7E_0000 + seed);
        let a = gen_closed(&mut r1, 4);
        let b = gen_closed(&mut r2, 4);
        assert!(a == b, "hash-consing must share: {a} vs {b}");
        assert_eq!(intern::id_of(&a), intern::id_of(&b));
    }
}

/// Equal intern ids imply definitional equality (id equality is syntactic
/// equality, which is finer than defeq).
#[test]
fn id_equality_implies_defeq() {
    let mut rng = Rng::new(0x1A7E_1000);
    for _ in 0..CASES {
        let a = gen_closed(&mut rng, 4);
        let b = gen_closed(&mut rng, 4);
        let env = Env::new();
        let mut cx = Cx::new();
        if intern::id_of(&a) == intern::id_of(&b) {
            assert!(defeq(&env, &mut cx, &a, &b));
        }
        // Reflexivity is O(1) under hash-consing but must still hold.
        assert!(defeq(&env, &mut cx, &a, &a));
    }
}

/// Name literals are interned: equal labels share one `Rc<str>`.
#[test]
fn name_literals_are_pointer_shared() {
    let a = Con::name("SharedLabel");
    let b = Con::name(String::from("Shared") + "Label");
    match (&*a, &*b) {
        (Con::Name(x), Con::Name(y)) => {
            assert!(x == y, "labels must share one allocation");
        }
        _ => unreachable!(),
    }
}

/// Flags are conservative but exact on closed terms: a generated closed
/// constructor is always flagged closed.
#[test]
fn generated_closed_terms_are_flagged_closed() {
    let mut rng = Rng::new(0x1A7E_2000);
    for _ in 0..CASES {
        let c = gen_closed(&mut rng, 4);
        assert!(intern::flags_of(&c).is_closed(), "{c} must be closed");
    }
    // And a term with a variable is not.
    let v = Con::var(&Sym::fresh("x"));
    assert!(!intern::flags_of(&Con::arrow(v, Con::int())).is_closed());
}

/// 8-thread intern hammer: every thread races to build the *same*
/// deterministic term sequence, and the sharded arena must hand all of
/// them identical ids (same shallow key ⇒ same id), keep distinct terms
/// on distinct ids, and leave every id dereferenceable afterwards.
#[test]
fn hammer_concurrent_interning_agrees_across_threads() {
    use std::sync::{Arc, Barrier};

    const THREADS: usize = 8;
    const ROUNDS: u64 = 256;

    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                (0..ROUNDS)
                    .map(|seed| {
                        let mut rng = Rng::new(0x4A44_0000 + seed);
                        intern::id_of(&gen_closed(&mut rng, 4))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let per_thread: Vec<Vec<intern::ConId>> = handles
        .into_iter()
        .map(|h| h.join().expect("hammer thread must not panic"))
        .collect();

    // Same shallow key ⇒ same id, regardless of which thread interned it
    // first: all threads observed the identical id sequence.
    for (t, ids) in per_thread.iter().enumerate().skip(1) {
        assert_eq!(&per_thread[0], ids, "thread {t} disagrees on intern ids");
    }

    // Uniqueness: one id never names two structurally distinct terms.
    let mut seen: std::collections::HashMap<intern::ConId, String> =
        std::collections::HashMap::new();
    for (seed, id) in per_thread[0].iter().enumerate() {
        let mut rng = Rng::new(0x4A44_0000 + seed as u64);
        let printed = gen_closed(&mut rng, 4).to_string();
        if let Some(prev) = seen.insert(*id, printed.clone()) {
            assert_eq!(prev, printed, "id {id:?} maps to two distinct terms");
        }
    }

    // Stability: re-interning the same sequence afterwards (single
    // threaded, warm table) reproduces every id.
    for (seed, id) in per_thread[0].iter().enumerate() {
        let mut rng = Rng::new(0x4A44_0000 + seed as u64);
        assert_eq!(intern::id_of(&gen_closed(&mut rng, 4)), *id);
    }
}

// ---------------------------------------------------------------------
// 2. Memo transparency on random inputs.
// ---------------------------------------------------------------------

/// `defeq` answers agree between cached and uncached runs, and repeated
/// cached queries (which hit the table) agree with the first answer.
#[test]
fn defeq_memo_agrees_with_uncached() {
    let mut rng = Rng::new(0x3E30_0001);
    let env = Env::new();
    let mut cached = Cx::new();
    for _ in 0..CASES {
        let fields = lit_row(&mut rng);
        let (s1, s2) = (rng.next_u64(), rng.next_u64());
        let t1 = random_assoc(&fields, s1);
        let t2 = random_assoc(&lit_row(&mut rng), s2);
        let mut uncached = uncached_cx();
        let plain = defeq(&env, &mut uncached, &t1, &t2);
        let first = defeq(&env, &mut cached, &t1, &t2);
        let second = defeq(&env, &mut cached, &t1, &t2);
        assert_eq!(plain, first, "cached vs uncached on {t1} = {t2}");
        assert_eq!(first, second, "cache replay on {t1} = {t2}");
    }
    assert!(
        cached.stats.defeq_memo_hits > 0,
        "repeat queries must hit: {}",
        cached.stats
    );
}

/// Row normalization produces the same canonical form with and without
/// the memo table.
#[test]
fn row_memo_agrees_with_uncached() {
    let mut rng = Rng::new(0x3E30_0002);
    let env = Env::new();
    let mut cached = Cx::new();
    for _ in 0..CASES {
        let fields = lit_row(&mut rng);
        let t = random_assoc(&fields, rng.next_u64());
        let mut uncached = uncached_cx();
        let plain = normalize_row(&env, &mut uncached, &t);
        let first = normalize_row(&env, &mut cached, &t);
        let second = normalize_row(&env, &mut cached, &t);
        assert_eq!(canon_con(&plain.to_con()), canon_con(&first.to_con()));
        assert_eq!(canon_con(&first.to_con()), canon_con(&second.to_con()));
    }
    assert!(cached.stats.row_memo_hits > 0, "{}", cached.stats);
}

/// Disjointness verdicts agree between cached and uncached runs.
#[test]
fn disjoint_memo_agrees_with_uncached() {
    let mut rng = Rng::new(0x3E30_0003);
    let env = Env::new();
    let mut cached = Cx::new();
    for _ in 0..CASES {
        let r1 = to_row(&lit_row(&mut rng));
        let r2 = to_row(&lit_row(&mut rng));
        let mut uncached = uncached_cx();
        let plain = prove(&env, &mut uncached, &r1, &r2);
        let first = prove(&env, &mut cached, &r1, &r2);
        // The key is an unordered pair: the flipped query must hit too.
        let flipped = prove(&env, &mut cached, &r2, &r1);
        assert_eq!(plain, first, "cached vs uncached on {r1} ~ {r2}");
        assert_eq!(first, flipped, "symmetry of the verdict cache");
    }
    assert!(cached.stats.disjoint_memo_hits > 0, "{}", cached.stats);
}

/// `hnf` agrees between cached and uncached runs on reducible terms.
#[test]
fn hnf_memo_agrees_with_uncached() {
    let mut rng = Rng::new(0x3E30_0004);
    let env = Env::new();
    let mut cached = Cx::new();
    for _ in 0..CASES {
        // (fn a => a -> a) T, plus projections of pairs: all reducible.
        let t = gen_closed(&mut rng, 3);
        let a = Sym::fresh("a");
        let f = Con::lam(a, Kind::Type, Con::arrow(Con::var(&a), Con::var(&a)));
        let redex = match rng.below(3) {
            0 => Con::app(f, t),
            1 => Con::fst(Con::pair(t, Con::int())),
            _ => Con::snd(Con::pair(Con::int(), t)),
        };
        let mut uncached = uncached_cx();
        let plain = ur::core::hnf::hnf(&env, &mut uncached, &redex);
        let first = ur::core::hnf::hnf(&env, &mut cached, &redex);
        let second = ur::core::hnf::hnf(&env, &mut cached, &redex);
        // Hash-consing makes syntactic equality pointer equality.
        assert!(plain == first, "{plain} vs {first}");
        assert!(first == second);
    }
    assert!(cached.stats.hnf_memo_hits > 0, "{}", cached.stats);
}

/// Solving a metavariable invalidates earlier meta-dependent entries:
/// the memoized answer tracks the solution state, never a stale verdict.
#[test]
fn meta_solution_invalidates_stale_entries() {
    let env = Env::new();
    let mut cx = Cx::new();
    let m = cx.metas.fresh_con(Kind::Type, "t");
    // ?t vs int: not equal while unsolved...
    assert!(!defeq(&env, &mut cx, &m, &Con::int()));
    // ...then ?t := int makes the same query true; a stale cache entry
    // would keep answering false.
    let ur::core::con::Con::Meta(id) = &*m else {
        unreachable!()
    };
    cx.metas.solve(*id, Con::int());
    assert!(defeq(&env, &mut cx, &m, &Con::int()));
}

// ---------------------------------------------------------------------
// 3. Memo transparency on the adversarial fuel-exhaustion shapes.
// ---------------------------------------------------------------------

/// The deep near-miss arrow chain answers the same conservative `false`
/// with the memo on and off, and trips the same budget.
#[test]
fn adversarial_deep_defeq_same_with_and_without_memo() {
    let deep = |leaf: RCon, n: usize| {
        let mut c = leaf;
        for _ in 0..n {
            c = Con::arrow(c, Con::int());
        }
        c
    };
    let env = Env::new();
    let mut verdicts = Vec::new();
    for enabled in [true, false] {
        let mut cx = Cx::new();
        cx.memo.enabled = enabled;
        let (a, b) = (deep(Con::int(), 10_000), deep(Con::float(), 10_000));
        let eq = defeq(&env, &mut cx, &a, &b);
        verdicts.push((eq, cx.fuel.exhausted()));
    }
    assert_eq!(verdicts[0], verdicts[1], "memo must be transparent");
    assert!(!verdicts[0].0);
}

/// Repeated wide-row disjointness queries agree across cached runs even
/// under heavy reuse (the same pair asked many times).
#[test]
fn repeated_wide_disjoint_queries_are_stable() {
    let fields: Vec<(String, RCon)> = (0..64)
        .map(|i| (format!("F{i}"), Con::int()))
        .collect();
    let other: Vec<(String, RCon)> = (0..64)
        .map(|i| (format!("G{i}"), Con::int()))
        .collect();
    let env = Env::new();
    let mut cx = Cx::new();
    let (r1, r2) = (to_row(&fields), to_row(&other));
    let first = prove(&env, &mut cx, &r1, &r2);
    for _ in 0..100 {
        assert_eq!(prove(&env, &mut cx, &r1, &r2), first);
    }
    assert_eq!(first, ur::core::disjoint::ProveResult::Proved);
    assert!(cx.stats.disjoint_memo_hits >= 100);
    // Figure-5 counter semantics: every call counts, hit or miss.
    assert_eq!(cx.stats.disjoint_prover_calls, 101);
}

// ---------------------------------------------------------------------
// 4. End-to-end: Figure-5 case studies, cached vs uncached.
// ---------------------------------------------------------------------

/// Loads every §6 case study into two sessions — memo tables on and off —
/// and checks that elaboration produces identical declarations and the
/// usage demos identical values, while the cached run actually hits the
/// hnf/defeq/disjointness tables (an acceptance criterion of the
/// interning work).
#[test]
fn studies_elaborate_identically_cached_and_uncached() {
    let mut total_cached = ur::core::stats::Stats::new();
    for s in ur::studies::studies() {
        let cached = run_study_with_memo(&s, true, 1);
        let uncached = run_study_with_memo(&s, false, 1);
        assert_eq!(
            cached.0, uncached.0,
            "study {} must produce identical usage values",
            s.id
        );
        assert_eq!(
            cached.1, uncached.1,
            "study {} must elaborate identical declaration types",
            s.id
        );
        total_cached.absorb(&cached.2);
    }
    assert!(total_cached.hnf_memo_hits > 0, "{total_cached}");
    assert!(total_cached.defeq_memo_hits > 0, "{total_cached}");
    assert!(total_cached.disjoint_memo_hits > 0, "{total_cached}");
}

/// Memo transparency must survive the parallel scheduler: each worker
/// owns its *own* (initially cold) memo tables, so hit patterns differ
/// completely from the sequential warm-table run — while every
/// observable result stays identical.
#[test]
fn studies_elaborate_identically_cached_and_uncached_in_parallel() {
    for s in ur::studies::studies() {
        let sequential = run_study_with_memo(&s, true, 1);
        for threads in [2, 4] {
            let cached = run_study_with_memo(&s, true, threads);
            let uncached = run_study_with_memo(&s, false, threads);
            assert_eq!(
                cached.0, uncached.0,
                "study {} values diverge cached/uncached at {threads} threads",
                s.id
            );
            assert_eq!(
                cached.1, uncached.1,
                "study {} types diverge cached/uncached at {threads} threads",
                s.id
            );
            assert_eq!(
                sequential.0, cached.0,
                "study {} values diverge sequential/parallel",
                s.id
            );
            assert_eq!(
                sequential.1, cached.1,
                "study {} types diverge sequential/parallel",
                s.id
            );
        }
    }
}

/// Runs a study (dependencies, implementation, usage demo) in a fresh
/// session with the memo tables forced on or off and the given
/// elaboration thread count. Returns the usage values, the
/// pretty-printed types of all elaborated declarations, and the
/// session's final stats.
fn run_study_with_memo(
    s: &ur::studies::Study,
    enabled: bool,
    threads: usize,
) -> (Vec<(String, String)>, Vec<String>, ur::core::stats::Stats) {
    fn load(sess: &mut ur::Session, src: &str, what: &str) -> Vec<(String, ur::Value)> {
        let (vals, diags) = sess.run_all(src);
        assert!(diags.is_empty(), "{what} must load cleanly: {diags:?}");
        vals
    }
    fn load_deps(sess: &mut ur::Session, s: &ur::studies::Study) {
        for dep in s.deps {
            let d = ur::studies::study(dep);
            load_deps(sess, &d);
            load(sess, d.implementation(), d.id);
        }
    }
    let mut sess = ur::Session::new().expect("session");
    sess.elab.cx.memo.enabled = enabled;
    sess.threads = threads;
    load_deps(&mut sess, s);
    load(&mut sess, s.implementation(), s.id);
    let values: Vec<(String, String)> = load(&mut sess, s.usage, "usage")
        .into_iter()
        .map(|(n, v)| (n, v.to_string()))
        .collect();
    let types: Vec<String> = sess
        .elab
        .decls
        .iter()
        .map(|d| strip_sym_ids(&format!("{d:?}")))
        .collect();
    (values, types, sess.elab.cx.stats.clone())
}

/// Erases gensym counters (`foo#123` -> `foo#`) so that two sessions run
/// back to back — which draw different fresh-symbol numbers from the
/// process-global counter — compare structurally.
fn strip_sym_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == '#' {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
        }
    }
    out
}
