//! Arena growth bound (tentpole acceptance test): repeated sessions must
//! not grow the shared intern arena without bound.
//!
//! Every `Session` takes an [`ur::core::arena::ArenaLease`]; while any
//! lease is live, [`ur::core::arena::try_reset`] refuses to run, and once
//! the last session drops the arena may be drained in place (generation
//! bump, hash-cons maps cleared, dependent global caches — the shared
//! memo layer — cleared through the reset hooks).
//!
//! This lives in its own test binary on purpose: `try_reset` demands
//! process-wide quiescence, which concurrent tests in a shared binary
//! could not guarantee.

use ur::core::arena;

const SRC: &str = "val r = { A = 1, B = \"two\", C = 40 + 2 }\n\
                   val total = r.A + r.C\n\
                   val label = r.B";

/// One full session cycle: build, elaborate, evaluate, drop.
fn run_cycle() {
    let mut sess = ur::Session::new().expect("session");
    let (vals, diags) = sess.run_all(SRC);
    assert!(diags.is_empty(), "cycle must elaborate cleanly: {diags:?}");
    assert_eq!(vals.len(), 3);
}

#[test]
fn arena_growth_is_bounded_over_100_session_cycles() {
    // While a session is alive its lease must veto the reset.
    {
        let sess = ur::Session::new().expect("session");
        assert!(arena::lease_count() >= 1);
        assert!(!arena::try_reset(), "live lease must block reset");
        drop(sess);
    }

    // Establish the per-cycle footprint: one cycle from a clean slate.
    assert!(arena::try_reset(), "quiescent arena must reset");
    run_cycle();
    let per_cycle = arena::stats();
    assert!(per_cycle.con_nodes > 0, "a cycle must intern terms");
    let bound = (per_cycle.con_nodes + per_cycle.expr_nodes) * 2;

    let gen_before = arena::generation();
    for i in 0..100 {
        assert!(
            arena::try_reset(),
            "cycle {i}: no live sessions, reset must run"
        );
        run_cycle();
        let s = arena::stats();
        assert!(
            s.con_nodes + s.expr_nodes <= bound,
            "cycle {i}: arena grew past the per-cycle bound: \
             {} + {} > {bound}",
            s.con_nodes,
            s.expr_nodes,
        );
    }
    assert_eq!(
        arena::generation(),
        gen_before + 100,
        "every reset must bump the generation"
    );

    // A reset drains the term stores entirely (strings survive — labels
    // may be cached in diagnostics beyond term lifetime).
    assert!(arena::try_reset());
    let drained = arena::stats();
    assert_eq!(drained.con_nodes, 0);
    assert_eq!(drained.expr_nodes, 0);

    // And the global memo layer drained with it (reset hook).
    let sizes = ur::core::memo::global_sizes();
    assert_eq!(sizes, (0, 0, 0, 0), "reset hook must clear the global memo");

    // The arena remains fully serviceable after many resets.
    run_cycle();
}
