//! Sequential-vs-parallel differential suite for batch elaboration.
//!
//! The parallel scheduler (`ur_infer::batch`) promises *bit-identical
//! observable results* at any thread count: the same declarations (up to
//! fresh symbol ids), the same span-sorted diagnostics, and the same
//! error recovery as the sequential path. This suite pins that promise
//! down on three corpora:
//!
//! 1. the §6 case studies (the Figure-5 suite), elaborated and run
//!    end-to-end;
//! 2. the adversarial corpus from `tests/adversarial.rs` — multi-error
//!    programs, hostile shapes, unbound names, shadowing-with-failure;
//! 3. randomly generated batches, under random permutation and sharding
//!    (deterministic [`ur_testutil::Rng`], fixed seeds).
//!
//! Thread counts 1, 2, and 8 are compared pairwise; 1 routes through the
//! sequential path, so equality at 2 and 8 *is* the differential oracle.

use ur::infer::Diagnostics;
use ur::Session;
use ur_testutil::Rng;

const THREADS: &[usize] = &[1, 2, 8];

/// Erases gensym counters (`foo#123` -> `foo#`) so runs that draw
/// different fresh-symbol numbers from the process-global counter compare
/// structurally.
fn strip_sym_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == '#' {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
        }
    }
    out
}

/// Elaborates `src` in a fresh session (prelude installed) at the given
/// thread count, without evaluating. Returns the normalized debug form
/// of every newly elaborated declaration plus the diagnostics.
fn elab_at(src: &str, threads: usize) -> (Vec<String>, Diagnostics) {
    let mut sess = Session::new().expect("session");
    let (decls, diags) = sess.elab.elab_source_all_threads(src, threads);
    let decls = decls
        .iter()
        .map(|d| strip_sym_ids(&format!("{d:?}")))
        .collect();
    (decls, diags)
}

/// Elaborates *and evaluates* `src` at the given thread count, returning
/// printed values and diagnostics.
fn run_at(src: &str, threads: usize) -> (Vec<(String, String)>, Diagnostics) {
    let mut sess = Session::new().expect("session");
    sess.threads = threads;
    let (vals, diags) = sess.run_all(src);
    let vals = vals.into_iter().map(|(n, v)| (n, v.to_string())).collect();
    (vals, diags)
}

fn assert_span_sorted(diags: &Diagnostics, ctx: &str) {
    for w in diags.windows(2) {
        assert!(
            w[0].span <= w[1].span,
            "{ctx}: diagnostics not span-sorted: {} before {}",
            w[0],
            w[1]
        );
    }
}

/// The differential oracle: elaborate at every thread count and require
/// identical declarations and identical, span-sorted diagnostics.
fn assert_identical_across_threads(src: &str, ctx: &str) {
    let (base_decls, base_diags) = elab_at(src, THREADS[0]);
    assert_span_sorted(&base_diags, ctx);
    for &t in &THREADS[1..] {
        let (decls, diags) = elab_at(src, t);
        assert_eq!(base_decls, decls, "{ctx}: decls diverge at {t} threads");
        assert_eq!(base_diags, diags, "{ctx}: diags diverge at {t} threads");
        assert_span_sorted(&diags, ctx);
    }
}

/// One combined source for a study: all transitive dependency
/// implementations (depth-first, deduplicated), then the study's own
/// implementation, then its usage demo.
fn combined_study_source(s: &ur::studies::Study) -> String {
    fn push(out: &mut Vec<&'static str>, s: &ur::studies::Study) {
        for dep in s.deps {
            push(out, &ur::studies::study(dep));
        }
        let impl_src = s.implementation();
        if !out.contains(&impl_src) {
            out.push(impl_src);
        }
    }
    let mut parts = Vec::new();
    push(&mut parts, s);
    parts.push(s.usage);
    parts.join("\n")
}

// ---------------------------------------------------------------------
// 1. Case studies
// ---------------------------------------------------------------------

#[test]
fn case_studies_elaborate_identically_across_thread_counts() {
    for s in ur::studies::studies() {
        let src = combined_study_source(&s);
        let (decls, diags) = elab_at(&src, 1);
        assert!(
            diags.is_empty(),
            "study {} must be clean sequentially: {:?}",
            s.id,
            diags
        );
        assert!(!decls.is_empty(), "study {} elaborates nothing", s.id);
        assert_identical_across_threads(&src, s.id);
    }
}

#[test]
fn case_studies_run_identically_across_thread_counts() {
    for s in ur::studies::studies() {
        let src = combined_study_source(&s);
        let (base_vals, base_diags) = run_at(&src, 1);
        assert!(base_diags.is_empty(), "study {}: {:?}", s.id, base_diags);
        for &t in &THREADS[1..] {
            let (vals, diags) = run_at(&src, t);
            assert_eq!(base_vals, vals, "study {} values diverge at {t}", s.id);
            assert_eq!(base_diags, diags, "study {} diags diverge at {t}", s.id);
        }
    }
}

#[test]
fn combined_figure5_batch_is_schedule_independent() {
    // The whole suite in one batch — the benchmark workload — must also
    // agree across thread counts.
    let mut parts: Vec<&'static str> = Vec::new();
    for s in ur::studies::studies() {
        let impl_src = s.implementation();
        if !parts.contains(&impl_src) {
            parts.push(impl_src);
        }
    }
    let src = parts.join("\n");
    assert_identical_across_threads(&src, "combined figure-5 batch");
}

// ---------------------------------------------------------------------
// 2. Adversarial corpus
// ---------------------------------------------------------------------

/// Hostile inputs drawn from `tests/adversarial.rs`: every entry must
/// yield identical outcomes at every thread count — including the ones
/// whose whole point is to fail.
const ADVERSARIAL: &[(&str, &str)] = &[
    (
        "multi-error",
        "val a : int = \"not an int\"\nval b = missingVariable\nval c : string = 42\nval good = 7",
    ),
    ("unbound", "val x = definitelyNotDefined"),
    ("self-application", "val omega = fn x => x x"),
    (
        "bad-disjointness",
        "val r = {A = 1} ++ {A = 2}\nval ok = 3",
    ),
    (
        "shadow-then-use",
        "val x = 1\nval x = \"two\"\nval y = x",
    ),
    (
        "failed-shadow-falls-back",
        "val x = 1\nval x = missingName\nval y = x",
    ),
    (
        "forward-reference",
        "val a = laterName\nval laterName = 2\nval b = laterName",
    ),
    (
        "type-shadowing",
        "con t :: Type = int\ncon t :: Type = string\nval v : t = \"s\"",
    ),
    (
        "mixed-good-bad",
        "val one = 1\nval bad : string = one\nval two = one + one",
    ),
    ("dup-field-concat", "val u = {A = 1, A = 2} ++ {A = 3}"),
    ("both-sides-missing", "val v = missing ++ alsoMissing"),
    ("kind-error", "con k :: Type = #A #B #C\nval after = 1"),
    ("unterminated-string", "val s = \"unterminated"),
    ("trailing-parens", "val x = ((("),
    ("missing-binder", "val = 3\nval ok = 4"),
    (
        "wide-independent-with-errors",
        "val a = 1\nval b = a + missing1\nval c = 2\nval d = c + missing2\nval e = a + c",
    ),
    (
        "let-local-con-escapes",
        "val y = let con t = int val v : t = 5 in v end\nval z = y + 1",
    ),
];

#[test]
fn adversarial_corpus_is_schedule_independent() {
    for (name, src) in ADVERSARIAL {
        assert_identical_across_threads(src, name);
    }
}

#[test]
fn multi_error_diagnostics_are_complete_and_span_sorted_at_any_thread_count() {
    let src =
        "val a : int = \"not an int\"\nval b = missingVariable\nval c : string = 42\nval good = 7";
    for &t in THREADS {
        let (decls, diags) = elab_at(src, t);
        assert_eq!(diags.len(), 3, "at {t} threads: {diags:?}");
        assert_eq!(decls.len(), 1, "only `good` elaborates at {t} threads");
        assert_span_sorted(&diags, "multi-error");
        let lines: Vec<u32> = diags.iter().map(|d| d.span.line).collect();
        assert_eq!(lines, vec![1, 2, 3], "at {t} threads");
    }
}

#[test]
fn error_recovery_falls_back_to_earlier_binder_at_any_thread_count() {
    // The second `x` fails, so `y` must see the *first* `x` — the
    // sequential recovery rule the dependency graph encodes by drawing
    // edges to every earlier binder, not just the latest.
    let src = "val x = 1\nval x = missingName\nval y = x + 1";
    let (base_vals, base_diags) = run_at(src, 1);
    assert_eq!(base_diags.len(), 1);
    assert!(
        base_vals.iter().any(|(n, v)| n == "y" && v == "2"),
        "sequential run must compute y = 2: {base_vals:?}"
    );
    for &t in &THREADS[1..] {
        let (vals, diags) = run_at(src, t);
        assert_eq!(base_vals, vals, "at {t} threads");
        assert_eq!(base_diags, diags, "at {t} threads");
    }
}

// ---------------------------------------------------------------------
// 3. Random permutations and shards
// ---------------------------------------------------------------------

/// A pool of independent well-formed declaration groups; any subset in
/// any order is a valid program.
fn gen_groups(rng: &mut Rng, n: usize) -> Vec<String> {
    (0..n)
        .map(|i| match rng.below(5) {
            0 => format!("val int{i} = {}", rng.range_i64(0, 1000)),
            1 => format!(
                "val rec{i} = {{A{i} = {}, B{i} = \"s{i}\"}}",
                rng.range_i64(0, 100)
            ),
            2 => format!(
                "con ty{i} :: Type = int\nval use{i} : ty{i} = {}",
                rng.range_i64(0, 50)
            ),
            3 => format!(
                "fun f{i} [t :: Type] (x : t) = x\nval app{i} = f{i} {}",
                rng.range_i64(0, 9)
            ),
            _ => format!("val sum{i} = {} + {}", rng.below(100), rng.below(100)),
        })
        .collect()
}

fn shuffle<T>(rng: &mut Rng, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        let j = rng.below(i + 1);
        items.swap(i, j);
    }
}

#[test]
fn random_permuted_batches_are_schedule_independent() {
    let mut rng = Rng::new(0xba7c_5eed);
    for round in 0..6 {
        let mut groups = gen_groups(&mut rng, 12);
        shuffle(&mut rng, &mut groups);
        let src = groups.join("\n");
        assert_identical_across_threads(&src, &format!("permutation round {round}"));
    }
}

#[test]
fn random_batches_with_dependency_chains_are_schedule_independent() {
    let mut rng = Rng::new(0xc4a1f00d);
    for round in 0..4 {
        let mut src = String::from("val base = 1\n");
        let mut prev = "base".to_string();
        for i in 0..10 {
            // Mix chain links (depend on the previous value) with
            // independent declarations, so the graph has both width and
            // depth.
            if rng.bool_() {
                src.push_str(&format!("val chain{round}_{i} = {prev} + 1\n"));
                prev = format!("chain{round}_{i}");
            } else {
                src.push_str(&format!("val solo{round}_{i} = {}\n", rng.below(100)));
            }
        }
        src.push_str(&format!("val last{round} = {prev}\n"));
        assert_identical_across_threads(&src, &format!("chain round {round}"));
    }
}

#[test]
fn sharded_elaboration_matches_single_batch() {
    // Splitting one batch into consecutive `run_all` calls must not
    // change the outcome, at any thread count.
    let mut rng = Rng::new(0x5aa2ded);
    let groups = gen_groups(&mut rng, 9);
    let whole = groups.join("\n");
    let (base_vals, base_diags) = run_at(&whole, 1);
    assert!(base_diags.is_empty(), "{base_diags:?}");
    for &t in THREADS {
        let mut sess = Session::new().expect("session");
        sess.threads = t;
        let mut vals: Vec<(String, String)> = Vec::new();
        let mut diags = Diagnostics::new();
        for shard in groups.chunks(3) {
            let (v, d) = sess.run_all(&shard.join("\n"));
            vals.extend(v.into_iter().map(|(n, v)| (n, v.to_string())));
            diags.extend(d);
        }
        assert_eq!(base_vals, vals, "sharded at {t} threads");
        assert!(diags.is_empty(), "sharded at {t} threads: {diags:?}");
    }
}

// ---------------------------------------------------------------------
// 4. Scheduler bookkeeping
// ---------------------------------------------------------------------

#[test]
fn parallel_runs_record_worker_stats() {
    let mut sess = Session::new().expect("session");
    sess.threads = 4;
    let (_, diags) = sess.run_all("val a = 1\nval b = 2\nval c = 3\nval d = 4");
    assert!(diags.is_empty(), "{diags:?}");
    let stats = &sess.elab.cx.stats;
    assert_eq!(stats.par_batches, 1, "{stats}");
    assert_eq!(stats.par_decls, 4, "{stats}");
    assert!(stats.par_workers >= 1 && stats.par_workers <= 4, "{stats}");
}

#[test]
fn single_threaded_runs_do_not_count_as_parallel() {
    let mut sess = Session::new().expect("session");
    sess.threads = 1;
    let (_, diags) = sess.run_all("val a = 1\nval b = 2");
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(sess.elab.cx.stats.par_batches, 0);
}
