//! Keeps docs/TUTORIAL.md honest: every behaviour it shows is executed
//! here.

use ur::Session;

#[test]
fn record_basics() {
    let mut sess = Session::new().unwrap();
    sess.run("val p = {Name = \"ada\", Age = 36}").unwrap();
    assert_eq!(
        sess.eval("p.Name").unwrap().to_string(),
        "\"ada\""
    );
    assert_eq!(
        sess.eval("p -- Age").unwrap().to_string(),
        "{Name = \"ada\"}"
    );
    assert_eq!(
        sess.eval("{A = 1} ++ {B = 2}").unwrap().to_string(),
        "{A = 1, B = 2}"
    );
}

#[test]
fn record_types_are_unordered() {
    let mut sess = Session::new().unwrap();
    // Without the disjointness constraint the annotation itself is
    // rejected (the concatenation might repeat #A) ...
    assert!(sess
        .run("fun first0 [r :: {Type}] (x : $([A = int] ++ r)) = x.A")
        .is_err());
    // ... and with it, fields may be passed in any order.
    sess.run(
        "fun first [r :: {Type}] [[A] ~ r] (x : $([A = int] ++ r)) = x.A\n\
         val a = first {B = 2.0, A = 7}",
    )
    .unwrap();
    assert_eq!(sess.get_int("a").unwrap(), 7);
}

#[test]
fn explicit_instantiation_recovers_incomplete_inference() {
    // The tutorial's §7 claim.
    let mut sess = Session::new().unwrap();
    sess.run("fun id2 [f :: (Type -> Type)] [t :: Type] (x : f t) : f t = x")
        .unwrap();
    assert!(sess.run("val bad = id2 0").is_err());
    sess.run("val good = id2 [fn t => t] [int] 0").unwrap();
    assert_eq!(sess.get_int("good").unwrap(), 0);
}

#[test]
fn typed_sql_tour() {
    let mut sess = Session::new().unwrap();
    sess.run(
        "val t = createTable \"people\" {Name = sqlString, Age = sqlInt}\n\
         val u = insert t {Name = const \"alice\", Age = const 30}",
    )
    .unwrap();
    let rows = sess
        .eval("selectAll t (sqlLt (column [#Age]) (const 40))")
        .unwrap();
    assert_eq!(
        rows.to_string(),
        "[{Age = 30, Name = \"alice\"}]"
    );
    // Wrong-schema predicate is a type error.
    assert!(sess
        .eval("selectAll t (sqlLt (column [#Height]) (const 40))")
        .is_err());
}

#[test]
fn type_of_query() {
    let mut sess = Session::new().unwrap();
    let t = sess.type_of("{A = 1, B = 2.3}").unwrap();
    let shown = t.to_string();
    assert!(shown.contains("#A = int") && shown.contains("#B = float"), "{shown}");
}
