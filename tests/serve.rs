//! End-to-end tests for `urc --serve` hardening and `--db-dir`
//! durability wiring, driving the real binary over pipes.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

fn urc() -> &'static str {
    env!("CARGO_BIN_EXE_urc")
}

fn spawn_serve(extra: &[&str]) -> Child {
    Command::new(urc())
        .arg("--serve")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn urc --serve")
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ur-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn serve_survives_oversized_and_malformed_requests() {
    let mut child = spawn_serve(&[]);
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();

    // 1. A request far past the 8 MiB cap: answered with a structured
    //    error, never buffered whole, and the session stays up.
    let big = vec![b'x'; 9 * 1024 * 1024];
    stdin.write_all(&big).unwrap();
    stdin.write_all(b"\n").unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("limit"), "{resp}");

    // 2. Malformed JSON: a per-request error, not a teardown.
    stdin.write_all(b"this is not json\n").unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("\"ok\":false"), "{resp}");

    // 3. The same session still answers real requests.
    stdin.write_all(b"{\"cmd\":\"stats\"}\n").unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");

    stdin.write_all(b"{\"cmd\":\"quit\"}\n").unwrap();
    stdin.flush().unwrap();
    let status = child.wait().unwrap();
    assert!(status.success(), "{status:?}");
}

#[test]
fn serve_reports_db_and_elaborates_after_errors() {
    let mut child = spawn_serve(&[]);
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();

    // A load with a type error is a normal response with diagnostics.
    stdin
        .write_all(b"{\"cmd\":\"load\",\"source\":\"val bad : int = \\\"nope\\\"\"}\n")
        .unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"diagnostics\":["), "{resp}");

    // The db report names the in-memory mode.
    stdin.write_all(b"{\"cmd\":\"db\"}\n").unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("in-memory"), "{resp}");

    stdin.write_all(b"{\"cmd\":\"quit\"}\n").unwrap();
    stdin.flush().unwrap();
    assert!(child.wait().unwrap().success());
}

#[test]
fn db_dir_effects_survive_across_processes() {
    let dir = tmpdir("dbdir");
    let src_path = std::env::temp_dir().join(format!("ur-serve-src-{}.ur", std::process::id()));
    std::fs::write(
        &src_path,
        "val t = createTable \"people\" {Name = sqlString}\n\
         val u = insert t {Name = const \"alice\"}\n",
    )
    .unwrap();

    // First process: run the program with a durable database.
    let status = Command::new(urc())
        .args(["--db-dir", dir.to_str().unwrap(), src_path.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "first urc run failed");
    assert!(dir.join("wal.log").exists(), "no WAL was written");

    // Second process: a serve session over the same directory recovers
    // the committed row.
    let mut child = spawn_serve(&["--db-dir", dir.to_str().unwrap()]);
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    stdin.write_all(b"{\"cmd\":\"db\"}\n").unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("durable"), "{resp}");
    assert!(resp.contains("people: 1 row(s)"), "{resp}");
    stdin.write_all(b"{\"cmd\":\"quit\"}\n").unwrap();
    stdin.flush().unwrap();
    assert!(child.wait().unwrap().success());

    // An empty --db-dir means in-memory: nothing is read or written.
    let status = Command::new(urc())
        .args(["--db-dir", "", "--eval", "1 + 1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "empty --db-dir run failed");

    let _ = std::fs::remove_file(&src_path);
    let _ = std::fs::remove_dir_all(&dir);
}
