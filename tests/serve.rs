//! End-to-end tests for `urc --serve` hardening, the `--listen` TCP
//! front door, and `--db-dir` durability wiring, driving the real
//! binary over pipes and sockets.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

fn urc() -> &'static str {
    env!("CARGO_BIN_EXE_urc")
}

fn spawn_serve(extra: &[&str]) -> Child {
    Command::new(urc())
        .arg("--serve")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn urc --serve")
}

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ur-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn serve_survives_oversized_and_malformed_requests() {
    let mut child = spawn_serve(&[]);
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();

    // 1. A request far past the 8 MiB cap: answered with a structured
    //    error, never buffered whole, and the session stays up.
    let big = vec![b'x'; 9 * 1024 * 1024];
    stdin.write_all(&big).unwrap();
    stdin.write_all(b"\n").unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("\"ok\":false"), "{resp}");
    assert!(resp.contains("limit"), "{resp}");

    // 2. Malformed JSON: a per-request error, not a teardown.
    stdin.write_all(b"this is not json\n").unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("\"ok\":false"), "{resp}");

    // 3. The same session still answers real requests.
    stdin.write_all(b"{\"cmd\":\"stats\"}\n").unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");

    stdin.write_all(b"{\"cmd\":\"quit\"}\n").unwrap();
    stdin.flush().unwrap();
    let status = child.wait().unwrap();
    assert!(status.success(), "{status:?}");
}

#[test]
fn serve_reports_db_and_elaborates_after_errors() {
    let mut child = spawn_serve(&[]);
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();

    // A load with a type error is a normal response with diagnostics.
    stdin
        .write_all(b"{\"cmd\":\"load\",\"source\":\"val bad : int = \\\"nope\\\"\"}\n")
        .unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"diagnostics\":["), "{resp}");

    // The db report names the in-memory mode.
    stdin.write_all(b"{\"cmd\":\"db\"}\n").unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("in-memory"), "{resp}");

    stdin.write_all(b"{\"cmd\":\"quit\"}\n").unwrap();
    stdin.flush().unwrap();
    assert!(child.wait().unwrap().success());
}

#[test]
fn db_dir_effects_survive_across_processes() {
    let dir = tmpdir("dbdir");
    let src_path = std::env::temp_dir().join(format!("ur-serve-src-{}.ur", std::process::id()));
    std::fs::write(
        &src_path,
        "val t = createTable \"people\" {Name = sqlString}\n\
         val u = insert t {Name = const \"alice\"}\n",
    )
    .unwrap();

    // First process: run the program with a durable database.
    let status = Command::new(urc())
        .args(["--db-dir", dir.to_str().unwrap(), src_path.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "first urc run failed");
    assert!(dir.join("wal.log").exists(), "no WAL was written");

    // Second process: a serve session over the same directory recovers
    // the committed row.
    let mut child = spawn_serve(&["--db-dir", dir.to_str().unwrap()]);
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    stdin.write_all(b"{\"cmd\":\"db\"}\n").unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("durable"), "{resp}");
    assert!(resp.contains("people: 1 row(s)"), "{resp}");
    stdin.write_all(b"{\"cmd\":\"quit\"}\n").unwrap();
    stdin.flush().unwrap();
    assert!(child.wait().unwrap().success());

    // An empty --db-dir means in-memory: nothing is read or written.
    let status = Command::new(urc())
        .args(["--db-dir", "", "--eval", "1 + 1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "empty --db-dir run failed");

    let _ = std::fs::remove_file(&src_path);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pin for the serve-mode exit protocol: `quit` answers, then a final
/// `{"event":"final","stats":…}` line is flushed and the process exits
/// 0. Same on bare EOF — scripted drivers that just close the pipe
/// still get the session's counters.
#[test]
fn serve_flushes_final_stats_on_quit_and_eof() {
    // Quit path.
    let mut child = spawn_serve(&[]);
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    stdin
        .write_all(b"{\"cmd\":\"load\",\"source\":\"val x = 1\"}\n{\"cmd\":\"quit\"}\n")
        .unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let resp = lines.next().unwrap().unwrap();
    assert_eq!(resp, "{\"ok\":true}", "quit ack first");
    let fin = lines.next().unwrap().unwrap();
    assert!(fin.contains("\"event\":\"final\""), "{fin}");
    assert!(fin.contains("\"stats\":\""), "{fin}");
    assert!(lines.next().is_none(), "final line is last");
    assert!(child.wait().unwrap().success());

    // EOF path: no quit, just a closed pipe.
    let mut child = spawn_serve(&[]);
    let mut stdin = child.stdin.take().unwrap();
    let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
    stdin.write_all(b"{\"cmd\":\"stats\"}\n").unwrap();
    stdin.flush().unwrap();
    let resp = lines.next().unwrap().unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    drop(stdin);
    let fin = lines.next().unwrap().unwrap();
    assert!(fin.contains("\"event\":\"final\""), "{fin}");
    assert!(child.wait().unwrap().success(), "EOF must exit 0");
}

/// Satellite: deadline budgets degrade structurally (E0900 in the
/// response diagnostics) instead of hanging or crashing the process —
/// at 1 and at 4 elaborator threads. The cache dir is test-private:
/// a shared disk cache would satisfy the rebuild without burning fuel.
#[test]
fn serve_deadline_degrades_to_e0900_at_1_and_4_threads() {
    for jobs in ["1", "4"] {
        let cache = tmpdir(&format!("deadline-cache-{jobs}"));
        let mut child = spawn_serve(&["--jobs", jobs, "--cache-dir", cache.to_str().unwrap()]);
        let mut stdin = child.stdin.take().unwrap();
        let mut lines = BufReader::new(child.stdout.take().unwrap()).lines();
        let fields = |prefix: &str| {
            (0..150)
                .map(|i| format!("{prefix}{i} = {i}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let src = format!("val wide = {{{}}} ++ {{{}}}", fields("A"), fields("B"));
        let req =
            format!("{{\"cmd\":\"load\",\"source\":\"{src}\",\"deadline_ms\":1}}\n");
        stdin.write_all(req.as_bytes()).unwrap();
        stdin.flush().unwrap();
        let resp = lines.next().unwrap().unwrap();
        assert!(resp.contains("\"ok\":true"), "jobs={jobs}: {resp}");
        assert!(resp.contains("E0900"), "jobs={jobs}: {resp}");
        // The ceiling was per-request: the same source elaborates clean
        // without the deadline, in the same session.
        let req = format!("{{\"cmd\":\"load\",\"source\":\"{src}\"}}\n");
        stdin.write_all(req.as_bytes()).unwrap();
        stdin.flush().unwrap();
        let resp = lines.next().unwrap().unwrap();
        assert!(resp.contains("\"diagnostics\":[]"), "jobs={jobs}: {resp}");
        stdin.write_all(b"{\"cmd\":\"quit\"}\n").unwrap();
        stdin.flush().unwrap();
        assert!(child.wait().unwrap().success());
        let _ = std::fs::remove_dir_all(&cache);
    }
}

/// Satellite: `DbError::Locked` contention from a *child process* is
/// absorbed by bounded-backoff retry (`UR_DB_LOCK_WAIT_MS`), and fails
/// fast when the budget is zero.
#[test]
fn db_lock_contention_retries_with_bounded_backoff() {
    let dir = tmpdir("lock-retry");
    // Seed the directory, then hold its lock from a helper process (a
    // serve session holds the flock until quit).
    let status = Command::new(urc())
        .args(["--db-dir", dir.to_str().unwrap(), "--eval", "1 + 1"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success());
    let mut holder = spawn_serve(&["--db-dir", dir.to_str().unwrap()]);
    let mut holder_in = holder.stdin.take().unwrap();
    let mut holder_lines = BufReader::new(holder.stdout.take().unwrap()).lines();
    holder_in.write_all(b"{\"cmd\":\"db\"}\n").unwrap();
    holder_in.flush().unwrap();
    let resp = holder_lines.next().unwrap().unwrap();
    assert!(resp.contains("durable"), "holder not durable: {resp}");

    // Zero budget: the contender must fail fast with the lock error.
    let out = Command::new(urc())
        .args(["--db-dir", dir.to_str().unwrap(), "--eval", "1 + 1"])
        .env("UR_DB_LOCK_WAIT_MS", "0")
        .output()
        .unwrap();
    assert!(!out.status.success(), "zero-budget contender must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("lock") || err.contains("Locked"), "{err}");

    // Generous budget: the contender retries while we release the
    // holder, then wins the lock and succeeds.
    let contender = Command::new(urc())
        .args(["--db-dir", dir.to_str().unwrap(), "--eval", "2 + 2"])
        .env("UR_DB_LOCK_WAIT_MS", "15000")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(300));
    holder_in.write_all(b"{\"cmd\":\"quit\"}\n").unwrap();
    holder_in.flush().unwrap();
    assert!(holder.wait().unwrap().success());
    let status = contender.wait_with_output().unwrap().status;
    assert!(status.success(), "contender must win the lock after release");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Spawns `urc --listen 127.0.0.1:0` and returns the child plus the
/// resolved address parsed from the `{"listening":…}` banner.
fn spawn_listen(extra: &[&str]) -> (Child, std::net::SocketAddr, impl Iterator<Item = String>) {
    let mut child = Command::new(urc())
        .args(["--listen", "127.0.0.1:0"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn urc --listen");
    let mut lines = BufReader::new(child.stdout.take().unwrap())
        .lines()
        .map(|l| l.expect("stdout line"));
    let banner = lines.next().expect("listening banner");
    let addr = banner
        .split('"')
        .nth(3)
        .expect("addr in banner")
        .parse()
        .expect("parse addr");
    (child, addr, lines)
}

#[test]
fn listen_serves_tcp_clients_and_drains_on_shutdown() {
    let cache = tmpdir("listen-cache");
    let (mut child, addr, mut lines) =
        spawn_listen(&["--pool", "2", "--cache-dir", cache.to_str().unwrap()]);
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut roundtrip = |req: &str| -> String {
        writeln!(writer, "{req}").expect("write");
        let mut out = String::new();
        reader.read_line(&mut out).expect("read");
        out.trim_end().to_string()
    };
    let resp = roundtrip("{\"cmd\":\"load\",\"source\":\"val x = 20\"}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let resp = roundtrip("{\"cmd\":\"eval\",\"expr\":\"x + 1\"}");
    assert!(resp.contains("\"value\":\"21\""), "{resp}");
    // `stats` folds the serve gauges into the one Stats schema.
    let resp = roundtrip("{\"cmd\":\"stats\"}");
    assert!(resp.contains("serve[accepted="), "{resp}");
    let resp = roundtrip("{\"cmd\":\"shutdown\"}");
    assert!(resp.contains("\"draining\":true"), "{resp}");
    // The process prints its final summary line and exits 0.
    let fin = lines.next().expect("final line");
    assert!(fin.contains("\"event\":\"final\""), "{fin}");
    assert!(fin.contains("\"accepted\":"), "{fin}");
    assert!(child.wait().unwrap().success());
    let _ = std::fs::remove_dir_all(&cache);
}

#[cfg(unix)]
#[test]
fn listen_drains_gracefully_on_sigterm() {
    let cache = tmpdir("sigterm-cache");
    let (mut child, addr, mut lines) = spawn_listen(&["--cache-dir", cache.to_str().unwrap()]);
    // A served request, so the final summary has something to report.
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    writeln!(writer, "{{\"cmd\":\"load\",\"source\":\"val x = 5\"}}").expect("write");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    let kill = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("kill");
    assert!(kill.success());
    let fin = lines.next().expect("final line after SIGTERM");
    assert!(fin.contains("\"event\":\"final\""), "{fin}");
    assert!(child.wait().unwrap().success(), "SIGTERM must exit 0");
    let _ = std::fs::remove_dir_all(&cache);
}
