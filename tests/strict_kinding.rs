use ur::infer::ElabDecl;
use ur::studies::{studies, study};
use ur::Session;

#[test]
fn all_decl_types_are_strictly_wellkinded() {
    // Figure 2's declarative kinding requires every row concatenation in a
    // type to have provably disjoint operands. All inferred declaration
    // types must satisfy it.
    for s in studies() {
        let mut sess = Session::new().unwrap();
        fn load(sess: &mut Session, s: &ur::studies::Study) {
            for d in s.deps {
                load(sess, &study(d));
                sess.run(study(d).implementation()).unwrap();
            }
        }
        load(&mut sess, &s);
        sess.run(s.implementation()).unwrap();
        sess.run(s.usage).unwrap();
        let env = sess.elab.genv.clone();
        let decls = sess.elab.decls.clone();
        for d in &decls {
            if let ElabDecl::Val { name, ty, .. } = d {
                ur::core::kinding::kind_of_strict(&env, &mut sess.elab.cx, ty)
                    .unwrap_or_else(|e| panic!("[{}] {name} : {ty}\n  {e}", s.id));
            }
        }
    }
}
