//! Warm-vs-cold differential suite for the incremental elaboration
//! engine (`ur_query` + `Session::reelaborate`).
//!
//! The engine promises that a warm rebuild is *observably identical* to
//! elaborating the edited program cold in a fresh session: the same
//! declarations (up to fresh symbol ids), the same diagnostics, the
//! same values — while re-running only the declarations whose
//! transitive inputs actually changed. This suite pins that promise on:
//!
//! 1. the acceptance criteria — a no-op rebuild of the combined
//!    Figure-5 batch re-runs *zero* declaration elaborations, and a
//!    single-declaration edit re-elaborates only that declaration plus
//!    its true transitive dependents;
//! 2. random edit scripts (mutate / insert / delete / swap) replayed
//!    against a cold per-step baseline at 1, 2, and 4 worker threads;
//! 3. the adversarial corpus — error outcomes cache and replay too;
//! 4. on-disk cache corruption — every damaged entry degrades to a
//!    recompute, never to a wrong answer;
//! 5. the fuel ledger — green reuse charges no normalization steps.

use std::path::PathBuf;
use ur::infer::Diagnostics;
use ur::Session;
use ur_testutil::Rng;

const THREADS: &[usize] = &[1, 2, 4];

/// Erases gensym counters (`foo#123` -> `foo#`) so runs that draw
/// different fresh-symbol numbers from the process-global counter
/// compare structurally.
fn strip_sym_ids(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        out.push(c);
        if c == '#' {
            while chars.peek().is_some_and(|d| d.is_ascii_digit()) {
                chars.next();
            }
        }
    }
    out
}

/// A per-test on-disk cache directory, unique per process so parallel
/// `cargo test` runs cannot cross-contaminate.
fn test_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ur-incr-test-{}-{tag}", std::process::id()))
}

fn cleanup(dir: &PathBuf) {
    let _ = std::fs::remove_dir_all(dir);
}

/// Normalized observation of one run: declaration debug forms, printed
/// values, and rendered diagnostics — everything a caller can see.
#[derive(Debug, PartialEq, Eq, Clone)]
struct Observed {
    decls: Vec<String>,
    vals: Vec<(String, String)>,
    diags: Vec<String>,
}

fn normalize(
    decls: &[ur::infer::ElabDecl],
    vals: &[(String, ur::Value)],
    diags: &Diagnostics,
) -> Observed {
    Observed {
        decls: decls
            .iter()
            .map(|d| strip_sym_ids(&format!("{d:?}")))
            .collect(),
        vals: vals
            .iter()
            .map(|(n, v)| (n.clone(), strip_sym_ids(&v.to_string())))
            .collect(),
        diags: diags.iter().map(|d| strip_sym_ids(&d.to_string())).collect(),
    }
}

/// Cold baseline: a fresh session, the sequential path, full evaluation.
fn cold(src: &str) -> Observed {
    let mut sess = Session::new().expect("session");
    sess.threads = 1;
    let base_len = sess.elab.decls.len();
    let (vals, diags) = sess.run_all(src);
    normalize(&sess.elab.decls[base_len..], &vals, &diags)
}

/// A warm session wrapping `Session::reelaborate` with its own cache
/// directory, exposing normalized observations per rebuild.
struct Warm {
    sess: Session,
    base_len: usize,
    dir: PathBuf,
}

impl Warm {
    fn new(tag: &str, threads: usize) -> Self {
        let dir = test_dir(tag);
        cleanup(&dir);
        let mut sess = Session::new().expect("session");
        sess.threads = threads;
        sess.cache_dir = Some(dir.clone());
        let base_len = sess.elab.decls.len();
        Warm { sess, base_len, dir }
    }

    fn rebuild(&mut self, src: &str) -> (Observed, ur::query::RunReport) {
        let (vals, diags) = self.sess.reelaborate(src);
        let obs = normalize(&self.sess.elab.decls[self.base_len..], &vals, &diags);
        let report = self
            .sess
            .last_incr_report()
            .cloned()
            .expect("reelaborate sets a report");
        (obs, report)
    }
}

impl Drop for Warm {
    fn drop(&mut self) {
        cleanup(&self.dir);
    }
}

/// One combined source for the whole §6 suite (deduplicated
/// implementations, no usage demos) — the benchmark workload.
fn combined_figure5_batch() -> String {
    let mut parts: Vec<&'static str> = Vec::new();
    for s in ur::studies::studies() {
        let impl_src = s.implementation();
        if !parts.contains(&impl_src) {
            parts.push(impl_src);
        }
    }
    parts.join("\n")
}

// ---------------------------------------------------------------------
// 1. Acceptance criteria
// ---------------------------------------------------------------------

#[test]
fn noop_rebuild_of_combined_figure5_batch_reruns_zero_elaborations() {
    let src = combined_figure5_batch();
    let baseline = cold(&src);
    let mut warm = Warm::new("accept-noop", 1);

    let (first, r1) = warm.rebuild(&src);
    assert_eq!(first, baseline, "cold incremental run diverges");
    assert_eq!(r1.red, r1.decls_total, "first build must recompute all");
    assert!(r1.decls_total > 0, "empty batch");

    let (second, r2) = warm.rebuild(&src);
    assert_eq!(second, baseline, "no-op rebuild diverges");
    assert_eq!(r2.red, 0, "no-op rebuild re-ran elaborations: {r2:?}");
    assert_eq!(r2.green, r2.decls_total, "{r2:?}");
}

#[test]
fn whitespace_and_comment_edits_stay_fully_green() {
    let src = "con t :: Type = int\nval one : int = 1\nval two : t = one\n";
    // Same declarations, different concrete syntax: content hashing
    // goes through the span-erasing pretty-printer, so this is a no-op.
    let reformatted =
        "(* a comment *)\ncon t :: Type =   int\n\n\nval one : int = 1\nval two : t = one";
    let mut warm = Warm::new("accept-ws", 1);
    let (first, _) = warm.rebuild(src);
    let (second, r2) = warm.rebuild(reformatted);
    assert_eq!(r2.red, 0, "reformatting recomputed declarations: {r2:?}");
    assert_eq!(first.vals, second.vals);
}

#[test]
fn single_decl_edit_recomputes_only_the_dependent_cone() {
    let base = "con t :: Type = int\n\
                val one : int = 1\n\
                val two : t = one\n\
                val solo = 42\n";
    let edited = "con t :: Type = int\n\
                  val one : int = 7\n\
                  val two : t = one\n\
                  val solo = 42\n";
    let mut warm = Warm::new("accept-edit", 1);
    warm.rebuild(base);
    let (obs, r) = warm.rebuild(edited);
    // `one` changed; `two` depends on it. `t` and `solo` are untouched.
    assert_eq!(r.green, 2, "{r:?}");
    assert_eq!(r.red, 2, "{r:?}");
    assert_eq!(obs, cold(edited), "warm edit diverges from cold");
    assert!(
        obs.vals.iter().any(|(n, v)| n == "one" && v == "7"),
        "{obs:?}"
    );
}

#[test]
fn independent_decl_edit_leaves_the_rest_green() {
    let base = "val a = 1\nval b = a + 1\nval c = 10\nval d = c + 1\n";
    let edited = "val a = 1\nval b = a + 1\nval c = 20\nval d = c + 1\n";
    let mut warm = Warm::new("accept-indep", 1);
    warm.rebuild(base);
    let (obs, r) = warm.rebuild(edited);
    // Only the `c` cone (c, d) re-runs; the `a` cone stays green.
    assert_eq!(r.green, 2, "{r:?}");
    assert_eq!(r.red, 2, "{r:?}");
    assert_eq!(obs, cold(edited));
}

// ---------------------------------------------------------------------
// 2. Random edit scripts vs cold baseline, at several thread counts
// ---------------------------------------------------------------------

/// A pool of independent well-formed declaration groups; any subset in
/// any order is a valid program. `salt` keeps names unique across
/// insertions so deletes/inserts never collide.
fn gen_group(rng: &mut Rng, salt: usize) -> String {
    match rng.below(5) {
        0 => format!("val int{salt} = {}", rng.range_i64(0, 1000)),
        1 => format!(
            "val rec{salt} = {{A{salt} = {}, B{salt} = \"s{salt}\"}}",
            rng.range_i64(0, 100)
        ),
        2 => format!(
            "con ty{salt} :: Type = int\nval use{salt} : ty{salt} = {}",
            rng.range_i64(0, 50)
        ),
        3 => format!(
            "fun f{salt} [t :: Type] (x : t) = x\nval app{salt} = f{salt} {}",
            rng.range_i64(0, 9)
        ),
        _ => format!("val sum{salt} = {} + {}", rng.below(100), rng.below(100)),
    }
}

#[test]
fn random_edit_scripts_match_the_cold_baseline_at_every_thread_count() {
    for &t in THREADS {
        let mut rng = Rng::new(0x1ec4_ed17 + t as u64);
        let mut salt = 0usize;
        let fresh = |rng: &mut Rng, salt: &mut usize| {
            *salt += 1;
            gen_group(rng, *salt)
        };
        let mut groups: Vec<String> = (0..8).map(|_| fresh(&mut rng, &mut salt)).collect();
        let mut warm = Warm::new(&format!("script-t{t}"), t);
        for step in 0..10 {
            match rng.below(4) {
                0 => {
                    // Mutate: regenerate one group in place.
                    let i = rng.below(groups.len());
                    groups[i] = fresh(&mut rng, &mut salt);
                }
                1 => groups.push(fresh(&mut rng, &mut salt)),
                2 if groups.len() > 3 => {
                    let i = rng.below(groups.len());
                    groups.remove(i);
                }
                _ => {
                    let i = rng.below(groups.len());
                    let j = rng.below(groups.len());
                    groups.swap(i, j);
                }
            }
            let src = groups.join("\n");
            let (obs, r) = warm.rebuild(&src);
            assert_eq!(
                obs,
                cold(&src),
                "step {step} at {t} threads diverges from cold"
            );
            assert_eq!(
                r.decls_total,
                r.green + r.red,
                "step {step} at {t} threads: {r:?}"
            );
        }
    }
}

#[test]
fn dependency_chain_edits_propagate_redness_transitively() {
    let mut warm = Warm::new("chain", 1);
    let base = "val base = 1\n\
                val c1 = base + 1\n\
                val c2 = c1 + 1\n\
                val c3 = c2 + 1\n\
                val solo = 99\n";
    warm.rebuild(base);
    // Editing the root re-runs the whole chain but not `solo`.
    let edited = base.replace("val base = 1", "val base = 2");
    let (obs, r) = warm.rebuild(&edited);
    assert_eq!(r.red, 4, "chain root edit: {r:?}");
    assert_eq!(r.green, 1, "chain root edit: {r:?}");
    assert_eq!(obs, cold(&edited));
    // Editing the tip re-runs only the tip.
    let tip = edited.replace("val c3 = c2 + 1", "val c3 = c2 + 10");
    let (obs, r) = warm.rebuild(&tip);
    assert_eq!(r.red, 1, "chain tip edit: {r:?}");
    assert_eq!(r.green, 4, "chain tip edit: {r:?}");
    assert_eq!(obs, cold(&tip));
}

// ---------------------------------------------------------------------
// 3. Adversarial corpus: error outcomes cache and replay
// ---------------------------------------------------------------------

/// Hostile inputs drawn from `tests/adversarial.rs` — including parse
/// errors and programs whose whole point is to fail.
const ADVERSARIAL: &[(&str, &str)] = &[
    (
        "multi-error",
        "val a : int = \"not an int\"\nval b = missingVariable\nval c : string = 42\nval good = 7",
    ),
    ("unbound", "val x = definitelyNotDefined"),
    ("self-application", "val omega = fn x => x x"),
    ("bad-disjointness", "val r = {A = 1} ++ {A = 2}\nval ok = 3"),
    ("shadow-then-use", "val x = 1\nval x = \"two\"\nval y = x"),
    (
        "failed-shadow-falls-back",
        "val x = 1\nval x = missingName\nval y = x",
    ),
    (
        "forward-reference",
        "val a = laterName\nval laterName = 2\nval b = laterName",
    ),
    (
        "type-shadowing",
        "con t :: Type = int\ncon t :: Type = string\nval v : t = \"s\"",
    ),
    (
        "mixed-good-bad",
        "val one = 1\nval bad : string = one\nval two = one + one",
    ),
    ("dup-field-concat", "val u = {A = 1, A = 2} ++ {A = 3}"),
    ("both-sides-missing", "val v = missing ++ alsoMissing"),
    ("kind-error", "con k :: Type = #A #B #C\nval after = 1"),
    ("unterminated-string", "val s = \"unterminated"),
    ("trailing-parens", "val x = ((("),
    ("missing-binder", "val = 3\nval ok = 4"),
    (
        "wide-independent-with-errors",
        "val a = 1\nval b = a + missing1\nval c = 2\nval d = c + missing2\nval e = a + c",
    ),
];

#[test]
fn adversarial_corpus_round_trips_through_the_incremental_engine() {
    for (i, (name, src)) in ADVERSARIAL.iter().enumerate() {
        let baseline = cold(src);
        let mut warm = Warm::new(&format!("adv-{i}"), 1);
        let (first, _) = warm.rebuild(src);
        assert_eq!(first, baseline, "{name}: cold incremental diverges");
        // Failed declarations cache their diagnostics, so a repeat is
        // fully green and replays the same errors.
        let (second, r) = warm.rebuild(src);
        assert_eq!(second, baseline, "{name}: warm rebuild diverges");
        assert_eq!(r.red, 0, "{name}: repeat recomputed declarations: {r:?}");
    }
}

#[test]
fn cached_diagnostics_replay_at_shifted_spans() {
    let base = "val a = 1\nval bad = missingName\n";
    let mut warm = Warm::new("shift", 1);
    let (first, _) = warm.rebuild(base);
    let line_of = |obs: &Observed| {
        assert_eq!(obs.diags.len(), 1, "{obs:?}");
        obs.diags[0].clone()
    };
    let d1 = line_of(&first);
    // Prepend an unrelated declaration: `bad` moves down one line but
    // stays green; its replayed diagnostic must move with it.
    let shifted = format!("val zero = 0\n{base}");
    let (second, r) = warm.rebuild(&shifted);
    assert_eq!(r.green, 2, "{r:?}");
    assert_eq!(r.red, 1, "{r:?}");
    let d2 = line_of(&second);
    assert_ne!(d1, d2, "span did not shift");
    assert_eq!(second, cold(&shifted), "replayed diag diverges from cold");
}

// ---------------------------------------------------------------------
// 4. Disk-cache corruption degrades to recompute
// ---------------------------------------------------------------------

#[test]
fn corrupt_cache_entries_fall_back_to_recompute_with_identical_results() {
    let src = "con t :: Type = int\nval one : int = 1\nval two : t = one\n";
    let baseline = cold(src);
    let dir = test_dir("corrupt");
    cleanup(&dir);

    // Populate the disk cache, then damage every entry a different way.
    {
        let mut sess = Session::new().expect("session");
        sess.cache_dir = Some(dir.clone());
        sess.reelaborate(src);
    }
    let entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("cache dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    assert!(!entries.is_empty(), "nothing was cached");
    for (i, path) in entries.iter().enumerate() {
        let mut bytes = std::fs::read(path).expect("read entry");
        match i % 3 {
            0 => bytes.truncate(bytes.len() / 2),
            1 => {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xff;
            }
            _ => bytes.clear(),
        }
        std::fs::write(path, bytes).expect("write corrupted entry");
    }

    // A fresh session over the damaged cache must recompute everything
    // and still agree with the cold baseline — then repair the cache.
    let mut sess = Session::new().expect("session");
    sess.cache_dir = Some(dir.clone());
    let base_len = sess.elab.decls.len();
    let (vals, diags) = sess.reelaborate(src);
    let obs = normalize(&sess.elab.decls[base_len..], &vals, &diags);
    assert_eq!(obs, baseline, "corrupted cache changed results");
    let r = sess.last_incr_report().cloned().expect("report");
    assert_eq!(r.red, r.decls_total, "corrupt entries were trusted: {r:?}");
    assert!(r.disk_rejections >= 1, "{r:?}");

    let (vals, diags) = sess.reelaborate(src);
    let obs = normalize(&sess.elab.decls[base_len..], &vals, &diags);
    assert_eq!(obs, baseline);
    let r = sess.last_incr_report().cloned().expect("report");
    assert_eq!(r.red, 0, "cache was not repaired after recompute: {r:?}");
    cleanup(&dir);
}

#[test]
fn a_second_session_seeds_from_disk() {
    let src = "val a = 1\nval b = a + 1\nval c = b + 1\n";
    let baseline = cold(src);
    let dir = test_dir("seed");
    cleanup(&dir);
    {
        let mut sess = Session::new().expect("session");
        sess.cache_dir = Some(dir.clone());
        sess.reelaborate(src);
    }
    let mut sess = Session::new().expect("session");
    sess.cache_dir = Some(dir.clone());
    let base_len = sess.elab.decls.len();
    let (vals, diags) = sess.reelaborate(src);
    let obs = normalize(&sess.elab.decls[base_len..], &vals, &diags);
    let r = sess.last_incr_report().cloned().expect("report");
    assert_eq!(r.red, 0, "fresh session did not reuse the disk cache: {r:?}");
    assert_eq!(r.disk_hits, 3, "{r:?}");
    assert_eq!(obs, baseline, "disk-seeded run diverges from cold");
    cleanup(&dir);
}

// ---------------------------------------------------------------------
// 5. The fuel ledger: green reuse is free
// ---------------------------------------------------------------------

#[test]
fn green_reuse_charges_no_elaboration_fuel() {
    let src = combined_figure5_batch();
    let mut warm = Warm::new("fuel", 1);
    let steps_at_base = warm.sess.elab.cx.fuel.lifetime_norm_steps();
    warm.rebuild(&src);
    let steps_cold = warm.sess.elab.cx.fuel.lifetime_norm_steps();
    assert!(
        steps_cold > steps_at_base,
        "cold build of the Figure-5 batch charged no normalization steps"
    );
    let (_, r) = warm.rebuild(&src);
    assert_eq!(r.red, 0, "{r:?}");
    let steps_warm = warm.sess.elab.cx.fuel.lifetime_norm_steps();
    assert_eq!(
        steps_warm, steps_at_base,
        "green reuse charged elaboration fuel"
    );
}

// ---------------------------------------------------------------------
// 6. Machine-readable diagnostics share one encoder
// ---------------------------------------------------------------------

#[test]
fn session_diagnostics_encode_to_the_stable_json_shape() {
    let mut sess = Session::new().expect("session");
    let (_, diags) = sess.run_all("val bad = missingName");
    assert!(!diags.is_empty());
    let json = ur::query::json::diags_to_json(&diags);
    assert!(json.starts_with('[') && json.ends_with(']'), "{json}");
    for key in ["\"code\":\"E", "\"line\":", "\"col\":", "\"message\":", "\"notes\":"] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    // The flat-object parser accepts a single note-free diagnostic
    // object, so serve-mode consumers can round-trip what CI emits.
    let one = ur::query::json::diag_to_json(&diags[0]).replace(",\"notes\":[]", "");
    let parsed = ur::query::json::parse_flat_object(&one).expect("parses");
    assert_eq!(parsed.get("code").map(String::as_str), Some(diags[0].code.as_str()));
}
