//! Generative end-to-end testing: random record programs are produced as
//! *source text*, elaborated, evaluated, and compared against a reference
//! semantics computed in Rust. This exercises the whole pipeline (lexer,
//! parser, elaborator, folder generation, interpreter) on inputs no one
//! hand-wrote.

use proptest::prelude::*;
use std::collections::BTreeMap;
use ur::Session;

#[derive(Clone, Debug)]
enum FieldVal {
    Int(i64),
    Str(String),
    Bool(bool),
}

impl FieldVal {
    fn ur_literal(&self) -> String {
        match self {
            FieldVal::Int(n) => n.to_string(),
            FieldVal::Str(s) => format!("{s:?}"),
            FieldVal::Bool(true) => "True".to_string(),
            FieldVal::Bool(false) => "False".to_string(),
        }
    }

    fn expected_display(&self) -> String {
        match self {
            FieldVal::Int(n) => n.to_string(),
            FieldVal::Str(s) => format!("{s:?}"),
            FieldVal::Bool(true) => "True".to_string(),
            FieldVal::Bool(false) => "False".to_string(),
        }
    }
}

fn field_val() -> impl Strategy<Value = FieldVal> {
    prop_oneof![
        (0i64..1000).prop_map(FieldVal::Int),
        "[a-z]{0,8}".prop_map(FieldVal::Str),
        prop::bool::ANY.prop_map(FieldVal::Bool),
    ]
}

fn record() -> impl Strategy<Value = BTreeMap<String, FieldVal>> {
    prop::collection::btree_map(
        prop::sample::select(vec!["A", "B", "C", "D", "E"]).prop_map(str::to_string),
        field_val(),
        1..5,
    )
}

fn record_literal(rec: &BTreeMap<String, FieldVal>) -> String {
    let fields: Vec<String> = rec
        .iter()
        .map(|(n, v)| format!("{n} = {}", v.ur_literal()))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Projection of every field of a random record literal returns the
    /// field's value.
    #[test]
    fn projections_evaluate_to_their_fields(rec in record()) {
        let mut sess = Session::new().unwrap();
        sess.run(&format!("val r = {}", record_literal(&rec))).unwrap();
        for (name, v) in &rec {
            let got = sess.eval(&format!("r.{name}")).unwrap();
            prop_assert_eq!(got.to_string(), v.expected_display());
        }
    }

    /// Removing a field then re-adding it rebuilds the same record value,
    /// through the generic paper `proj`-style machinery.
    #[test]
    fn cut_and_readd_preserves_records(rec in record(), pick in any::<prop::sample::Index>()) {
        let names: Vec<&String> = rec.keys().collect();
        let chosen = names[pick.index(names.len())].clone();
        let mut sess = Session::new().unwrap();
        sess.run(&format!(
            "val r = {lit}\nval r2 = (r -- {f}) ++ {{{f} = r.{f}}}",
            lit = record_literal(&rec),
            f = chosen
        )).unwrap();
        let v1 = sess.eval("r").unwrap().to_string();
        let v2 = sess.eval("r2").unwrap().to_string();
        prop_assert_eq!(v1, v2);
    }

    /// A random split of a record into two disjoint literals concatenates
    /// back to the whole, independent of order.
    #[test]
    fn split_concat_roundtrip(rec in record(), split in any::<prop::sample::Index>()) {
        let items: Vec<(&String, &FieldVal)> = rec.iter().collect();
        let k = split.index(items.len() + 1);
        let (l, r) = items.split_at(k);
        let part = |fields: &[(&String, &FieldVal)]| {
            let inner: Vec<String> = fields
                .iter()
                .map(|(n, v)| format!("{n} = {}", v.ur_literal()))
                .collect();
            format!("{{{}}}", inner.join(", "))
        };
        let mut sess = Session::new().unwrap();
        sess.run(&format!(
            "val whole = {}\nval ab = {} ++ {}\nval ba = {} ++ {}",
            record_literal(&rec),
            part(l), part(r),
            part(r), part(l),
        )).unwrap();
        let whole = sess.eval("whole").unwrap().to_string();
        prop_assert_eq!(sess.eval("ab").unwrap().to_string(), whole.clone());
        prop_assert_eq!(sess.eval("ba").unwrap().to_string(), whole);
    }

    /// The generic projection metaprogram agrees with direct projection on
    /// random records, for every field.
    #[test]
    fn generic_proj_matches_direct(rec in record()) {
        let mut sess = Session::new().unwrap();
        sess.run(
            "fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
                 (x : $([nm = t] ++ r)) = x.nm",
        ).unwrap();
        sess.run(&format!("val r = {}", record_literal(&rec))).unwrap();
        for name in rec.keys() {
            let generic = sess.eval(&format!("proj [#{name}] r")).unwrap().to_string();
            let direct = sess.eval(&format!("r.{name}")).unwrap().to_string();
            prop_assert_eq!(generic, direct);
        }
    }

    /// Round-trip through the database: a random record inserted into a
    /// matching table comes back unchanged.
    #[test]
    fn db_roundtrip_for_random_records(rec in record()) {
        let mut sess = Session::new().unwrap();
        let schema: Vec<String> = rec
            .iter()
            .map(|(n, v)| {
                let ty = match v {
                    FieldVal::Int(_) => "sqlInt",
                    FieldVal::Str(_) => "sqlString",
                    FieldVal::Bool(_) => "sqlBool",
                };
                format!("{n} = {ty}")
            })
            .collect();
        let exps: Vec<String> = rec
            .iter()
            .map(|(n, v)| format!("{n} = const {}", v.ur_literal()))
            .collect();
        sess.run(&format!(
            "val t = createTable \"gen\" {{{}}}\n\
             val u = insert t {{{}}}",
            schema.join(", "),
            exps.join(", "),
        )).unwrap();
        let rows = sess.eval("selectAll t (sqlTrue)").unwrap();
        let rows = rows.as_list().unwrap();
        prop_assert_eq!(rows.len(), 1);
        let rec_v = rows[0].as_record().unwrap();
        for (name, v) in &rec {
            prop_assert_eq!(
                rec_v[name.as_str()].to_string(),
                v.expected_display()
            );
        }
    }
}
