//! Generative end-to-end testing: random record programs are produced as
//! *source text*, elaborated, evaluated, and compared against a reference
//! semantics computed in Rust. This exercises the whole pipeline (lexer,
//! parser, elaborator, folder generation, interpreter) on inputs no one
//! hand-wrote.
//!
//! Randomness comes from the in-repo deterministic [`ur_testutil::Rng`]
//! (offline build: no `proptest`); seeds are fixed, so failures reproduce.

use std::collections::BTreeMap;
use ur::eval::EvalEngine;
use ur::Session;
use ur_testutil::{gen, Rng};

const CASES: usize = 48;

#[derive(Clone, Debug)]
enum FieldVal {
    Int(i64),
    Str(String),
    Bool(bool),
}

impl FieldVal {
    fn ur_literal(&self) -> String {
        match self {
            FieldVal::Int(n) => n.to_string(),
            FieldVal::Str(s) => format!("{s:?}"),
            FieldVal::Bool(true) => "True".to_string(),
            FieldVal::Bool(false) => "False".to_string(),
        }
    }

    fn expected_display(&self) -> String {
        match self {
            FieldVal::Int(n) => n.to_string(),
            FieldVal::Str(s) => format!("{s:?}"),
            FieldVal::Bool(true) => "True".to_string(),
            FieldVal::Bool(false) => "False".to_string(),
        }
    }
}

fn field_val(rng: &mut Rng) -> FieldVal {
    match rng.below(3) {
        0 => FieldVal::Int(rng.range_i64(0, 1000)),
        1 => FieldVal::Str(rng.lowercase(8)),
        _ => FieldVal::Bool(rng.bool_()),
    }
}

/// A random record with 1..5 distinct field names.
fn record(rng: &mut Rng) -> BTreeMap<String, FieldVal> {
    const NAMES: &[&str] = &["A", "B", "C", "D", "E"];
    let n = 1 + rng.below(4);
    let mut m = BTreeMap::new();
    while m.len() < n {
        let name = rng.pick(NAMES).to_string();
        let v = field_val(rng);
        m.insert(name, v);
    }
    m
}

fn record_literal(rec: &BTreeMap<String, FieldVal>) -> String {
    let fields: Vec<String> = rec
        .iter()
        .map(|(n, v)| format!("{n} = {}", v.ur_literal()))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

/// Projection of every field of a random record literal returns the
/// field's value.
#[test]
fn projections_evaluate_to_their_fields() {
    let mut rng = Rng::new(0xE2E_0001);
    for _ in 0..CASES {
        let rec = record(&mut rng);
        let mut sess = Session::new().unwrap();
        sess.run(&format!("val r = {}", record_literal(&rec))).unwrap();
        for (name, v) in &rec {
            let got = sess.eval(&format!("r.{name}")).unwrap();
            assert_eq!(got.to_string(), v.expected_display());
        }
    }
}

/// Removing a field then re-adding it rebuilds the same record value,
/// through the generic paper `proj`-style machinery.
#[test]
fn cut_and_readd_preserves_records() {
    let mut rng = Rng::new(0xE2E_0002);
    for _ in 0..CASES {
        let rec = record(&mut rng);
        let names: Vec<&String> = rec.keys().collect();
        let chosen = names[rng.below(names.len())].clone();
        let mut sess = Session::new().unwrap();
        sess.run(&format!(
            "val r = {lit}\nval r2 = (r -- {f}) ++ {{{f} = r.{f}}}",
            lit = record_literal(&rec),
            f = chosen
        ))
        .unwrap();
        let v1 = sess.eval("r").unwrap().to_string();
        let v2 = sess.eval("r2").unwrap().to_string();
        assert_eq!(v1, v2);
    }
}

/// A random split of a record into two disjoint literals concatenates
/// back to the whole, independent of order.
#[test]
fn split_concat_roundtrip() {
    let mut rng = Rng::new(0xE2E_0003);
    for _ in 0..CASES {
        let rec = record(&mut rng);
        let items: Vec<(&String, &FieldVal)> = rec.iter().collect();
        let k = rng.below(items.len() + 1);
        let (l, r) = items.split_at(k);
        let part = |fields: &[(&String, &FieldVal)]| {
            let inner: Vec<String> = fields
                .iter()
                .map(|(n, v)| format!("{n} = {}", v.ur_literal()))
                .collect();
            format!("{{{}}}", inner.join(", "))
        };
        let mut sess = Session::new().unwrap();
        sess.run(&format!(
            "val whole = {}\nval ab = {} ++ {}\nval ba = {} ++ {}",
            record_literal(&rec),
            part(l),
            part(r),
            part(r),
            part(l),
        ))
        .unwrap();
        let whole = sess.eval("whole").unwrap().to_string();
        assert_eq!(sess.eval("ab").unwrap().to_string(), whole.clone());
        assert_eq!(sess.eval("ba").unwrap().to_string(), whole);
    }
}

/// The generic projection metaprogram agrees with direct projection on
/// random records, for every field.
#[test]
fn generic_proj_matches_direct() {
    let mut rng = Rng::new(0xE2E_0004);
    for _ in 0..CASES {
        let rec = record(&mut rng);
        let mut sess = Session::new().unwrap();
        sess.run(
            "fun proj [nm :: Name] [t :: Type] [r :: {Type}] [[nm] ~ r] \
                 (x : $([nm = t] ++ r)) = x.nm",
        )
        .unwrap();
        sess.run(&format!("val r = {}", record_literal(&rec))).unwrap();
        for name in rec.keys() {
            let generic = sess.eval(&format!("proj [#{name}] r")).unwrap().to_string();
            let direct = sess.eval(&format!("r.{name}")).unwrap().to_string();
            assert_eq!(generic, direct);
        }
    }
}

/// Round-trip through the database: a random record inserted into a
/// matching table comes back unchanged.
#[test]
fn db_roundtrip_for_random_records() {
    let mut rng = Rng::new(0xE2E_0005);
    for _ in 0..CASES {
        let rec = record(&mut rng);
        let mut sess = Session::new().unwrap();
        let schema: Vec<String> = rec
            .iter()
            .map(|(n, v)| {
                let ty = match v {
                    FieldVal::Int(_) => "sqlInt",
                    FieldVal::Str(_) => "sqlString",
                    FieldVal::Bool(_) => "sqlBool",
                };
                format!("{n} = {ty}")
            })
            .collect();
        let exps: Vec<String> = rec
            .iter()
            .map(|(n, v)| format!("{n} = const {}", v.ur_literal()))
            .collect();
        sess.run(&format!(
            "val t = createTable \"gen\" {{{}}}\n\
             val u = insert t {{{}}}",
            schema.join(", "),
            exps.join(", "),
        ))
        .unwrap();
        let rows = sess.eval("selectAll t (sqlTrue)").unwrap();
        let rows = rows.as_list().unwrap();
        assert_eq!(rows.len(), 1);
        let rec_v = rows[0].as_record().unwrap();
        for (name, v) in &rec {
            assert_eq!(rec_v[name.as_str()].to_string(), v.expected_display());
        }
    }
}

/// A session pinned to one execution engine.
fn session_with(engine: EvalEngine) -> Session {
    let mut sess = Session::new().unwrap();
    sess.engine = engine;
    sess
}

/// The eval-heavy tier: random programs full of shadowed `let`s,
/// capturing closures, folds, and record algebra, run through BOTH
/// engines declaration-by-declaration. Any divergence is a bug in the
/// bytecode compiler or VM (the tree-walking interpreter is the
/// oracle); the failing seed is in the panic message.
#[test]
fn eval_heavy_programs_agree_across_engines() {
    for case in 0..CASES as u64 {
        let seed = 0xE2E_0006 + case;
        let mut rng = Rng::new(seed);
        let prog = gen::eval_program(&mut rng, 8, 3);
        let mut vm = session_with(EvalEngine::Vm);
        let mut oracle = session_with(EvalEngine::Interp);
        let (vm_defs, vm_diags) = vm.run_all(&prog.source);
        let (or_defs, or_diags) = oracle.run_all(&prog.source);
        assert!(
            vm_diags.is_empty() && or_diags.is_empty(),
            "seed {seed:#x}: generated program failed to elaborate\n\
             vm: {vm_diags:?}\ninterp: {or_diags:?}\nprogram:\n{}",
            prog.source
        );
        assert_eq!(
            vm_defs.len(),
            or_defs.len(),
            "seed {seed:#x}: engines defined different numbers of values\nprogram:\n{}",
            prog.source
        );
        for ((vn, vv), (on, ov)) in vm_defs.iter().zip(&or_defs) {
            assert_eq!(vn, on, "seed {seed:#x}: declaration order diverged");
            assert_eq!(
                vv.to_string(),
                ov.to_string(),
                "seed {seed:#x}: engines disagree on `{vn}`\nprogram:\n{}",
                prog.source
            );
        }
    }
}

/// Re-evaluating the same generated expressions through one VM session
/// hits the per-declaration chunk cache (identical bodies hash-cons to
/// the same core term); the cached chunk must produce the same value
/// as the first compile, and as the oracle.
#[test]
fn chunk_cache_reuse_stays_consistent_with_the_oracle() {
    for case in 0..8u64 {
        let seed = 0xE2E_0007 + case;
        let mut rng = Rng::new(seed);
        let prog = gen::eval_program(&mut rng, 6, 3);
        let mut vm = session_with(EvalEngine::Vm);
        let mut oracle = session_with(EvalEngine::Interp);
        let (_, vm_diags) = vm.run_all(&prog.source);
        let (_, or_diags) = oracle.run_all(&prog.source);
        assert!(
            vm_diags.is_empty() && or_diags.is_empty(),
            "seed {seed:#x}: generated program failed to elaborate:\n{}",
            prog.source
        );
        for name in &prog.vals {
            let first = vm.eval(name).unwrap().to_string();
            let second = vm.eval(name).unwrap().to_string();
            let reference = oracle.eval(name).unwrap().to_string();
            assert_eq!(first, second, "seed {seed:#x}: cached chunk diverged on {name}");
            assert_eq!(first, reference, "seed {seed:#x}: vm diverged on {name}");
        }
    }
}
